//! `lastmile classify`: per-AS persistent-congestion classification from
//! Atlas-format traceroute data on disk.

use crate::bgp::load_table;
use crate::cache::{self, Cache};
use crate::input::{
    group_by_asn, ingest_options, ingest_traceroutes, ingest_traffic, load_probes, resolve_window,
    write_quarantine,
};
use crate::progress::Heartbeat;
use crate::stats::{emit_stats, wants_stats};
use crate::Flags;
use lastmile_repro::atlas::ProbeId;
use lastmile_repro::core::pipeline::{
    AsPipeline, PipelineConfig, PopulationAnalysis, PrebuiltSeries,
};
use lastmile_repro::obs::{trace, LiveProgress, RunMetrics, StageTimer};
use lastmile_repro::prefix::Asn;
use lastmile_repro::runner::{record_population_metrics, store_traffic_since};
use lastmile_repro::store::{CacheMode, Lookup, StoreKey};
use lastmile_repro::timebase::UnixTime;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Shared plumbing for `classify` and `hygiene`: stream the file (twice —
/// once for the time span, once for the analysis) and return one
/// [`PopulationAnalysis`] per ASN (ASN 0 = "all probes" when no metadata
/// is given). When `metrics` is given, pipeline counters and stage
/// timings are accumulated into it.
///
/// With `--cache-dir` the per-probe median series are served from /
/// memoized into a `lastmile-store` snapshot: a probe whose series the
/// cache already holds for the whole analysis window skips ingestion
/// entirely, and freshly built series are written back (`--cache rw`, the
/// default). The classification output is byte-identical either way. The
/// cache only engages when the window is aligned to bin boundaries —
/// pass explicit midnight-aligned `--start`/`--end`; the data-span
/// fallback window almost never aligns, and unaligned windows bypass.
///
/// Under per-traceroute ASN attribution (`--bgp` without `--probes`) a
/// probe can legitimately split across AS pipelines, but the store holds
/// ONE series per probe — so only probes whose routed traceroutes all
/// resolve to a single ASN are served or memoized (pass 1 records the
/// attribution), and the snapshot's source fingerprint mixes in the BGP
/// table (the table decides which traceroutes are ingested), so `--bgp`
/// snapshots never cross with `--probes`/ASN-0 ones.
pub fn analyze_file(
    flags: &Flags,
    metrics: Option<&RunMetrics>,
) -> Result<Vec<(Asn, PopulationAnalysis)>, String> {
    analyze_file_with_cache(flags, metrics).map(|(results, _)| results)
}

/// [`analyze_file_with_cache`]'s success value: the per-ASN analyses
/// plus the active series cache (when `--cache-dir` was given).
pub type AnalysesAndCache = (Vec<(Asn, PopulationAnalysis)>, Option<Cache>);

/// [`analyze_file`], also handing back the active series cache (when
/// `--cache-dir` was given) so a long-lived caller — the `serve` daemon —
/// can re-persist the snapshot at shutdown. The snapshot has already
/// been persisted once by the time this returns.
pub fn analyze_file_with_cache(
    flags: &Flags,
    metrics: Option<&RunMetrics>,
) -> Result<AnalysesAndCache, String> {
    let paths = vec![flags.required("traceroutes")?.to_string()];
    let cache = cache::from_flags(flags, || corpus_fingerprint(flags, &paths), metrics)?;
    let results = analyze_corpus(flags, &paths, metrics, cache.as_ref())?;
    if let Some(c) = &cache {
        c.persist(metrics)?;
    }
    Ok((results, cache))
}

/// The source fingerprint for a (possibly multi-file) corpus: the files'
/// content fingerprints folded left-to-right, plus the BGP table under
/// per-traceroute attribution (the table decides which traceroutes are
/// ingested). One file gives exactly [`cache::file_fingerprint`] of it,
/// so single-file snapshots from older builds keep matching.
pub fn corpus_fingerprint(flags: &Flags, paths: &[String]) -> Result<u64, String> {
    let mut f = cache::file_fingerprint(&paths[0])?;
    for path in &paths[1..] {
        f = cache::combine_fingerprints(f, cache::file_fingerprint(path)?);
    }
    let per_traceroute_asn = flags.optional("probes").is_none();
    if let (true, Some(table_path)) = (per_traceroute_asn, flags.optional("bgp")) {
        f = cache::combine_fingerprints(f, cache::file_fingerprint(table_path)?);
    }
    Ok(f)
}

/// The core two-pass analysis over a corpus of one or more traceroute
/// files (streamed in order, as if concatenated). Serves from / memoizes
/// into `cache` when one is given, but neither builds nor persists it —
/// a long-lived caller (the `serve` daemon's re-analysis engine) owns
/// the cache across many calls and persists once at shutdown.
pub fn analyze_corpus(
    flags: &Flags,
    paths: &[String],
    metrics: Option<&RunMetrics>,
    cache: Option<&Cache>,
) -> Result<Vec<(Asn, PopulationAnalysis)>, String> {
    let mut ingest_opts = ingest_options(flags)?;
    // `--progress` gauges are shared with the ingest workers; the
    // heartbeat thread lives for the whole analysis and is stopped and
    // joined when this function returns.
    let progress = flags
        .switch("progress")
        .then(|| Arc::new(LiveProgress::default()));
    let _heartbeat = progress.clone().map(Heartbeat::start);
    ingest_opts.progress = progress.clone();
    // Both passes decode every record and both report their decodes
    // into `ingest.records_decoded`, so BOTH must sample decode latency
    // — otherwise the histogram count sits at exactly half the decode
    // counter (the bug `--stats` used to show).
    ingest_opts.record_latency = metrics.is_some();
    let pass1_opts = ingest_opts.clone();
    let probes = flags.optional("probes").map(load_probes).transpose()?;
    let bgp = flags.optional("bgp").map(load_table).transpose()?;
    let anchors_only = flags.switch("anchors-only");
    let per_traceroute_asn = probes.is_none() && bgp.is_some();
    let cache_engaged = cache.is_some_and(|c| c.mode != CacheMode::Off);

    // Pass 1: find the data span — and, when the cache may engage under
    // per-traceroute attribution, record each probe's edge ASN. A probe
    // whose routed traceroutes disagree (`None`) must never be served
    // from or inserted into the cache: its traceroutes split across AS
    // pipelines, and each pipeline's partial series under one store key
    // would poison the snapshot.
    let mut bgp_probe_asn: Option<BTreeMap<ProbeId, Option<Asn>>> =
        (per_traceroute_asn && cache_engaged).then(BTreeMap::new);
    let mut data_min: Option<UnixTime> = None;
    let mut data_max: Option<UnixTime> = None;
    let mut parsed = 0u64;
    let mut skipped = 0u64;
    let mut quarantined_all = Vec::new();
    for path in paths {
        let span = ingest_traceroutes(path, &pass1_opts, |tr| {
            data_min = Some(data_min.map_or(tr.timestamp, |m| m.min(tr.timestamp)));
            data_max = Some(data_max.map_or(tr.timestamp, |m| m.max(tr.timestamp)));
            if let (Some(attribution), Some(table)) = (bgp_probe_asn.as_mut(), &bgp) {
                if let Some((_, &asn)) = tr.edge_address().and_then(|a| table.lookup(a)) {
                    attribution
                        .entry(tr.probe)
                        .and_modify(|e| {
                            if *e != Some(asn) {
                                *e = None;
                            }
                        })
                        .or_insert(Some(asn));
                }
            }
        })?;
        parsed += span.parsed;
        skipped += span.skipped();
        // Quarantine detail comes from pass 1 only: both passes read the
        // same files, so typed counts and the triage dump stay exact.
        if let Some(m) = metrics {
            m.add_ingest_traffic(&ingest_traffic(&span, true));
            m.merge_decode_hist(&span.decode_hist);
        }
        quarantined_all.extend(span.quarantined);
    }
    eprintln!("[input] {parsed} traceroutes parsed, {skipped} skipped");
    if let Some(qpath) = flags.optional("quarantine") {
        write_quarantine(qpath, &quarantined_all)?;
        eprintln!(
            "[input] {} quarantined record(s) written to {qpath}",
            quarantined_all.len()
        );
    }
    let window = resolve_window(
        flags.parsed::<i64>("start")?,
        flags.parsed::<i64>("end")?,
        data_min,
        data_max,
    )?;

    // Probe → ASN routing.
    let probe_to_asn: Option<BTreeMap<ProbeId, Asn>> = probes.as_ref().map(|list| {
        group_by_asn(list, anchors_only)
            .into_iter()
            .flat_map(|(asn, ids)| ids.into_iter().map(move |id| (id, asn)))
            .collect()
    });

    let mut cfg = PipelineConfig::paper();
    if let Some(min_probes) = flags.parsed::<usize>("min-probes")? {
        cfg.min_probes = min_probes;
        cfg.min_probes_per_bin = min_probes.min(cfg.min_probes_per_bin);
    }

    // Whether a probe's series may be cached at all: always, except under
    // per-traceroute attribution, where only single-ASN probes qualify.
    let cacheable = |probe: ProbeId| match &bgp_probe_asn {
        Some(attribution) => matches!(attribution.get(&probe), Some(Some(_))),
        None => true,
    };
    let counters_before = cache.map(|c| c.store.counters());
    // Retaining built series costs memory; only pay when write-back can
    // accept them (rw mode, bin-aligned window).
    let retain =
        cache.is_some_and(|c| c.mode == CacheMode::ReadWrite && cfg.bin.is_aligned(&window));
    let new_pipeline = move || {
        let mut p = AsPipeline::new(cfg, window);
        p.retain_median_series(retain);
        p
    };

    // Pass 2: route into per-AS pipelines. Probe metadata wins; otherwise
    // the BGP table maps the first public hop (the paper's ISP edge) to
    // its origin ASN; otherwise everything is one population (ASN 0).
    // A probe whose series the cache covers for the whole window is
    // "served": its traceroutes are skipped and the prebuilt series is
    // fed to its population after the stream.
    let mut pipelines: BTreeMap<Asn, AsPipeline> = BTreeMap::new();
    let mut served: BTreeMap<ProbeId, (Asn, PrebuiltSeries)> = BTreeMap::new();
    let mut unserved: BTreeSet<ProbeId> = BTreeSet::new();
    let ingest_timer = StageTimer::start();
    for path in paths {
        let pass2 = ingest_traceroutes(path, &ingest_opts, |tr| {
            let asn = match (&probe_to_asn, &bgp) {
                (Some(map), _) => match map.get(&tr.probe) {
                    Some(&asn) => asn,
                    None => return, // unknown or filtered probe
                },
                (None, Some(table)) => match tr.edge_address().and_then(|a| table.lookup(a)) {
                    Some((_, &asn)) => asn,
                    None => return, // no public hop or unrouted edge
                },
                (None, None) => 0,
            };
            if let Some(c) = cache {
                // Ineligible (multi-ASN) probes take the cache-free path
                // untouched.
                if cacheable(tr.probe) && !unserved.contains(&tr.probe) {
                    match served.entry(tr.probe) {
                        Entry::Occupied(_) => return,
                        Entry::Vacant(slot) => match c
                            .store
                            .lookup(&StoreKey::for_pipeline(tr.probe, &cfg), &window)
                        {
                            Lookup::Hit(pre) => {
                                slot.insert((asn, pre));
                                return;
                            }
                            Lookup::Miss | Lookup::Bypass => {
                                unserved.insert(tr.probe);
                            }
                        },
                    }
                }
            }
            pipelines
                .entry(asn)
                .or_insert_with(new_pipeline)
                .ingest(&tr);
        })?;
        if let Some(m) = metrics {
            m.add_ingest_traffic(&ingest_traffic(&pass2, false));
            m.merge_decode_hist(&pass2.decode_hist);
        }
    }
    for (_, (asn, pre)) in served {
        pipelines
            .entry(asn)
            .or_insert_with(new_pipeline)
            .ingest_series(pre);
    }
    if let Some(m) = metrics {
        m.add_ingest_nanos(ingest_timer.elapsed_nanos());
    }

    // The population table keys on (ASN, period); a file run has no
    // named measurement period, so the analysis window stands in.
    let window_label = format!("{}..{}", window.start().as_secs(), window.end().as_secs());
    if let Some(p) = &progress {
        p.populations_total
            .store(pipelines.len() as u64, Ordering::Relaxed);
    }
    let results: Vec<(Asn, PopulationAnalysis)> = pipelines
        .into_iter()
        .map(|(asn, p)| {
            let span = trace::span_with("population", |a| {
                a.u64("asn", u64::from(asn))
                    .str("period", window_label.as_str());
            });
            let analysis = p.finish();
            if let Some(m) = metrics {
                // Streaming interleaves populations, so ingest time is
                // accounted once above; per-task wall = pipeline stages.
                let s = &analysis.stats;
                record_population_metrics(
                    m,
                    asn,
                    &window_label,
                    &analysis,
                    s.series_nanos + s.aggregate_nanos + s.detect_nanos,
                );
            }
            drop(span);
            if let Some(p) = &progress {
                p.populations_done.fetch_add(1, Ordering::Relaxed);
            }
            (asn, analysis)
        })
        .collect();

    if let Some(c) = cache {
        for (_, analysis) in &results {
            for built in &analysis.built_series {
                // A multi-ASN probe's series here is the partial view of
                // one pipeline; inserting it would claim full-window
                // coverage for a subset of the probe's traceroutes.
                if !cacheable(built.series.probe()) {
                    continue;
                }
                c.store.insert(
                    &StoreKey::for_pipeline(built.series.probe(), &cfg),
                    &window,
                    built,
                );
            }
        }
        if let (Some(m), Some(before)) = (metrics, counters_before) {
            m.add_store_traffic(&store_traffic_since(before, c.store.counters()));
        }
    }
    Ok(results)
}

/// One ASN's classification document. Shared by `classify --json` and
/// the serve daemon's `/v1/classify` endpoints so their bytes cannot
/// drift apart.
pub fn classification_doc(asn: Asn, a: &PopulationAnalysis) -> serde_json::Value {
    let d = a.detection.as_ref();
    serde_json::json!({
        "asn": asn,
        "probes": a.probes_used(),
        "class": a.class().name(),
        "daily_amplitude_ms": d.map(|d| d.daily_amplitude_ms),
        "prominent_frequency_cph": d.and_then(|d| d.prominent_frequency()),
        "prominent_is_daily": d.map(|d| d.prominent_is_daily),
        "max_agg_delay_ms": a.aggregated.max(),
        "coverage": a.aggregated.coverage(),
    })
}

/// The exact bytes `classify --json` prints: a pretty array of
/// [`classification_doc`]s with a trailing newline.
pub fn classification_json(results: &[(Asn, PopulationAnalysis)]) -> String {
    let docs: Vec<serde_json::Value> = results
        .iter()
        .map(|(asn, a)| classification_doc(*asn, a))
        .collect();
    let mut s = serde_json::to_string_pretty(&docs).expect("json encodes");
    s.push('\n');
    s
}

pub fn run(flags: &Flags) -> Result<(), String> {
    let metrics = wants_stats(flags).then(RunMetrics::new);
    let run_timer = StageTimer::start();
    let results = analyze_file(flags, metrics.as_ref())?;
    if let Some(m) = &metrics {
        m.set_wall(&run_timer);
    }
    if results.is_empty() {
        return Err("no analysable traceroutes in the window".into());
    }
    if flags.switch("json") {
        print!("{}", classification_json(&results));
    } else {
        println!(
            "{:<10} {:>7} {:>8} {:>12} {:>12} {:>9}",
            "asn", "probes", "class", "daily amp", "max delay", "coverage"
        );
        for (asn, a) in &results {
            let amp = a
                .detection
                .as_ref()
                .map(|d| format!("{:.2} ms", d.daily_amplitude_ms))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:<10} {:>7} {:>8} {:>12} {:>9.2} ms {:>9.2}",
                if *asn == 0 {
                    "all".to_string()
                } else {
                    format!("AS{asn}")
                },
                a.probes_used(),
                a.class().name(),
                amp,
                a.aggregated.max().unwrap_or(0.0),
                a.aggregated.coverage(),
            );
        }
    }
    if let Some(m) = &metrics {
        emit_stats(flags, m)?;
    }
    Ok(())
}
