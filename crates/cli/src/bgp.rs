//! BGP-table file support: `prefix,asn` CSV, the minimal routing-table
//! substitute §2.1 needs to map addresses to origin ASNs.
//!
//! When `--bgp FILE` is given, the CLI groups traceroutes by the ASN of
//! their **first public hop** (the paper's ISP-edge proxy) via longest
//! prefix match — no probe metadata required. (Without metadata, anchors
//! cannot be excluded; the paper's tooling faces the same constraint and
//! resolves it with Atlas probe metadata, which `--probes` supplies.)

use lastmile_repro::prefix::{Asn, Prefix, PrefixTrie};
use std::io::BufRead;

/// Load a `prefix,asn[,role]` CSV into a longest-prefix-match table
/// (roles, when present, are ignored here — see [`load_registry`]).
///
/// Empty lines and `#` comments are skipped; malformed lines are an
/// error (a silently half-loaded routing table would misattribute ASes).
pub fn load_table(path: &str) -> Result<PrefixTrie<Asn>, String> {
    let mut trie = PrefixTrie::new();
    for_each_entry(path, |prefix, asn, _role| {
        trie.insert(prefix, asn);
    })?;
    Ok(trie)
}

/// Load a `prefix,asn[,role]` CSV into an [`lastmile_repro::prefix::AsRegistry`], preserving the
/// broadband/mobile/infrastructure roles the §4.2 mobile filter needs.
/// Lines without a role default to `broadband`.
pub fn load_registry(path: &str) -> Result<lastmile_repro::prefix::AsRegistry, String> {
    use lastmile_repro::prefix::AsRegistry;
    let mut reg = AsRegistry::new();
    for_each_entry(path, |prefix, asn, role| {
        reg.announce(asn, prefix, role);
    })?;
    Ok(reg)
}

fn for_each_entry(
    path: &str,
    mut f: impl FnMut(Prefix, Asn, lastmile_repro::prefix::PrefixRole),
) -> Result<(), String> {
    use lastmile_repro::prefix::PrefixRole;
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read {path}: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split(',');
        let prefix_s = parts.next().expect("split yields at least one part");
        let asn_s = parts
            .next()
            .ok_or_else(|| format!("{path}:{}: expected prefix,asn[,role]", lineno + 1))?;
        let prefix: Prefix = prefix_s
            .trim()
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let asn: Asn = asn_s
            .trim()
            .parse()
            .map_err(|_| format!("{path}:{}: invalid ASN {asn_s}", lineno + 1))?;
        let role = match parts.next().map(str::trim) {
            None | Some("") | Some("broadband") => PrefixRole::Broadband,
            Some("mobile") => PrefixRole::Mobile,
            Some("infrastructure") => PrefixRole::Infrastructure,
            Some(other) => {
                return Err(format!("{path}:{}: unknown role {other}", lineno + 1));
            }
        };
        f(prefix, asn, role);
    }
    Ok(())
}

/// Serialise a registry's announcements to the `prefix,asn,role` CSV
/// format (the `simulate` exporter's counterpart to [`load_registry`]).
pub fn table_to_csv(registry: &lastmile_repro::prefix::AsRegistry) -> String {
    use lastmile_repro::prefix::PrefixRole;
    let mut out = String::from("# prefix,asn,role\n");
    for asn in registry.asns().collect::<Vec<_>>() {
        for (prefix, role) in registry.prefixes_of(asn) {
            let role = match role {
                PrefixRole::Broadband => "broadband",
                PrefixRole::Mobile => "mobile",
                PrefixRole::Infrastructure => "infrastructure",
            };
            out.push_str(&format!("{prefix},{asn},{role}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_lookup() {
        let dir = std::env::temp_dir().join(format!("lastmile-bgp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.csv");
        std::fs::write(
            &path,
            "# comment\n20.0.0.0/16,64500\n20.1.0.0/16, 64501\n\n",
        )
        .unwrap();
        let trie = load_table(path.to_str().unwrap()).unwrap();
        assert_eq!(trie.len(), 2);
        let asn = trie.lookup("20.1.2.3".parse().unwrap()).map(|(_, &a)| a);
        assert_eq!(asn, Some(64501));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_lines_are_fatal() {
        let dir = std::env::temp_dir().join(format!("lastmile-bgp2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "20.0.0.0/16;64500\n").unwrap();
        assert!(load_table(path.to_str().unwrap()).is_err());
        std::fs::write(&path, "20.0.0.0/99,64500\n").unwrap();
        assert!(load_table(path.to_str().unwrap()).is_err());
        std::fs::write(&path, "20.0.0.0/16,banana\n").unwrap();
        assert!(load_table(path.to_str().unwrap()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_round_trip() {
        use lastmile_repro::prefix::{AsRegistry, PrefixRole};
        let mut reg = AsRegistry::new();
        reg.announce(1, "20.0.0.0/16".parse().unwrap(), PrefixRole::Broadband);
        reg.announce(2, "2400::/32".parse().unwrap(), PrefixRole::Broadband);
        let csv = table_to_csv(&reg);
        let dir = std::env::temp_dir().join(format!("lastmile-bgp3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.csv");
        std::fs::write(&path, &csv).unwrap();
        let trie = load_table(path.to_str().unwrap()).unwrap();
        assert_eq!(
            trie.lookup("20.0.5.5".parse().unwrap()).map(|(_, &a)| a),
            Some(1)
        );
        assert_eq!(
            trie.lookup("2400::1".parse().unwrap()).map(|(_, &a)| a),
            Some(2)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
