//! `lastmile throughput`: the §4.2 CDN-side analysis over on-disk logs —
//! the paper's filters (mobile prefixes, > 3 MB, cache-hit) followed by
//! per-AS binned median throughput.
//!
//! ```text
//! lastmile throughput --cdn FILE.tsv --bgp TABLE.csv
//!                     [--bin-minutes 15] [--view broadband|mobile|v4|v6]
//!                     [--csv OUT.csv]
//! ```
//!
//! The TSV format is one record per line:
//! `timestamp<TAB>client<TAB>bytes<TAB>duration_ms<TAB>HIT|MISS`
//! (what `lastmile simulate --scenario tokyo` exports, and what a real
//! CDN log trivially maps onto). The BGP table must carry roles
//! (`prefix,asn,role`) for the mobile filter to work.

use crate::bgp::load_registry;
use crate::Flags;
use lastmile_repro::cdnlog::throughput::daily_minima;
use lastmile_repro::cdnlog::{binned_median_throughput, AccessLogRecord, LogFilter};
use lastmile_repro::obs::trace;
use lastmile_repro::prefix::Asn;
use lastmile_repro::timebase::BinSpec;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};

pub fn run(flags: &Flags) -> Result<(), String> {
    let cdn_path = flags.required("cdn")?;
    let registry = load_registry(flags.required("bgp")?)?;
    let bin_minutes: i64 = flags.parsed("bin-minutes")?.unwrap_or(15);
    if bin_minutes <= 0 {
        return Err("--bin-minutes must be positive".into());
    }
    let bin = BinSpec::new(bin_minutes * 60);
    let filter = match flags.optional("view").unwrap_or("broadband") {
        "broadband" => LogFilter::paper_broadband(),
        "mobile" => LogFilter::paper_mobile(),
        "v4" => LogFilter::paper_broadband().family(false),
        "v6" => LogFilter {
            exclude_mobile: false,
            ..LogFilter::paper_broadband()
        }
        .family(true),
        other => return Err(format!("unknown --view {other} (broadband|mobile|v4|v6)")),
    };
    let mobile_only = flags.optional("view") == Some("mobile");

    // Stream the TSV, filter, and group records by client ASN.
    let span = trace::span("cdn_read");
    let file = std::fs::File::open(cdn_path).map_err(|e| format!("open {cdn_path}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let mut by_asn: BTreeMap<Asn, Vec<AccessLogRecord>> = BTreeMap::new();
    let mut parsed = 0usize;
    let mut skipped = 0usize;
    let mut filtered = 0usize;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read {cdn_path}: {e}"))?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let Ok(record) = AccessLogRecord::from_tsv(&line) else {
            skipped += 1;
            continue;
        };
        parsed += 1;
        if !filter.accepts(&record, &registry) {
            filtered += 1;
            continue;
        }
        // The mobile view keeps only mobile-prefix clients.
        if mobile_only && !registry.is_mobile(record.client) {
            filtered += 1;
            continue;
        }
        let Some(asn) = registry.asn_of(record.client) else {
            filtered += 1;
            continue;
        };
        by_asn.entry(asn).or_default().push(record);
    }
    eprintln!("[input] {parsed} records parsed, {skipped} malformed, {filtered} filtered out");
    drop(span);
    if by_asn.is_empty() {
        return Err("no records survive the filters".into());
    }

    let _span = trace::span("cdn_analyze");
    let mut csv_rows: Vec<String> = Vec::new();
    println!(
        "{:<10} {:>9} {:>7} {:>12} {:>12} {:>24}",
        "asn", "records", "bins", "median", "min bin", "daily minima (Mbps)"
    );
    for (asn, records) in &by_asn {
        let series = binned_median_throughput(records.iter(), bin);
        for &(t, v) in &series {
            csv_rows.push(format!("{asn},{},{v:.3}", t.as_secs()));
        }
        let vals: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
        let median = lastmile_repro::stats::median(&vals).unwrap_or(f64::NAN);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let minima: Vec<String> = daily_minima(&series)
            .iter()
            .map(|(_, v)| format!("{v:.0}"))
            .collect();
        println!(
            "AS{:<8} {:>9} {:>7} {:>8.1}Mbps {:>8.1}Mbps   [{}]",
            asn,
            records.len(),
            series.len(),
            median,
            min,
            minima.join(","),
        );
    }

    if let Some(out) = flags.optional("csv") {
        let mut f = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
        writeln!(f, "asn,unix_time,median_throughput_mbps")
            .and_then(|()| csv_rows.iter().try_for_each(|r| writeln!(f, "{r}")))
            .map_err(|e| format!("write {out}: {e}"))?;
        eprintln!("[csv] wrote {out} ({} rows)", csv_rows.len());
    }
    Ok(())
}
