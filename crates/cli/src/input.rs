//! Input handling: streaming Atlas-format traceroutes and probe metadata
//! from disk.
//!
//! Traceroute decode goes through `lastmile-ingest` (framing reader +
//! parallel parse workers over bounded queues); this module owns the
//! flag plumbing (`--ingest-threads`, `--ingest-serial`, `--quarantine`)
//! and the adapters between [`IngestSummary`] and the CLI's metrics and
//! triage outputs.

use crate::Flags;
use lastmile_repro::atlas::framing::{DocSplitter, Frame, FrameKind};
use lastmile_repro::atlas::{Probe, ProbeId, TracerouteResult};
use lastmile_repro::ingest::{ingest_file, IngestOptions, IngestSummary, Quarantined};
use lastmile_repro::obs::IngestTraffic;
use lastmile_repro::prefix::Asn;
use lastmile_repro::timebase::{TimeRange, UnixTime};
use std::collections::BTreeMap;
use std::io::Write;

/// Ingest tuning from the command line: `--ingest-threads N` (0 = one
/// worker per core, the default) and the retained `--ingest-serial`
/// reference path.
pub fn ingest_options(flags: &Flags) -> Result<IngestOptions, String> {
    Ok(IngestOptions {
        threads: flags.parsed::<usize>("ingest-threads")?.unwrap_or(0),
        serial: flags.switch("ingest-serial"),
        ..IngestOptions::default()
    })
}

/// Read traceroutes from a file that is either a JSON array or JSON Lines
/// (one Atlas document per line), streaming each into `f`.
///
/// Malformed records are quarantined, not fatal — real Atlas dumps
/// contain the occasional truncated document; the summary carries the
/// typed quarantine detail.
pub fn ingest_traceroutes(
    path: &str,
    options: &IngestOptions,
    f: impl FnMut(TracerouteResult),
) -> Result<IngestSummary, String> {
    ingest_file(path, options, f)
}

/// Map an ingest summary onto the obs counters. `with_quarantine: false`
/// reports only throughput (bytes, records, timers) — used for the second
/// classify pass over the same file, so the typed quarantine counts in
/// `--stats` stay per-file exact instead of double-counting.
pub fn ingest_traffic(summary: &IngestSummary, with_quarantine: bool) -> IngestTraffic {
    use lastmile_repro::ingest::QuarantineKind;
    IngestTraffic {
        bytes_read: summary.bytes_read,
        records_decoded: summary.parsed,
        quarantined_framing: if with_quarantine {
            summary.quarantined_of(QuarantineKind::Framing)
        } else {
            0
        },
        quarantined_json: if with_quarantine {
            summary.quarantined_of(QuarantineKind::Json)
        } else {
            0
        },
        quarantined_model: if with_quarantine {
            summary.quarantined_of(QuarantineKind::Model)
        } else {
            0
        },
        quarantined_panic: if with_quarantine {
            summary.quarantined_of(QuarantineKind::WorkerPanic)
        } else {
            0
        },
        frame_nanos: summary.frame_nanos,
        decode_nanos: summary.decode_nanos,
        wall_nanos: summary.wall_nanos,
        queue_max_depth: summary.queue_max_depth,
    }
}

/// Create `path`'s missing parent directories so an output flag pointed
/// into a fresh directory (`--quarantine out/triage.jsonl`) just works —
/// matching the experiments harness's `write_csv` behaviour. The error
/// names both the flag and the directory that could not be created.
pub fn create_parent_dirs(flag: &str, path: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent).map_err(|e| {
            format!(
                "cannot create directory {} for --{flag} {path}: {e}",
                parent.display()
            )
        })?;
    }
    Ok(())
}

/// Write quarantined records as a JSON Lines triage dump: one document
/// per record with its byte offset, typed kind, error detail, and the
/// raw record bytes (lossily decoded). Records arrive sorted by offset,
/// so the dump is deterministic for a given input.
pub fn write_quarantine(path: &str, quarantined: &[Quarantined]) -> Result<(), String> {
    create_parent_dirs("quarantine", path)?;
    let file =
        std::fs::File::create(path).map_err(|e| format!("create --quarantine {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    for q in quarantined {
        let doc = serde_json::json!({
            "offset": q.offset,
            "kind": q.kind.name(),
            "detail": q.detail,
            "record": String::from_utf8_lossy(&q.record).into_owned(),
        });
        writeln!(w, "{doc}").map_err(|e| format!("write --quarantine {path}: {e}"))?;
    }
    w.flush()
        .map_err(|e| format!("write --quarantine {path}: {e}"))?;
    Ok(())
}

/// Load probe metadata (a JSON array of [`Probe`] objects).
///
/// Errors are located: the failing element's byte offset and line in the
/// file are reported alongside the parse error, so a bad probe in a
/// large metadata dump can be found without bisecting.
pub fn load_probes(path: &str) -> Result<Vec<Probe>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut probes: Vec<Probe> = Vec::new();
    let mut first_err: Option<String> = None;
    let locate = |offset: u64| {
        let upto = &bytes[..(offset as usize).min(bytes.len())];
        let line = upto.iter().filter(|&&b| b == b'\n').count() + 1;
        format!("{path}:{line} (byte {offset})")
    };
    let mut emit = |frame: Frame<'_>| {
        if first_err.is_some() {
            return;
        }
        match frame {
            Frame::Doc { offset, bytes } => {
                match std::str::from_utf8(bytes)
                    .map_err(|e| e.to_string())
                    .and_then(|text| serde_json::from_str::<Probe>(text).map_err(|e| e.to_string()))
                {
                    Ok(p) => probes.push(p),
                    Err(e) => first_err = Some(format!("parse {}: {e}", locate(offset))),
                }
            }
            Frame::Junk { offset, reason, .. } => {
                first_err = Some(format!("parse {}: {reason}", locate(offset)));
            }
        }
    };
    let mut splitter = DocSplitter::new();
    splitter.feed(&bytes, &mut emit);
    let kind = splitter.kind();
    splitter.finish(&mut emit);
    if let Some(e) = first_err {
        return Err(e);
    }
    if kind.is_some() && kind != Some(FrameKind::Array) {
        return Err(format!("parse {path}: expected a JSON array of probes"));
    }
    Ok(probes)
}

/// Group probes by ASN, excluding anchors (the paper's default view).
pub fn group_by_asn(probes: &[Probe], anchors_only: bool) -> BTreeMap<Asn, Vec<ProbeId>> {
    let mut out: BTreeMap<Asn, Vec<ProbeId>> = BTreeMap::new();
    for p in probes {
        if p.is_anchor == anchors_only {
            out.entry(p.asn).or_default().push(p.id);
        }
    }
    out
}

/// The analysis window from `--start`/`--end` flags, or the span of the
/// data itself when omitted.
pub fn resolve_window(
    start: Option<i64>,
    end: Option<i64>,
    data_min: Option<UnixTime>,
    data_max: Option<UnixTime>,
) -> Result<TimeRange, String> {
    let start = start
        .map(UnixTime::from_secs)
        .or(data_min)
        .ok_or("no traceroutes and no --start given")?;
    let end = end
        .map(UnixTime::from_secs)
        .or_else(|| data_max.map(|t| t + 1))
        .ok_or("no traceroutes and no --end given")?;
    if end <= start {
        return Err(format!(
            "empty window: {} .. {}",
            start.as_secs(),
            end.as_secs()
        ));
    }
    Ok(TimeRange::new(start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_repro::atlas::ProbeVersion;

    fn probe(id: u32, asn: u32, anchor: bool) -> Probe {
        Probe {
            id: ProbeId(id),
            asn,
            country: "JP".into(),
            area: String::new(),
            is_anchor: anchor,
            version: ProbeVersion::V3,
            public_addr: "20.0.0.1".parse().unwrap(),
        }
    }

    #[test]
    fn grouping_excludes_anchors_by_default() {
        let probes = vec![probe(1, 10, false), probe(2, 10, true), probe(3, 20, false)];
        let groups = group_by_asn(&probes, false);
        assert_eq!(groups[&10], vec![ProbeId(1)]);
        assert_eq!(groups[&20], vec![ProbeId(3)]);
        let anchors = group_by_asn(&probes, true);
        assert_eq!(anchors[&10], vec![ProbeId(2)]);
        assert!(!anchors.contains_key(&20));
    }

    #[test]
    fn window_resolution() {
        let w = resolve_window(Some(100), Some(200), None, None).unwrap();
        assert_eq!(w.duration_secs(), 100);
        // Falls back to the data span (inclusive of the last instant).
        let w = resolve_window(
            None,
            None,
            Some(UnixTime::from_secs(10)),
            Some(UnixTime::from_secs(20)),
        )
        .unwrap();
        assert_eq!(w.start().as_secs(), 10);
        assert_eq!(w.end().as_secs(), 21);
        assert!(resolve_window(Some(5), Some(5), None, None).is_err());
        assert!(resolve_window(None, None, None, None).is_err());
    }

    #[test]
    fn streaming_jsonl_and_array() {
        use lastmile_repro::atlas::json::to_atlas_json;
        use lastmile_repro::atlas::{Hop, Reply};
        let tr = TracerouteResult {
            probe: ProbeId(5),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(100),
            dst: "20.9.9.9".parse().unwrap(),
            src: "192.168.1.10".parse().unwrap(),
            hops: vec![Hop {
                hop: 1,
                replies: vec![Reply::answered("192.168.1.1".parse().unwrap(), 1.0)],
            }],
        };
        let json = to_atlas_json(&tr, "20.0.0.1".parse().unwrap());
        let dir = std::env::temp_dir().join("lastmile-cli-test");
        std::fs::create_dir_all(&dir).unwrap();

        let opts = IngestOptions::default();

        // JSON Lines with one garbage line.
        let jsonl = dir.join("trs.jsonl");
        std::fs::write(&jsonl, format!("{json}\nnot-json\n{json}\n")).unwrap();
        let mut count = 0;
        let s = ingest_traceroutes(jsonl.to_str().unwrap(), &opts, |_| count += 1).unwrap();
        assert_eq!((s.parsed, s.skipped(), count), (2, 1, 2));

        // Array form.
        let array = dir.join("trs.json");
        std::fs::write(&array, format!("[{json},{json},{json}]")).unwrap();
        let mut count = 0;
        let s = ingest_traceroutes(array.to_str().unwrap(), &opts, |_| count += 1).unwrap();
        assert_eq!((s.parsed, s.skipped(), count), (3, 0, 3));
    }

    #[test]
    fn ingest_options_read_the_flags() {
        let args: Vec<String> = ["--ingest-threads", "3", "--ingest-serial"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = crate::Flags::parse(&args).unwrap();
        let opts = ingest_options(&flags).unwrap();
        assert_eq!(opts.threads, 3);
        assert!(opts.serial);
        let flags = crate::Flags::parse(&[]).unwrap();
        let opts = ingest_options(&flags).unwrap();
        assert_eq!(opts.threads, 0, "default is auto");
        assert!(!opts.serial);
    }

    #[test]
    fn probe_errors_are_located() {
        let dir = std::env::temp_dir().join("lastmile-cli-probe-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probes.json");
        let good = serde_json::to_string(&probe(1, 10, false)).unwrap();
        std::fs::write(&path, format!("[\n{good},\n{{\"id\": \"oops\"}}\n]")).unwrap();
        let err = load_probes(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("probes.json:3"), "{err}");
        assert!(err.contains("byte"), "{err}");
        // A clean file still loads.
        std::fs::write(&path, format!("[{good}]")).unwrap();
        assert_eq!(load_probes(path.to_str().unwrap()).unwrap().len(), 1);
        // A non-array file is rejected.
        std::fs::write(&path, &good).unwrap();
        assert!(load_probes(path.to_str().unwrap())
            .unwrap_err()
            .contains("array"));
    }
}
