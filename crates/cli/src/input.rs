//! Input handling: streaming Atlas-format traceroutes and probe metadata
//! from disk.

use lastmile_repro::atlas::json::AtlasTraceroute;
use lastmile_repro::atlas::{Probe, ProbeId, TracerouteResult};
use lastmile_repro::prefix::Asn;
use lastmile_repro::timebase::{TimeRange, UnixTime};
use std::collections::BTreeMap;
use std::io::BufRead;

/// Read traceroutes from a file that is either a JSON array or JSON Lines
/// (one Atlas document per line), streaming each into `f`.
///
/// Malformed lines are counted, not fatal — real Atlas dumps contain the
/// occasional truncated document. Returns `(parsed, skipped)`.
pub fn stream_traceroutes(
    path: &str,
    mut f: impl FnMut(TracerouteResult),
) -> Result<(usize, usize), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);

    // Peek the first non-whitespace byte to pick array vs lines.
    let first = {
        let buf = reader.fill_buf().map_err(|e| format!("read {path}: {e}"))?;
        buf.iter().copied().find(|b| !b.is_ascii_whitespace())
    };
    let mut parsed = 0usize;
    let mut skipped = 0usize;
    match first {
        Some(b'[') => {
            // Whole-file JSON array.
            let mut text = String::new();
            std::io::Read::read_to_string(&mut reader, &mut text)
                .map_err(|e| format!("read {path}: {e}"))?;
            let docs: Vec<AtlasTraceroute> =
                serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
            for doc in &docs {
                match doc.to_model() {
                    Ok(tr) => {
                        parsed += 1;
                        f(tr);
                    }
                    Err(_) => skipped += 1,
                }
            }
        }
        Some(_) => {
            // JSON Lines.
            for line in reader.lines() {
                let line = line.map_err(|e| format!("read {path}: {e}"))?;
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<AtlasTraceroute>(&line)
                    .map_err(|_| ())
                    .and_then(|d| d.to_model().map_err(|_| ()))
                {
                    Ok(tr) => {
                        parsed += 1;
                        f(tr);
                    }
                    Err(()) => skipped += 1,
                }
            }
        }
        None => {}
    }
    Ok((parsed, skipped))
}

/// Load probe metadata (a JSON array of [`Probe`] objects).
pub fn load_probes(path: &str) -> Result<Vec<Probe>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("open {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// Group probes by ASN, excluding anchors (the paper's default view).
pub fn group_by_asn(probes: &[Probe], anchors_only: bool) -> BTreeMap<Asn, Vec<ProbeId>> {
    let mut out: BTreeMap<Asn, Vec<ProbeId>> = BTreeMap::new();
    for p in probes {
        if p.is_anchor == anchors_only {
            out.entry(p.asn).or_default().push(p.id);
        }
    }
    out
}

/// The analysis window from `--start`/`--end` flags, or the span of the
/// data itself when omitted.
pub fn resolve_window(
    start: Option<i64>,
    end: Option<i64>,
    data_min: Option<UnixTime>,
    data_max: Option<UnixTime>,
) -> Result<TimeRange, String> {
    let start = start
        .map(UnixTime::from_secs)
        .or(data_min)
        .ok_or("no traceroutes and no --start given")?;
    let end = end
        .map(UnixTime::from_secs)
        .or_else(|| data_max.map(|t| t + 1))
        .ok_or("no traceroutes and no --end given")?;
    if end <= start {
        return Err(format!(
            "empty window: {} .. {}",
            start.as_secs(),
            end.as_secs()
        ));
    }
    Ok(TimeRange::new(start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_repro::atlas::ProbeVersion;

    fn probe(id: u32, asn: u32, anchor: bool) -> Probe {
        Probe {
            id: ProbeId(id),
            asn,
            country: "JP".into(),
            area: String::new(),
            is_anchor: anchor,
            version: ProbeVersion::V3,
            public_addr: "20.0.0.1".parse().unwrap(),
        }
    }

    #[test]
    fn grouping_excludes_anchors_by_default() {
        let probes = vec![probe(1, 10, false), probe(2, 10, true), probe(3, 20, false)];
        let groups = group_by_asn(&probes, false);
        assert_eq!(groups[&10], vec![ProbeId(1)]);
        assert_eq!(groups[&20], vec![ProbeId(3)]);
        let anchors = group_by_asn(&probes, true);
        assert_eq!(anchors[&10], vec![ProbeId(2)]);
        assert!(!anchors.contains_key(&20));
    }

    #[test]
    fn window_resolution() {
        let w = resolve_window(Some(100), Some(200), None, None).unwrap();
        assert_eq!(w.duration_secs(), 100);
        // Falls back to the data span (inclusive of the last instant).
        let w = resolve_window(
            None,
            None,
            Some(UnixTime::from_secs(10)),
            Some(UnixTime::from_secs(20)),
        )
        .unwrap();
        assert_eq!(w.start().as_secs(), 10);
        assert_eq!(w.end().as_secs(), 21);
        assert!(resolve_window(Some(5), Some(5), None, None).is_err());
        assert!(resolve_window(None, None, None, None).is_err());
    }

    #[test]
    fn streaming_jsonl_and_array() {
        use lastmile_repro::atlas::json::to_atlas_json;
        use lastmile_repro::atlas::{Hop, Reply};
        let tr = TracerouteResult {
            probe: ProbeId(5),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(100),
            dst: "20.9.9.9".parse().unwrap(),
            src: "192.168.1.10".parse().unwrap(),
            hops: vec![Hop {
                hop: 1,
                replies: vec![Reply::answered("192.168.1.1".parse().unwrap(), 1.0)],
            }],
        };
        let json = to_atlas_json(&tr, "20.0.0.1".parse().unwrap());
        let dir = std::env::temp_dir().join("lastmile-cli-test");
        std::fs::create_dir_all(&dir).unwrap();

        // JSON Lines with one garbage line.
        let jsonl = dir.join("trs.jsonl");
        std::fs::write(&jsonl, format!("{json}\nnot-json\n{json}\n")).unwrap();
        let mut count = 0;
        let (parsed, skipped) =
            stream_traceroutes(jsonl.to_str().unwrap(), |_| count += 1).unwrap();
        assert_eq!((parsed, skipped, count), (2, 1, 2));

        // Array form.
        let array = dir.join("trs.json");
        std::fs::write(&array, format!("[{json},{json},{json}]")).unwrap();
        let mut count = 0;
        let (parsed, skipped) =
            stream_traceroutes(array.to_str().unwrap(), |_| count += 1).unwrap();
        assert_eq!((parsed, skipped, count), (3, 0, 3));
    }
}
