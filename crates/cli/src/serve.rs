//! `lastmile serve`: the always-on congestion query daemon.
//!
//! Startup runs the exact `classify` analysis (same flags, same
//! two-pass ingest, same series cache — a warm `--cache-dir` snapshot
//! skips recomputation), then serves the results over a bounded
//! worker pool (`lastmile-serve`) until SIGTERM/SIGINT:
//!
//! | endpoint                      | payload                                             |
//! |-------------------------------|-----------------------------------------------------|
//! | `GET /v1/classify`            | the full `classify --json` document, byte-identical |
//! | `GET /v1/classify/{asn}`      | one ASN's classification document                   |
//! | `GET /v1/series/{asn}?from=&to=` | aggregated queuing-delay bins (half-open window) |
//! | `GET /v1/populations[?format=csv]` | the per-population stats table (JSON or CSV)   |
//! | `GET /healthz`                | liveness                                            |
//! | `GET /metrics`                | `{run: RunMetrics, serve: ServeMetrics}` JSON       |
//!
//! Shutdown drains queued and in-flight requests, then re-persists the
//! series-cache snapshot (if one is active) so series built for queries
//! survive the restart.

use crate::classify::{analyze_file_with_cache, classification_doc, classification_json};
use crate::input::create_parent_dirs;
use crate::stats::{emit_stats, wants_stats};
use crate::Flags;
use lastmile_repro::core::pipeline::PopulationAnalysis;
use lastmile_repro::obs::{
    RunMetrics, RunMetricsSnapshot, ServeEndpoint, ServeMetrics, ServeMetricsSnapshot, StageTimer,
};
use lastmile_repro::prefix::Asn;
use lastmile_repro::serve::http::{Request, Response};
use lastmile_repro::serve::server::Handler;
use lastmile_repro::serve::{signal, Server, ServerConfig};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Everything the request handler needs, built once before the first
/// `accept`. Classification responses are pre-rendered (the corpus is
/// immutable for the daemon's lifetime — live re-ingest is a ROADMAP
/// lever); metrics documents render per request so gauges stay live.
struct ServeState {
    /// Exact `classify --json` bytes for `GET /v1/classify`.
    classify_all: String,
    /// Pre-rendered single-ASN documents.
    classify_by_asn: BTreeMap<Asn, String>,
    /// Aggregated signal points per ASN for `/v1/series`.
    series_by_asn: BTreeMap<Asn, SeriesData>,
    metrics: Arc<RunMetrics>,
    serve_metrics: Arc<ServeMetrics>,
    /// Hidden test hook (`--serve-delay-ms`): sleep this long in the
    /// handler, so tests can park requests in flight deterministically.
    delay: Option<Duration>,
}

/// One ASN's aggregated queuing-delay signal, ready to slice.
struct SeriesData {
    bin_seconds: i64,
    coverage: f64,
    max_ms: Option<f64>,
    /// `(bin start unix seconds, median queuing delay ms)`; `None` where
    /// the sanity filter left the bin empty.
    points: Vec<(i64, Option<f64>)>,
}

/// `GET /v1/series/{asn}` response document.
#[derive(Serialize)]
struct SeriesDoc {
    asn: Asn,
    bin_seconds: i64,
    from: i64,
    to: i64,
    coverage: f64,
    max_agg_delay_ms: Option<f64>,
    points: Vec<SeriesPoint>,
}

/// One aggregated bin: its start time and the population-median queuing
/// delay (`null` where the sanity filter left the bin empty).
#[derive(Serialize)]
struct SeriesPoint {
    t: i64,
    ms: Option<f64>,
}

/// `GET /metrics` response document.
#[derive(Serialize)]
struct MetricsDoc {
    run: RunMetricsSnapshot,
    serve: ServeMetricsSnapshot,
}

pub fn run(flags: &Flags) -> Result<(), String> {
    // Metrics are always collected: `/metrics` serves them.
    let metrics = Arc::new(RunMetrics::new());
    let run_timer = StageTimer::start();
    let (results, cache) = analyze_file_with_cache(flags, Some(&metrics))?;
    metrics.set_wall(&run_timer);
    if results.is_empty() {
        return Err("no analysable traceroutes in the window".into());
    }

    let serve_metrics = Arc::new(ServeMetrics::new());
    let state = Arc::new(ServeState {
        classify_all: classification_json(&results),
        classify_by_asn: results
            .iter()
            .map(|(asn, a)| (*asn, render_one(*asn, a)))
            .collect(),
        series_by_asn: results
            .iter()
            .map(|(asn, a)| {
                (
                    *asn,
                    SeriesData {
                        bin_seconds: a.aggregated.bin().width_secs(),
                        coverage: a.aggregated.coverage(),
                        max_ms: a.aggregated.max(),
                        points: a.aggregated.iter().map(|(t, v)| (t.as_secs(), v)).collect(),
                    },
                )
            })
            .collect(),
        metrics: Arc::clone(&metrics),
        serve_metrics: Arc::clone(&serve_metrics),
        delay: flags
            .parsed::<u64>("serve-delay-ms")?
            .map(Duration::from_millis),
    });

    let config = ServerConfig {
        addr: flags
            .optional("addr")
            .unwrap_or("127.0.0.1:8437")
            .to_string(),
        workers: flags.parsed::<usize>("serve-workers")?.unwrap_or(4),
        queue: flags.parsed::<usize>("serve-queue")?.unwrap_or(16),
        retry_after_secs: flags.parsed::<u64>("retry-after")?.unwrap_or(1),
    };
    let server = Server::bind(config.clone(), Arc::clone(&serve_metrics))
        .map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = server.local_addr();
    eprintln!(
        "[serve] listening on {addr} ({} workers, queue {}, {} population(s))",
        config.workers.max(1),
        config.queue.max(1),
        results.len()
    );
    // Test/orchestration hook: the actual bound address (the port is
    // ephemeral under `--addr host:0`), written once ready to accept.
    if let Some(path) = flags.optional("ready-file") {
        create_parent_dirs("ready-file", path)?;
        let mut contents = addr.to_string();
        contents.push('\n');
        std::fs::write(path, contents).map_err(|e| format!("write --ready-file {path}: {e}"))?;
    }

    signal::install();
    let handler: Arc<Handler> = Arc::new(move |req: &Request| route(req, &state));
    server
        .run(handler, signal::flag())
        .map_err(|e| format!("serve on {addr}: {e}"))?;
    let served = serve_metrics
        .requests
        .load(std::sync::atomic::Ordering::Relaxed);
    eprintln!("[serve] shutdown: drained, {served} request(s) served");
    // The startup analysis already persisted once; re-persisting at
    // shutdown is what keeps this correct when later levers (live
    // re-ingest) mutate the store while serving.
    if let Some(cache) = &cache {
        cache.persist(Some(&metrics))?;
    }
    if wants_stats(flags) {
        emit_stats(flags, &metrics)?;
    }
    Ok(())
}

/// Pretty-print one ASN's document with a trailing newline (the same
/// rendering `classify --json` gives the array elements).
fn render_one(asn: Asn, a: &PopulationAnalysis) -> String {
    let mut s = serde_json::to_string_pretty(&classification_doc(asn, a)).expect("json encodes");
    s.push('\n');
    s
}

fn route(req: &Request, state: &ServeState) -> Response {
    if let Some(delay) = state.delay {
        std::thread::sleep(delay);
    }
    match req.path.as_str() {
        "/healthz" => Response::json(200, "{\"status\":\"ok\"}\n").endpoint(ServeEndpoint::Healthz),
        "/metrics" => {
            let doc = MetricsDoc {
                run: state.metrics.snapshot(),
                serve: state.serve_metrics.snapshot(),
            };
            let mut body = serde_json::to_string_pretty(&doc).expect("metrics doc encodes");
            body.push('\n');
            Response::json(200, body).endpoint(ServeEndpoint::Metrics)
        }
        "/v1/classify" => {
            Response::json(200, state.classify_all.clone()).endpoint(ServeEndpoint::Classify)
        }
        "/v1/populations" => populations(req, state),
        path => {
            if let Some(rest) = path.strip_prefix("/v1/classify/") {
                classify_one(rest, state)
            } else if let Some(rest) = path.strip_prefix("/v1/series/") {
                series(rest, req, state)
            } else {
                Response::json(404, "{\"error\":\"no such endpoint\"}\n")
            }
        }
    }
}

/// Parse the `{asn}` path segment (`0` is the "all probes" population).
fn parse_asn(segment: &str) -> Result<Asn, Response> {
    segment
        .parse::<Asn>()
        .map_err(|_| Response::json(400, format!("{{\"error\":\"invalid asn {segment:?}\"}}\n")))
}

fn classify_one(segment: &str, state: &ServeState) -> Response {
    let resp = match parse_asn(segment) {
        Ok(asn) => match state.classify_by_asn.get(&asn) {
            Some(doc) => Response::json(200, doc.clone()),
            None => Response::json(404, format!("{{\"error\":\"unknown asn {asn}\"}}\n")),
        },
        Err(resp) => resp,
    };
    resp.endpoint(ServeEndpoint::Classify)
}

/// Parse an integer query bound. Absent keys AND empty values
/// (`?from=&to=` — what a form with blank fields submits) mean
/// "unbounded" and fall back to `default`; anything else must parse or
/// the whole request 400s.
fn query_bound(req: &Request, key: &str, default: i64) -> Result<i64, Response> {
    match req.query_param(key) {
        None | Some("") => Ok(default),
        Some(v) => v
            .parse::<i64>()
            .map_err(|_| Response::json(400, format!("{{\"error\":\"invalid {key}={v:?}\"}}\n"))),
    }
}

fn series(segment: &str, req: &Request, state: &ServeState) -> Response {
    let resp = match (
        parse_asn(segment),
        query_bound(req, "from", i64::MIN),
        query_bound(req, "to", i64::MAX),
    ) {
        (Ok(asn), Ok(from), Ok(to)) => match state.series_by_asn.get(&asn) {
            Some(data) => {
                // Half-open [from, to), like the analysis window.
                let points: Vec<SeriesPoint> = data
                    .points
                    .iter()
                    .filter(|(t, _)| *t >= from && *t < to)
                    .map(|&(t, ms)| SeriesPoint { t, ms })
                    .collect();
                let doc = SeriesDoc {
                    asn,
                    bin_seconds: data.bin_seconds,
                    from,
                    to,
                    coverage: data.coverage,
                    max_agg_delay_ms: data.max_ms,
                    points,
                };
                let mut body = serde_json::to_string_pretty(&doc).expect("series doc encodes");
                body.push('\n');
                Response::json(200, body)
            }
            None => Response::json(404, format!("{{\"error\":\"unknown asn {asn}\"}}\n")),
        },
        (Err(resp), _, _) | (_, Err(resp), _) | (_, _, Err(resp)) => resp,
    };
    resp.endpoint(ServeEndpoint::Series)
}

fn populations(req: &Request, state: &ServeState) -> Response {
    let snapshot = state.metrics.snapshot();
    let resp = match req.query_param("format") {
        Some("csv") => Response::csv(200, snapshot.populations_csv()),
        None | Some("json") => {
            let mut body = serde_json::to_string_pretty(&snapshot.populations)
                .expect("population table encodes");
            body.push('\n');
            Response::json(200, body)
        }
        Some(other) => Response::json(
            400,
            format!("{{\"error\":\"unknown format {other:?} (json|csv)\"}}\n"),
        ),
    };
    resp.endpoint(ServeEndpoint::Populations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(query: &str) -> Request {
        Request {
            method: "GET".into(),
            path: "/v1/series/64500".into(),
            query: query.into(),
            headers: Vec::new(),
        }
    }

    #[test]
    fn query_bound_defaults_on_absent_and_empty() {
        // `/v1/series/{asn}?from=&to=` — empty values mean "unbounded",
        // exactly like leaving the keys off.
        for q in ["", "from=&to=", "from=", "to="] {
            let r = req(q);
            assert_eq!(query_bound(&r, "from", i64::MIN), Ok(i64::MIN), "q={q:?}");
            assert_eq!(query_bound(&r, "to", i64::MAX), Ok(i64::MAX), "q={q:?}");
        }
    }

    #[test]
    fn query_bound_parses_values_and_rejects_junk() {
        let r = req("from=100&to=-5");
        assert_eq!(query_bound(&r, "from", i64::MIN), Ok(100));
        assert_eq!(query_bound(&r, "to", i64::MAX), Ok(-5));
        let bad = query_bound(&req("from=soon"), "from", i64::MIN).unwrap_err();
        assert_eq!(bad.status, 400);
        assert!(String::from_utf8_lossy(&bad.body).contains("invalid from"));
        // A valueless pair is an empty value, not a parse error.
        assert_eq!(query_bound(&req("from"), "from", 7), Ok(7));
    }

    #[test]
    fn query_bound_uses_first_of_repeated_keys() {
        let r = req("from=1&from=2&to=&to=9");
        assert_eq!(query_bound(&r, "from", i64::MIN), Ok(1));
        // First `to` is empty ⇒ default wins even though a later
        // occurrence carries a value (first-wins, same as query_param).
        assert_eq!(query_bound(&r, "to", i64::MAX), Ok(i64::MAX));
    }
}
