//! `lastmile serve`: the always-on congestion observatory daemon.
//!
//! Startup runs the exact `classify` analysis (same flags, same
//! two-pass ingest, same series cache — a warm `--cache-dir` snapshot
//! skips recomputation), then serves the results over a bounded
//! worker pool (`lastmile-serve`) until SIGTERM/SIGINT:
//!
//! | endpoint                      | payload                                             |
//! |-------------------------------|-----------------------------------------------------|
//! | `GET /v1/classify`            | the full `classify --json` document, byte-identical |
//! | `GET /v1/classify/{asn}`      | one ASN's classification document                   |
//! | `GET /v1/series/{asn}?from=&to=` | aggregated queuing-delay bins (half-open window) |
//! | `GET /v1/populations[?format=csv]` | the per-population stats table (JSON or CSV)   |
//! | `POST /v1/traceroutes`        | live intake: JSON Lines body → spool → re-analysis |
//! | `GET /healthz`                | liveness (fast lane: answers even when saturated)   |
//! | `GET /metrics`                | `{run, serve, live}` JSON (fast lane)               |
//!
//! # Live re-ingest
//!
//! With `--watch` and/or `--live-spool`, the daemon keeps ingesting
//! after startup: `--watch` polls the corpus file for appended records,
//! and `--live-spool FILE` enables `POST /v1/traceroutes` (accepted
//! records are appended to the spool, which is part of the analysis
//! corpus from startup). Either intake path marks the engine dirty;
//! after a debounce window (`--reanalyze-debounce-ms`) the engine
//! re-runs the full two-pass analysis over the union corpus — cheap,
//! because per-probe series are memoized in the store and only probes
//! with new traceroutes were invalidated — and publishes the result as
//! a new **epoch**: an RCU-style atomic snapshot swap. In-flight
//! readers keep the epoch they started with (the `X-Epoch` header names
//! it) and never block on re-analysis. At any instant `GET /v1/classify`
//! is byte-identical to a cold `classify --json` over corpus + spool.
//!
//! Shutdown drains queued and in-flight requests AND any pending
//! re-analysis (so the last accepted appends reach the store), then
//! re-persists the series-cache snapshot stamped with the final union
//! corpus fingerprint — but only if the corpus still ends where the
//! last analysis read it (see [`persist_live_snapshot`]); otherwise the
//! snapshot is skipped and the next start recomputes cold.

use crate::cache::{self, Cache};
use crate::classify::{
    analyze_corpus, classification_doc, classification_json, corpus_fingerprint,
};
use crate::input::create_parent_dirs;
use crate::stats::{emit_stats, wants_stats};
use crate::Flags;
use lastmile_repro::core::pipeline::PopulationAnalysis;
use lastmile_repro::live::{
    intake_body, newline_aligned_len, AppendWatcher, Epoch, LiveConfig, LiveEngine, LiveHandle,
    Spool,
};
use lastmile_repro::obs::ops::TIMELINE_METRICS;
use lastmile_repro::obs::{
    prom, EpochTelemetry, LiveMetrics, LiveMetricsSnapshot, OpsTimeline, RunMetrics,
    RunMetricsSnapshot, ServeEndpoint, ServeMetrics, ServeMetricsSnapshot, StageTimer,
    TimelineSample,
};
use lastmile_repro::prefix::Asn;
use lastmile_repro::serve::http::{Request, Response};
use lastmile_repro::serve::server::Handler;
use lastmile_repro::serve::{signal, AccessLog, Server, ServerConfig};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// One fully-rendered analysis generation: everything a request needs,
/// immutable once published. Re-analysis builds the next one off to the
/// side and swaps it in via the [`Epoch`] cell.
struct AnalysisSnapshot {
    /// Exact `classify --json` bytes for `GET /v1/classify`.
    classify_all: String,
    /// Pre-rendered single-ASN documents.
    classify_by_asn: BTreeMap<Asn, String>,
    /// Aggregated signal points per ASN for `/v1/series`.
    series_by_asn: BTreeMap<Asn, SeriesData>,
    /// The run metrics of the analysis that produced this snapshot
    /// (startup or one re-analysis); `/metrics.run` and
    /// `/v1/populations` stay consistent with the classification.
    run: RunMetricsSnapshot,
}

/// Live-intake plumbing, present when `--watch`/`--live-spool` enabled.
struct LiveState {
    handle: LiveHandle,
    /// POST spool; `None` when only `--watch` is on (POST then 409s).
    spool: Option<Arc<Spool>>,
}

/// Everything the request handler needs, built once before the first
/// `accept`. Classification responses live in the epoch cell; metrics
/// documents render per request so gauges stay live.
struct ServeState {
    epoch: Arc<Epoch<AnalysisSnapshot>>,
    serve_metrics: Arc<ServeMetrics>,
    live_metrics: Arc<LiveMetrics>,
    live: Option<LiveState>,
    /// Hidden test hook (`--serve-delay-ms`): sleep this long in the
    /// handler, so tests can park requests in flight deterministically.
    /// Health and metrics probes are exempt — the fast lane must stay
    /// fast even in tests that park everything else.
    delay: Option<Duration>,
    /// Hidden test hook (`--serve-heavy-delay-ms`): extra sleep applied
    /// only to the heavy endpoint (`GET /v1/classify`), so saturation
    /// tests can flood an expensive class while cheap endpoints stay
    /// genuinely fast.
    heavy_delay: Option<Duration>,
    /// Self-scraped metrics timeline for `GET /v1/ops/timeline`.
    timeline: Arc<OpsTimeline>,
    /// Per-pass re-analysis records for `GET /v1/ops/epochs`.
    telemetry: Arc<EpochTelemetry>,
}

/// One ASN's aggregated queuing-delay signal, ready to slice.
struct SeriesData {
    bin_seconds: i64,
    coverage: f64,
    max_ms: Option<f64>,
    /// `(bin start unix seconds, median queuing delay ms)`; `None` where
    /// the sanity filter left the bin empty.
    points: Vec<(i64, Option<f64>)>,
}

/// `GET /v1/series/{asn}` response document.
#[derive(Serialize)]
struct SeriesDoc {
    asn: Asn,
    bin_seconds: i64,
    from: i64,
    to: i64,
    coverage: f64,
    max_agg_delay_ms: Option<f64>,
    points: Vec<SeriesPoint>,
}

/// One aggregated bin: its start time and the population-median queuing
/// delay (`null` where the sanity filter left the bin empty).
#[derive(Serialize)]
struct SeriesPoint {
    t: i64,
    ms: Option<f64>,
}

/// `GET /metrics` response document.
#[derive(Serialize)]
struct MetricsDoc {
    run: RunMetricsSnapshot,
    serve: ServeMetricsSnapshot,
    live: LiveMetricsSnapshot,
}

/// Render the per-ASN analyses into one immutable snapshot.
fn build_snapshot(
    results: &[(Asn, PopulationAnalysis)],
    run: RunMetricsSnapshot,
) -> AnalysisSnapshot {
    AnalysisSnapshot {
        classify_all: classification_json(results),
        classify_by_asn: results
            .iter()
            .map(|(asn, a)| (*asn, render_one(*asn, a)))
            .collect(),
        series_by_asn: results
            .iter()
            .map(|(asn, a)| {
                (
                    *asn,
                    SeriesData {
                        bin_seconds: a.aggregated.bin().width_secs(),
                        coverage: a.aggregated.coverage(),
                        max_ms: a.aggregated.max(),
                        points: a.aggregated.iter().map(|(t, v)| (t.as_secs(), v)).collect(),
                    },
                )
            })
            .collect(),
        run,
    }
}

/// Swap in a new snapshot and record the swap in the live gauges.
fn publish_snapshot(
    epoch: &Epoch<AnalysisSnapshot>,
    live_metrics: &LiveMetrics,
    snapshot: AnalysisSnapshot,
) -> u64 {
    let swap_timer = StageTimer::start();
    let generation = epoch.publish(snapshot);
    live_metrics
        .swap_nanos
        .store(swap_timer.elapsed_nanos(), Ordering::Relaxed);
    live_metrics.epoch.store(generation, Ordering::Relaxed);
    generation
}

pub fn run(flags: &Flags) -> Result<(), String> {
    let corpus = flags.required("traceroutes")?.to_string();
    let watch = flags.switch("watch");
    // The corpus length BEFORE the startup analysis reads it: appends
    // that land mid-analysis stay beyond the watcher's start offset and
    // get picked up by the first poll instead of being silently skipped.
    // Newline-aligned, not a bare metadata length: a collector append
    // can be mid-record right now, and an offset inside that record
    // would make the watcher's first poll frame the record's tail as
    // quarantined junk.
    let corpus_len0 = newline_aligned_len(&corpus);
    let spool: Option<Arc<Spool>> = flags
        .optional("live-spool")
        .map(|p| Spool::open(p).map_err(|e| format!("open --live-spool {p}: {e}")))
        .transpose()?
        .map(Arc::new);
    let live_enabled = watch || spool.is_some();
    // The analysis corpus: the traceroute file plus (in live mode) the
    // POST spool. Both cold `classify` over these paths and every
    // re-analysis see the same union, which is what makes the
    // byte-identity contract hold.
    let mut paths = vec![corpus.clone()];
    if let Some(s) = &spool {
        paths.push(s.path().display().to_string());
    }
    // The union-corpus file lengths the memoizing store is known to
    // reflect: seeded before the startup fingerprint/analysis read the
    // files, replaced by each successful re-analysis with the lengths
    // *it* read, and cleared (`None`) by a failed one. The shutdown
    // persist only stamps a fingerprint while the files still have
    // exactly these lengths — see [`persist_live_snapshot`].
    let analyzed_lens = Arc::new(Mutex::new(corpus_lens(&paths)));

    // Metrics are always collected: `/metrics` serves them.
    let metrics = Arc::new(RunMetrics::new());
    let run_timer = StageTimer::start();
    let cache: Option<Arc<Cache>> =
        cache::from_flags(flags, || corpus_fingerprint(flags, &paths), Some(&metrics))?
            .map(Arc::new);
    let results = analyze_corpus(flags, &paths, Some(&metrics), cache.as_deref())?;
    metrics.set_wall(&run_timer);
    if results.is_empty() {
        return Err("no analysable traceroutes in the window".into());
    }
    if let Some(c) = &cache {
        c.persist(Some(&metrics))?;
    }

    let serve_metrics = Arc::new(ServeMetrics::new());
    let live_metrics = Arc::new(LiveMetrics::default());
    // Ops plane: the epoch-telemetry ring fills as re-analyses run; the
    // timeline ring fills from the sampler thread below. Both exist
    // even when their producers are disabled, so the `/v1/ops/*`
    // endpoints always answer (with empty rings) instead of 404ing
    // based on configuration.
    let telemetry = Arc::new(EpochTelemetry::new());
    let timeline = Arc::new(OpsTimeline::new());
    let epoch = Arc::new(Epoch::new(build_snapshot(&results, metrics.snapshot())));
    live_metrics
        .epoch
        .store(epoch.generation(), Ordering::Relaxed);

    // The live engine: watcher + debounced re-analysis, wired to this
    // daemon's cache and epoch cell through closures so `lastmile-live`
    // stays free of CLI types.
    let engine = if live_enabled {
        let watcher = if watch {
            let offset_file = flags
                .optional("live-offset-file")
                .map(std::path::PathBuf::from)
                .or_else(|| {
                    flags
                        .optional("cache-dir")
                        .map(|d| std::path::Path::new(d).join("live.offset"))
                })
                .unwrap_or_else(|| std::path::PathBuf::from(format!("{corpus}.offset")));
            Some(AppendWatcher::new(&corpus, Some(offset_file), corpus_len0))
        } else {
            None
        };
        let config = LiveConfig {
            watcher,
            poll_interval: Duration::from_millis(
                flags.parsed::<u64>("watch-poll-ms")?.unwrap_or(200),
            ),
            debounce: Duration::from_millis(
                flags.parsed::<u64>("reanalyze-debounce-ms")?.unwrap_or(250),
            ),
            telemetry: Some(Arc::clone(&telemetry)),
        };
        let invalidate = {
            let cache = cache.clone();
            Box::new(move |probes: &[lastmile_repro::atlas::ProbeId]| {
                if let Some(c) = &cache {
                    for probe in probes {
                        c.store.invalidate_probe(*probe);
                    }
                }
            })
        };
        let invalidate_all = {
            let cache = cache.clone();
            Box::new(move || {
                if let Some(c) = &cache {
                    c.store.clear();
                }
            })
        };
        let reanalyze = {
            let flags = flags.clone();
            let paths = paths.clone();
            let cache = cache.clone();
            let epoch = Arc::clone(&epoch);
            let live_metrics = Arc::clone(&live_metrics);
            let analyzed_lens = Arc::clone(&analyzed_lens);
            Box::new(move || -> Result<(), String> {
                // Lengths before the read: append-only files mean the
                // analysis covers at least these bytes, so the shutdown
                // persist can stamp a fingerprint iff the files still
                // end exactly here (nothing landed after the read).
                let lens_before = corpus_lens(&paths);
                // A fresh RunMetrics per re-analysis: each epoch's
                // `/metrics.run` and `/v1/populations` describe exactly
                // the run that produced it, not an accumulation.
                let run = RunMetrics::new();
                let timer = StageTimer::start();
                let outcome = (|| {
                    let results = analyze_corpus(&flags, &paths, Some(&run), cache.as_deref())?;
                    run.set_wall(&timer);
                    if results.is_empty() {
                        return Err("no analysable traceroutes in the window".into());
                    }
                    let snapshot = build_snapshot(&results, run.snapshot());
                    let generation = publish_snapshot(&epoch, &live_metrics, snapshot);
                    eprintln!(
                        "[live] epoch {generation}: {} population(s) published",
                        results.len()
                    );
                    Ok(())
                })();
                // A failed pass may have memoized series from bytes no
                // published epoch reflects; `None` makes the shutdown
                // persist skip rather than stamp a lying fingerprint.
                *analyzed_lens.lock().expect("lens lock poisoned") = match &outcome {
                    Ok(()) => lens_before,
                    Err(_) => None,
                };
                outcome
            })
        };
        Some(LiveEngine::start(
            config,
            Arc::clone(&live_metrics),
            invalidate,
            invalidate_all,
            reanalyze,
        ))
    } else {
        None
    };

    let state = Arc::new(ServeState {
        epoch: Arc::clone(&epoch),
        serve_metrics: Arc::clone(&serve_metrics),
        live_metrics: Arc::clone(&live_metrics),
        live: engine.as_ref().map(|e| LiveState {
            handle: e.handle(),
            spool: spool.clone(),
        }),
        delay: flags
            .parsed::<u64>("serve-delay-ms")?
            .map(Duration::from_millis),
        heavy_delay: flags
            .parsed::<u64>("serve-heavy-delay-ms")?
            .map(Duration::from_millis),
        timeline: Arc::clone(&timeline),
        telemetry: Arc::clone(&telemetry),
    });

    // `--access-log FILE`: structured request logs via a bounded
    // non-blocking writer (see `lastmile_serve::access`).
    let access_log = match flags.optional("access-log") {
        Some(path) => {
            create_parent_dirs("access-log", path)?;
            Some(
                AccessLog::create(std::path::Path::new(path))
                    .map_err(|e| format!("open --access-log {path}: {e}"))?,
            )
        }
        None => None,
    };

    let config = ServerConfig {
        addr: flags
            .optional("addr")
            .unwrap_or("127.0.0.1:8437")
            .to_string(),
        workers: flags.parsed::<usize>("serve-workers")?.unwrap_or(4),
        queue: flags.parsed::<usize>("serve-queue")?.unwrap_or(16),
        fastlane_queue: flags.parsed::<usize>("serve-fastlane-queue")?.unwrap_or(32),
        retry_after_secs: flags.parsed::<u64>("retry-after")?.unwrap_or(1),
        budget_cheap: flags.parsed::<usize>("serve-budget-cheap")?.unwrap_or(0),
        budget_heavy: flags.parsed::<usize>("serve-budget-heavy")?.unwrap_or(0),
        budget_intake: flags.parsed::<usize>("serve-budget-intake")?.unwrap_or(0),
        access_log,
    };
    let server = Server::bind(config.clone(), Arc::clone(&serve_metrics))
        .map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = server.local_addr();
    eprintln!(
        "[serve] listening on {addr} ({} workers, queue {}, {} population(s){})",
        config.workers.max(1),
        config.queue.max(1),
        results.len(),
        if live_enabled { ", live" } else { "" }
    );
    // Test/orchestration hook: the actual bound address (the port is
    // ephemeral under `--addr host:0`), written once ready to accept.
    if let Some(path) = flags.optional("ready-file") {
        create_parent_dirs("ready-file", path)?;
        let mut contents = addr.to_string();
        contents.push('\n');
        std::fs::write(path, contents).map_err(|e| format!("write --ready-file {path}: {e}"))?;
    }

    // Self-scrape sampler: snapshot the metrics surface into the
    // timeline ring every `--ops-sample-ms` (default 1s; 0 disables).
    let sample_ms = flags.parsed::<u64>("ops-sample-ms")?.unwrap_or(1000);
    let sampler = if sample_ms > 0 {
        let timeline = Arc::clone(&timeline);
        let serve_metrics = Arc::clone(&serve_metrics);
        let live_metrics = Arc::clone(&live_metrics);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ops-sampler".into())
            .spawn(move || {
                sampler_loop(
                    &timeline,
                    &serve_metrics,
                    &live_metrics,
                    sample_ms,
                    &stop_flag,
                )
            })
            .map_err(|e| format!("spawn ops sampler: {e}"))?;
        Some((stop, handle))
    } else {
        None
    };

    signal::install();
    let handler: Arc<Handler> = Arc::new(move |req: &Request| route(req, &state));
    let run_result = server
        .run(handler, signal::flag())
        .map_err(|e| format!("serve on {addr}: {e}"));
    if let Some((stop, handle)) = sampler {
        stop.store(true, Ordering::Relaxed);
        let _ = handle.join();
    }
    run_result?;
    // Drain the live engine BEFORE reporting/persisting: a re-analysis
    // in flight (or pending behind the debounce) finishes and swaps its
    // epoch, so the persisted snapshot below reflects every accepted
    // append — never a mix of epochs.
    if let Some(engine) = engine {
        engine.shutdown();
    }
    let served = serve_metrics.requests.load(Ordering::Relaxed);
    eprintln!("[serve] shutdown: drained, {served} request(s) served");
    if let Some(c) = &cache {
        if live_enabled {
            persist_live_snapshot(c, flags, &paths, &analyzed_lens, &metrics)?;
        } else {
            c.persist(Some(&metrics))?;
        }
    }
    if wants_stats(flags) {
        emit_stats(flags, &metrics)?;
    }
    Ok(())
}

/// The byte lengths of the union-corpus files, in `paths` order
/// (`None` when any is unreadable).
fn corpus_lens(paths: &[String]) -> Option<Vec<u64>> {
    paths
        .iter()
        .map(|p| std::fs::metadata(p).map(|m| m.len()).ok())
        .collect()
}

/// Re-persist the series cache after a live run. The corpus grew while
/// serving, so the snapshot must be stamped with a fingerprint of
/// exactly the bytes the store reflects — the bytes the last successful
/// analysis read. Those bytes are only nameable while the (append-only)
/// files still end where that read found them, so the lengths are
/// checked against the last pass's both before and after the
/// fingerprint scan; any drift — a record landing after the final
/// drain, a failed last pass, an unreadable file — skips persisting.
/// Skipping is the safe side: the next start recomputes cold, whereas a
/// fingerprint claiming bytes the store never saw would make a warm
/// start serve stale memoized series with no error.
fn persist_live_snapshot(
    cache: &Cache,
    flags: &Flags,
    paths: &[String],
    analyzed_lens: &Mutex<Option<Vec<u64>>>,
    metrics: &RunMetrics,
) -> Result<(), String> {
    let skip = |why: &str| {
        eprintln!("[cache] {why}; leaving the snapshot unpersisted (next start recomputes)");
        Ok(())
    };
    let Some(expected) = analyzed_lens.lock().expect("lens lock poisoned").clone() else {
        return skip("last re-analysis did not complete cleanly");
    };
    if corpus_lens(paths).as_ref() != Some(&expected) {
        return skip("corpus changed after the last analysis");
    }
    let fingerprint = match corpus_fingerprint(flags, paths) {
        Ok(f) => f,
        Err(e) => return skip(&format!("cannot fingerprint the final corpus ({e})")),
    };
    if corpus_lens(paths).as_ref() != Some(&expected) {
        return skip("corpus changed while fingerprinting");
    }
    cache.persist_as(fingerprint, Some(metrics))
}

/// Pretty-print one ASN's document with a trailing newline (the same
/// rendering `classify --json` gives the array elements).
fn render_one(asn: Asn, a: &PopulationAnalysis) -> String {
    let mut s = serde_json::to_string_pretty(&classification_doc(asn, a)).expect("json encodes");
    s.push('\n');
    s
}

/// Tag a `/v1` response with the epoch its data came from, so clients
/// (and the consistency tests) can tell which generation they observed.
fn with_epoch(resp: Response, generation: u64) -> Response {
    resp.header("X-Epoch", generation.to_string())
}

/// Counter values whose deltas become the timeline's rate metrics.
#[derive(Clone, Copy)]
struct OpsCounters {
    accepted: u64,
    shed_cheap: u64,
    shed_heavy: u64,
    shed_intake: u64,
    rejected_busy: u64,
}

impl OpsCounters {
    fn read(m: &ServeMetrics) -> OpsCounters {
        OpsCounters {
            accepted: m.accepted.load(Ordering::Relaxed),
            shed_cheap: m.admission_cheap.shed.load(Ordering::Relaxed),
            shed_heavy: m.admission_heavy.shed.load(Ordering::Relaxed),
            shed_intake: m.admission_intake.shed.load(Ordering::Relaxed),
            rejected_busy: m.rejected_busy.load(Ordering::Relaxed),
        }
    }
}

/// The self-scrape sampler: every `sample_ms`, read the metrics
/// surface and push one [`TimelineSample`] into the ring. Rate metrics
/// are per-second deltas between consecutive samples (the first sample
/// reports zero rates); gauges are instantaneous. Sleeps in short
/// steps so shutdown stays prompt at long intervals.
fn sampler_loop(
    timeline: &OpsTimeline,
    serve: &ServeMetrics,
    live: &LiveMetrics,
    sample_ms: u64,
    stop: &AtomicBool,
) {
    let interval = Duration::from_millis(sample_ms.max(10));
    let mut prev: Option<(Instant, OpsCounters)> = None;
    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        let counters = OpsCounters::read(serve);
        // Values in TIMELINE_METRICS order.
        let mut values = [0.0f64; 9];
        if let Some((t0, p)) = prev {
            let dt = now.duration_since(t0).as_secs_f64().max(1e-9);
            let rate = |cur: u64, before: u64| cur.saturating_sub(before) as f64 / dt;
            values[0] = rate(counters.accepted, p.accepted); // request_rate
            values[1] = rate(counters.shed_cheap, p.shed_cheap); // shed_rate_cheap
            values[2] = rate(counters.shed_heavy, p.shed_heavy); // shed_rate_heavy
            values[3] = rate(counters.shed_intake, p.shed_intake); // shed_rate_intake
            values[4] = rate(counters.rejected_busy, p.rejected_busy); // rejected_rate
        }
        let ls = live.snapshot();
        values[5] = serve.in_flight.load(Ordering::Relaxed) as f64; // in_flight
        values[6] = serve.queue_depth.load(Ordering::Relaxed) as f64; // queue_depth
        values[7] = ls.ingest_lag as f64; // ingest_lag
        values[8] = ls.epoch as f64; // epoch
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        timeline.push(TimelineSample { unix_ms, values });
        prev = Some((now, counters));
        let mut slept = Duration::ZERO;
        while slept < interval && !stop.load(Ordering::Relaxed) {
            let step = Duration::from_millis(20).min(interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

fn route(req: &Request, state: &ServeState) -> Response {
    if let Some(delay) = state.delay {
        // The fast-lane endpoints stay exempt from the test-hook delay:
        // parking /healthz would defeat the saturation tests' purpose.
        if req.path != "/healthz" && req.path != "/metrics" {
            std::thread::sleep(delay);
        }
    }
    if let Some(delay) = state.heavy_delay {
        if req.method == "GET" && req.path == "/v1/classify" {
            std::thread::sleep(delay);
        }
    }
    if req.path == "/v1/traceroutes" {
        return if req.method == "POST" {
            ingest(req, state)
        } else {
            Response::json(405, "{\"error\":\"POST here\"}\n")
        };
    }
    if req.method != "GET" {
        return Response::json(405, "{\"error\":\"only GET here\"}\n");
    }
    match req.path.as_str() {
        "/healthz" => Response::json(200, "{\"status\":\"ok\"}\n").endpoint(ServeEndpoint::Healthz),
        "/metrics" => metrics_response(req, state),
        "/v1/ops/timeline" => ops_timeline(req, state),
        "/v1/ops/epochs" => ops_epochs(state),
        "/v1/classify" => {
            let (generation, snap) = state.epoch.read();
            with_epoch(
                Response::json(200, snap.classify_all.clone()).endpoint(ServeEndpoint::Classify),
                generation,
            )
        }
        "/v1/populations" => populations(req, state),
        path => {
            if let Some(rest) = path.strip_prefix("/v1/classify/") {
                classify_one(rest, state)
            } else if let Some(rest) = path.strip_prefix("/v1/series/") {
                series(rest, req, state)
            } else {
                Response::json(404, "{\"error\":\"no such endpoint\"}\n")
            }
        }
    }
}

/// `GET /metrics`: the `{run, serve, live}` JSON document, or the
/// Prometheus text exposition when the client asks for it —
/// `?format=prom` explicitly, or (with no `format` given) an `Accept`
/// header naming `text/plain`. An explicit `?format=json` always wins,
/// so scripted consumers are immune to whatever `Accept` their client
/// sends; curl's default `Accept: */*` keeps getting JSON, so default
/// behaviour is byte-identical to before the ops plane existed.
fn metrics_response(req: &Request, state: &ServeState) -> Response {
    let (_, snap) = state.epoch.read();
    let live = state.live_metrics.snapshot();
    let prom_wanted = match req.query_param("format") {
        Some("prom") => true,
        Some("json") | Some("") => false,
        None => req
            .header("accept")
            .is_some_and(|a| a.contains("text/plain")),
        Some(other) => {
            return Response::json(
                400,
                format!("{{\"error\":\"unknown format {other:?} (json|prom)\"}}\n"),
            )
        }
    };
    if prom_wanted {
        Response::prom(200, prom::render(&snap.run, &state.serve_metrics, &live))
    } else {
        let doc = MetricsDoc {
            run: snap.run.clone(),
            serve: state.serve_metrics.snapshot(),
            live,
        };
        let mut body = serde_json::to_string_pretty(&doc).expect("metrics doc encodes");
        body.push('\n');
        Response::json(200, body).endpoint(ServeEndpoint::Metrics)
    }
}

/// `GET /v1/ops/timeline?metric=&from=&to=`: slice the self-scraped
/// metrics timeline at the finest resolution that still covers `from`.
/// Bounds are unix seconds, half-open `[from, to)` — the same query
/// semantics as `/v1/series/{asn}`.
fn ops_timeline(req: &Request, state: &ServeState) -> Response {
    let metric = req
        .query_param("metric")
        .filter(|m| !m.is_empty())
        .unwrap_or("request_rate");
    if OpsTimeline::metric_index(metric).is_none() {
        return Response::json(
            400,
            format!(
                "{{\"error\":\"unknown metric {metric:?} (one of: {})\"}}\n",
                TIMELINE_METRICS.join(", ")
            ),
        );
    }
    let (from, to) = match (
        query_bound(req, "from", i64::MIN),
        query_bound(req, "to", i64::MAX),
    ) {
        (Ok(from), Ok(to)) => (from, to),
        (Err(resp), _) | (_, Err(resp)) => return resp,
    };
    let points = state.timeline.query(metric, from, to).unwrap_or_default();
    let doc = serde_json::json!({
        "metric": metric,
        "from": from,
        "to": to,
        "points": points,
    });
    Response::json(200, format!("{doc:#}\n"))
}

/// `GET /v1/ops/epochs`: the last-N re-analysis pass records, oldest
/// first (empty until live intake triggers a pass).
fn ops_epochs(state: &ServeState) -> Response {
    let doc = serde_json::json!({ "epochs": state.telemetry.snapshot() });
    Response::json(200, format!("{doc:#}\n"))
}

/// `POST /v1/traceroutes`: validate the body with the batch-ingest
/// framing/decoding (same quarantine taxonomy), spool accepted records,
/// and hand their probes to the engine as dirty. The handler never
/// touches the memoized store itself: invalidating from this worker
/// thread would race an in-flight re-analysis, which could re-insert a
/// series built from pre-append bytes *after* the invalidation — a
/// stale entry every later pass would cache-hit. The engine invalidates
/// the recorded probes at the start of its next pass instead, strictly
/// before re-reading the corpus.
fn ingest(req: &Request, state: &ServeState) -> Response {
    let resp = match &state.live {
        Some(LiveState {
            handle,
            spool: Some(spool),
        }) => {
            if req.body.is_empty() {
                Response::json(400, "{\"error\":\"empty body\"}\n")
            } else {
                match intake_body(&req.body, spool) {
                    Err(e) => Response::json(500, format!("{{\"error\":\"spool write: {e}\"}}\n")),
                    Ok(outcome) => {
                        let lm = &state.live_metrics;
                        let rejected: Vec<serde_json::Value> = outcome
                            .rejected
                            .iter()
                            .map(|q| {
                                serde_json::json!({
                                    "offset": q.offset,
                                    "kind": q.kind.name(),
                                    "detail": q.detail,
                                    "record": String::from_utf8_lossy(&q.record).into_owned(),
                                })
                            })
                            .collect();
                        lm.posts_rejected
                            .fetch_add(rejected.len() as u64, Ordering::Relaxed);
                        if outcome.accepted == 0 {
                            let body = serde_json::json!({
                                "error": "no record accepted",
                                "rejected": rejected,
                            });
                            Response::json(400, format!("{body:#}\n"))
                        } else {
                            lm.posts_accepted
                                .fetch_add(outcome.accepted, Ordering::Relaxed);
                            lm.records_ingested
                                .fetch_add(outcome.accepted, Ordering::Relaxed);
                            // The spool append above is durable, so the
                            // engine's next pass is guaranteed to read
                            // these records after it invalidates.
                            handle.notify_dirty_probes(&outcome.probes);
                            let body = serde_json::json!({
                                "accepted": outcome.accepted,
                                "rejected": rejected,
                            });
                            Response::json(200, format!("{body:#}\n"))
                        }
                    }
                }
            }
        }
        // --watch without --live-spool: the corpus is live but POST has
        // nowhere durable to put records.
        Some(LiveState { spool: None, .. }) | None => Response::json(
            409,
            "{\"error\":\"live ingest disabled; start serve with --live-spool FILE\"}\n",
        ),
    };
    resp.endpoint(ServeEndpoint::Ingest)
}

/// Parse the `{asn}` path segment (`0` is the "all probes" population).
fn parse_asn(segment: &str) -> Result<Asn, Response> {
    segment
        .parse::<Asn>()
        .map_err(|_| Response::json(400, format!("{{\"error\":\"invalid asn {segment:?}\"}}\n")))
}

fn classify_one(segment: &str, state: &ServeState) -> Response {
    let (generation, snap) = state.epoch.read();
    let resp = match parse_asn(segment) {
        Ok(asn) => match snap.classify_by_asn.get(&asn) {
            Some(doc) => Response::json(200, doc.clone()),
            None => Response::json(404, format!("{{\"error\":\"unknown asn {asn}\"}}\n")),
        },
        Err(resp) => resp,
    };
    with_epoch(resp.endpoint(ServeEndpoint::Classify), generation)
}

/// Parse an integer query bound. Absent keys AND empty values
/// (`?from=&to=` — what a form with blank fields submits) mean
/// "unbounded" and fall back to `default`; anything else must parse or
/// the whole request 400s.
fn query_bound(req: &Request, key: &str, default: i64) -> Result<i64, Response> {
    match req.query_param(key) {
        None | Some("") => Ok(default),
        Some(v) => v
            .parse::<i64>()
            .map_err(|_| Response::json(400, format!("{{\"error\":\"invalid {key}={v:?}\"}}\n"))),
    }
}

fn series(segment: &str, req: &Request, state: &ServeState) -> Response {
    let (generation, snap) = state.epoch.read();
    let resp = match (
        parse_asn(segment),
        query_bound(req, "from", i64::MIN),
        query_bound(req, "to", i64::MAX),
    ) {
        (Ok(asn), Ok(from), Ok(to)) => match snap.series_by_asn.get(&asn) {
            Some(data) => {
                // Half-open [from, to), like the analysis window.
                let points: Vec<SeriesPoint> = data
                    .points
                    .iter()
                    .filter(|(t, _)| *t >= from && *t < to)
                    .map(|&(t, ms)| SeriesPoint { t, ms })
                    .collect();
                let doc = SeriesDoc {
                    asn,
                    bin_seconds: data.bin_seconds,
                    from,
                    to,
                    coverage: data.coverage,
                    max_agg_delay_ms: data.max_ms,
                    points,
                };
                let mut body = serde_json::to_string_pretty(&doc).expect("series doc encodes");
                body.push('\n');
                Response::json(200, body)
            }
            None => Response::json(404, format!("{{\"error\":\"unknown asn {asn}\"}}\n")),
        },
        (Err(resp), _, _) | (_, Err(resp), _) | (_, _, Err(resp)) => resp,
    };
    with_epoch(resp.endpoint(ServeEndpoint::Series), generation)
}

fn populations(req: &Request, state: &ServeState) -> Response {
    let (generation, snap) = state.epoch.read();
    let resp = match req.query_param("format") {
        Some("csv") => Response::csv(200, snap.run.populations_csv()),
        None | Some("json") => {
            let mut body = serde_json::to_string_pretty(&snap.run.populations)
                .expect("population table encodes");
            body.push('\n');
            Response::json(200, body)
        }
        Some(other) => Response::json(
            400,
            format!("{{\"error\":\"unknown format {other:?} (json|csv)\"}}\n"),
        ),
    };
    with_epoch(resp.endpoint(ServeEndpoint::Populations), generation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(query: &str) -> Request {
        Request {
            method: "GET".into(),
            path: "/v1/series/64500".into(),
            query: query.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn query_bound_defaults_on_absent_and_empty() {
        // `/v1/series/{asn}?from=&to=` — empty values mean "unbounded",
        // exactly like leaving the keys off.
        for q in ["", "from=&to=", "from=", "to="] {
            let r = req(q);
            assert_eq!(query_bound(&r, "from", i64::MIN), Ok(i64::MIN), "q={q:?}");
            assert_eq!(query_bound(&r, "to", i64::MAX), Ok(i64::MAX), "q={q:?}");
        }
    }

    #[test]
    fn query_bound_parses_values_and_rejects_junk() {
        let r = req("from=100&to=-5");
        assert_eq!(query_bound(&r, "from", i64::MIN), Ok(100));
        assert_eq!(query_bound(&r, "to", i64::MAX), Ok(-5));
        let bad = query_bound(&req("from=soon"), "from", i64::MIN).unwrap_err();
        assert_eq!(bad.status, 400);
        assert!(String::from_utf8_lossy(&bad.body).contains("invalid from"));
        // A valueless pair is an empty value, not a parse error.
        assert_eq!(query_bound(&req("from"), "from", 7), Ok(7));
    }

    #[test]
    fn query_bound_uses_first_of_repeated_keys() {
        let r = req("from=1&from=2&to=&to=9");
        assert_eq!(query_bound(&r, "from", i64::MIN), Ok(1));
        // First `to` is empty ⇒ default wins even though a later
        // occurrence carries a value (first-wins, same as query_param).
        assert_eq!(query_bound(&r, "to", i64::MAX), Ok(i64::MAX));
    }
}
