//! Shared `--stats` / `--stats-out` / `--populations-csv` emission for
//! the analysis subcommands (`classify`, `hygiene`).

use crate::input::create_parent_dirs;
use crate::Flags;
use lastmile_repro::obs::RunMetrics;

/// Whether any flag asks for run metrics to be collected. The CSV flag
/// counts: the population table only fills when a [`RunMetrics`] sink is
/// installed.
pub fn wants_stats(flags: &Flags) -> bool {
    flags.switch("stats")
        || flags.optional("stats-out").is_some()
        || flags.optional("populations-csv").is_some()
}

/// Emit the collected metrics: the JSON snapshot to `--stats-out FILE`
/// when given (else to stderr, keeping stdout clean for the subcommand's
/// own output), and the per-population table to `--populations-csv FILE`
/// when given.
pub fn emit_stats(flags: &Flags, metrics: &RunMetrics) -> Result<(), String> {
    let snapshot = metrics.snapshot();
    if flags.switch("stats") || flags.optional("stats-out").is_some() {
        let json = snapshot.to_json();
        match flags.optional("stats-out") {
            Some(path) => {
                create_parent_dirs("stats-out", path)?;
                std::fs::write(path, &json)
                    .map_err(|e| format!("cannot write --stats-out {path}: {e}"))?
            }
            None => eprint!("{json}"),
        }
    }
    if let Some(path) = flags.optional("populations-csv") {
        create_parent_dirs("populations-csv", path)?;
        std::fs::write(path, snapshot.populations_csv())
            .map_err(|e| format!("cannot write --populations-csv {path}: {e}"))?;
        eprintln!(
            "[stats] wrote {path} ({} population rows)",
            snapshot.populations.len()
        );
    }
    Ok(())
}
