//! `lastmile lint`: offline validators for the ops plane's two text
//! artifacts, so CI can check them without jq or promtool.
//!
//! * `--prom FILE` — run the strict Prometheus exposition linter
//!   (`lastmile_obs::prom::lint`) over a scraped `/metrics?format=prom`
//!   body.
//! * `--access-log FILE` — parse every line as a standalone JSON
//!   object and require the fields that make lines joinable
//!   (`request_id`, `status`).
//! * `--fleet FILE` — validate a fleet scenario spec (`fleet gen
//!   --spec`) without building anything: JSON shape, unknown keys, and
//!   every structural constraint.
//!
//! Exit status is nonzero when any check fails; every violation is
//! printed, not just the first.

use crate::Flags;
use lastmile_repro::obs::prom;

pub fn run(flags: &Flags) -> Result<(), String> {
    let prom_file = flags.optional("prom");
    let access_file = flags.optional("access-log");
    let fleet_file = flags.optional("fleet");
    if prom_file.is_none() && access_file.is_none() && fleet_file.is_none() {
        return Err("lint needs --prom FILE, --access-log FILE and/or --fleet FILE".into());
    }
    let mut failures = 0usize;
    if let Some(path) = prom_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read --prom {path}: {e}"))?;
        match prom::lint(&text) {
            Ok(()) => eprintln!("[lint] {path}: exposition ok"),
            Err(errors) => {
                failures += errors.len();
                for e in &errors {
                    eprintln!("[lint] {path}: {e}");
                }
            }
        }
    }
    if let Some(path) = access_file {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read --access-log {path}: {e}"))?;
        let errors = lint_access_log(&text);
        if errors.is_empty() {
            eprintln!(
                "[lint] {path}: {} access-log line(s) ok",
                text.lines().count()
            );
        } else {
            failures += errors.len();
            for e in &errors {
                eprintln!("[lint] {path}: {e}");
            }
        }
    }
    if let Some(path) = fleet_file {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read --fleet {path}: {e}"))?;
        match crate::fleet::parse_spec(&text) {
            Ok(spec) => eprintln!(
                "[lint] {path}: fleet spec ok ({} ASes, {} days)",
                spec.classes.total(),
                spec.days
            ),
            Err(problems) => {
                failures += problems.len();
                for p in &problems {
                    eprintln!("[lint] {path}: {p}");
                }
            }
        }
    }
    if failures > 0 {
        return Err(format!("lint failed: {failures} violation(s)"));
    }
    Ok(())
}

/// Every line must be a standalone JSON object carrying at least the
/// join key (`request_id`) and outcome (`status`).
fn lint_access_log(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let n = n + 1;
        if line.is_empty() {
            errors.push(format!("line {n}: empty line"));
            continue;
        }
        let value: serde_json::Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {n}: not valid JSON: {e}"));
                continue;
            }
        };
        if value.as_object().is_none() {
            errors.push(format!("line {n}: not a JSON object"));
            continue;
        }
        for key in ["request_id", "status"] {
            if value.get(key).is_none() {
                errors.push(format!("line {n}: missing {key:?}"));
            }
        }
        if let Some(id) = value.get("request_id").and_then(|v| v.as_str()) {
            if id.is_empty() {
                errors.push(format!("line {n}: empty request_id"));
            }
        }
        if value
            .get("status")
            .map(|v| v.as_u64().is_none())
            .unwrap_or(false)
        {
            errors.push(format!("line {n}: status is not an integer"));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_access_log_lines_pass() {
        let text = "{\"request_id\":\"a\",\"status\":200}\n{\"request_id\":\"b\",\"status\":503}\n";
        assert!(lint_access_log(text).is_empty());
    }

    #[test]
    fn violations_name_the_line_and_the_problem() {
        let text = "{\"request_id\":\"a\",\"status\":200}\n\
                    not json\n\
                    [1,2]\n\
                    {\"status\":200}\n\
                    {\"request_id\":\"\",\"status\":200}\n\
                    {\"request_id\":\"x\",\"status\":\"ok\"}\n";
        let errors = lint_access_log(text);
        assert_eq!(errors.len(), 5, "{errors:?}");
        assert!(errors[0].contains("line 2") && errors[0].contains("not valid JSON"));
        assert!(errors[1].contains("line 3") && errors[1].contains("not a JSON object"));
        assert!(errors[2].contains("line 4") && errors[2].contains("request_id"));
        assert!(errors[3].contains("line 5") && errors[3].contains("empty request_id"));
        assert!(errors[4].contains("line 6") && errors[4].contains("not an integer"));
    }
}
