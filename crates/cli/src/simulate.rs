//! `lastmile simulate`: export a scenario's datasets to disk —
//! Atlas-format traceroutes (JSON Lines), probe metadata (JSON), and for
//! the Tokyo scenario the CDN access logs (TSV) — so external tools (or
//! the paper's original pipeline) can be pointed at the simulated data.

use crate::cache;
use crate::Flags;
use lastmile_repro::atlas::json::to_atlas_json;
use lastmile_repro::cdnlog::{CdnGeneratorConfig, CdnLogGenerator};
use lastmile_repro::netsim::scenarios::{anchor, examples, tokyo};
use lastmile_repro::netsim::{ServiceClass, TracerouteEngine, World};
use lastmile_repro::obs::trace;
use lastmile_repro::store::CacheMode;
use lastmile_repro::timebase::{MeasurementPeriod, TimeRange};
use std::io::Write;

pub fn run(flags: &Flags) -> Result<(), String> {
    let scenario = flags.required("scenario")?;
    let out_dir = flags.required("out")?;
    let seed: u64 = flags.parsed("seed")?.unwrap_or(20190919);
    let days: i64 = flags.parsed("days")?.unwrap_or(8);
    if days <= 0 {
        return Err("--days must be positive".into());
    }
    // `--cache-dir` primes a series snapshot alongside the export, so a
    // later `classify --cache-dir` over the exported traceroutes starts
    // warm. Only `rw` (the default) writes; `ro`/`off` skip priming.
    //
    // The primed snapshot targets `--probes`/ASN-0 classification, which
    // ingests every traceroute of a probe — exactly what the builder
    // below sees. A `--bgp` classify instead drops traceroutes with no
    // routed public hop before ingest and mixes the table into its source
    // fingerprint, so it reports the primed snapshot as a source mismatch
    // and recomputes rather than serving series no cold `--bgp` run would
    // build.
    let cache_dir = flags.optional("cache-dir");
    let cache_mode: CacheMode = flags.parsed("cache")?.unwrap_or_default();
    if cache_dir.is_none() && flags.optional("cache").is_some() {
        return Err("--cache needs --cache-dir".into());
    }
    let prime = cache_dir.is_some() && cache_mode == CacheMode::ReadWrite;
    std::fs::create_dir_all(out_dir).map_err(|e| format!("create {out_dir}: {e}"))?;

    let (world, default_period, with_cdn): (World, MeasurementPeriod, bool) = match scenario {
        "tokyo" => (
            tokyo::tokyo_world(seed),
            MeasurementPeriod::tokyo_cdn_2019(),
            true,
        ),
        "fig1" => (
            examples::fig1_world(seed),
            MeasurementPeriod::september_2019(),
            false,
        ),
        "anchor" => (
            anchor::anchor_world(seed),
            MeasurementPeriod::september_2019(),
            false,
        ),
        other => return Err(format!("unknown scenario {other} (tokyo|fig1|anchor)")),
    };
    let window = TimeRange::new(
        default_period.start(),
        (default_period.start() + days * 86_400).min(default_period.end()),
    );

    // Probe metadata.
    let span = trace::span("export_probes");
    let probes: Vec<_> = world.probes().iter().map(|p| p.meta.clone()).collect();
    let probes_path = format!("{out_dir}/probes.json");
    let json = serde_json::to_string_pretty(&probes).expect("probes encode");
    std::fs::write(&probes_path, json).map_err(|e| format!("write {probes_path}: {e}"))?;
    eprintln!("[out] {probes_path} ({} probes)", probes.len());

    // The routing table, for metadata-free classification (--bgp).
    let table_path = format!("{out_dir}/bgp.csv");
    std::fs::write(&table_path, crate::bgp::table_to_csv(world.registry()))
        .map_err(|e| format!("write {table_path}: {e}"))?;
    eprintln!("[out] {table_path}");
    drop(span);

    // Traceroutes, streamed to JSON Lines.
    let span = trace::span("export_traceroutes");
    let trs_path = format!("{out_dir}/traceroutes.jsonl");
    let file = std::fs::File::create(&trs_path).map_err(|e| format!("create {trs_path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    let engine = TracerouteEngine::new(&world);
    let mut count = 0usize;
    for probe in world.probes() {
        let mut failed = None;
        engine.for_each_traceroute(probe, &window, |tr| {
            let line = to_atlas_json(&tr, probe.meta.public_addr);
            if let Err(e) = writeln!(w, "{line}") {
                failed = Some(e);
            }
            count += 1;
        });
        if let Some(e) = failed {
            return Err(format!("write {trs_path}: {e}"));
        }
    }
    w.flush().map_err(|e| format!("flush {trs_path}: {e}"))?;
    eprintln!("[out] {trs_path} ({count} traceroutes)");
    drop(span);

    if let Some(dir) = cache_dir {
        if prime {
            let report = cache::prime_snapshot(&trs_path, dir, &window)?;
            eprintln!(
                "[cache] primed {} ({} series, {} bytes; classify with \
                 --probes (or no routing input) and --start {} --end {} to \
                 hit it — --bgp runs use a different source id and recompute)",
                report.snapshot.display(),
                report.series,
                report.bytes,
                window.start().as_secs(),
                window.end().as_secs()
            );
        } else {
            eprintln!(
                "[cache] --cache {cache_mode:?} given: simulate only primes in rw mode, skipping"
            );
        }
    }

    // IPv6 built-ins, when any AS offers an IPv6 service. Kept in a
    // separate file: the paper's delay analysis is per-family (v6 rides
    // IPoE with a different RTT baseline).
    if world.ases().iter().any(|a| a.v6_prefix.is_some()) {
        let _span = trace::span("export_traceroutes_v6");
        let v6_path = format!("{out_dir}/traceroutes_v6.jsonl");
        let file = std::fs::File::create(&v6_path).map_err(|e| format!("create {v6_path}: {e}"))?;
        let mut w = std::io::BufWriter::new(file);
        let mut v6_count = 0usize;
        for probe in world.probes() {
            let mut failed = None;
            engine.for_each_traceroute_v6(probe, &window, |tr| {
                let line = to_atlas_json(&tr, probe.meta.public_addr);
                if let Err(e) = writeln!(w, "{line}") {
                    failed = Some(e);
                }
                v6_count += 1;
            });
            if let Some(e) = failed {
                return Err(format!("write {v6_path}: {e}"));
            }
        }
        w.flush().map_err(|e| format!("flush {v6_path}: {e}"))?;
        eprintln!("[out] {v6_path} ({v6_count} traceroutes)");
    }

    // CDN logs for the Tokyo scenario.
    if with_cdn {
        let _span = trace::span("export_cdn");
        let cdn_path = format!("{out_dir}/cdn_access.tsv");
        let file =
            std::fs::File::create(&cdn_path).map_err(|e| format!("create {cdn_path}: {e}"))?;
        let mut w = std::io::BufWriter::new(file);
        let cdn = CdnLogGenerator::new(&world, CdnGeneratorConfig::default_tokyo(seed ^ 0xCD));
        let mut lines = 0usize;
        for asn in [tokyo::ISP_A_ASN, tokyo::ISP_B_ASN, tokyo::ISP_C_ASN] {
            for class in [
                ServiceClass::BroadbandV4,
                ServiceClass::BroadbandV6,
                ServiceClass::Mobile,
            ] {
                for rec in cdn.generate(asn, class, &window) {
                    writeln!(w, "{}", rec.to_tsv())
                        .map_err(|e| format!("write {cdn_path}: {e}"))?;
                    lines += 1;
                }
            }
        }
        w.flush().map_err(|e| format!("flush {cdn_path}: {e}"))?;
        eprintln!("[out] {cdn_path} ({lines} records)");
    }
    Ok(())
}
