//! The `--progress` heartbeat: an opt-in thread that prints live ingest
//! and population gauges to stderr about once a second.
//!
//! The gauges live in a [`LiveProgress`] shared with the ingest workers
//! and the analysis loop; the heartbeat only ever reads them, so it adds
//! no synchronisation to the hot paths. Dropping the [`Heartbeat`] stops
//! and joins the thread, printing one final line so short runs still get
//! a summary.

use lastmile_repro::obs::LiveProgress;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handle to the heartbeat thread; stops and joins on drop.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawn the heartbeat over `progress`.
    pub fn start(progress: Arc<LiveProgress>) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("progress".into())
                .spawn(move || beat(&progress, &stop))
                .expect("spawn progress heartbeat")
        };
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn beat(progress: &LiveProgress, stop: &AtomicBool) {
    let started = Instant::now();
    let mut last_records = 0u64;
    let mut last_tick = started;
    loop {
        // Sleep in short slices so Drop joins promptly.
        for _ in 0..10 {
            if stop.load(Ordering::Relaxed) {
                report(progress, started, last_records, last_tick);
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let now = Instant::now();
        last_records = report(progress, started, last_records, last_tick);
        last_tick = now;
    }
}

/// Print one progress line; returns the record count it reported so the
/// next tick can compute a rate over the delta.
fn report(progress: &LiveProgress, started: Instant, last_records: u64, last_tick: Instant) -> u64 {
    let bytes = progress.bytes_read.load(Ordering::Relaxed);
    let records = progress.records.load(Ordering::Relaxed);
    let depth = progress.queue_depth.load(Ordering::Relaxed);
    let done = progress.populations_done.load(Ordering::Relaxed);
    let total = progress.populations_total.load(Ordering::Relaxed);
    let interval = last_tick.elapsed().as_secs_f64().max(1e-9);
    let rate = (records.saturating_sub(last_records)) as f64 / interval;
    eprintln!(
        "[progress +{:.1}s] {:.1} MiB read, {records} records ({rate:.0}/s), \
         queue depth {depth}, populations {done}/{total}",
        started.elapsed().as_secs_f64(),
        bytes as f64 / (1024.0 * 1024.0),
    );
    records
}
