//! `lastmile fleet`: scenario-fleet generation and detector scoring.
//!
//! * `fleet gen` renders a [`FleetSpec`] world into the same artifact
//!   layout `simulate` exports — `probes.json`, `bgp.csv`,
//!   `traceroutes.jsonl` — plus a ground-truth sidecar (`truth.json`)
//!   labeling every AS. Generation is deterministic: identical spec +
//!   seed give byte-identical corpus and sidecar regardless of
//!   `--threads`.
//! * `fleet score` joins `classify --json` output against the sidecar
//!   into a per-label confusion matrix with precision/recall, and can
//!   gate CI via `--min-recall` / `--max-peering-fp`.
//!
//! The spec file is declarative JSON (see `FleetSpec`); validate it
//! offline with `lastmile lint --fleet SPEC.json`.

use crate::cache;
use crate::Flags;
use lastmile_repro::atlas::json::to_atlas_json;
use lastmile_repro::netsim::fleet::{
    build_fleet, select_probes, ClassMix, FleetLabel, FleetScenario, FleetSpec, SampleMode,
};
use lastmile_repro::netsim::{SimProbe, TracerouteEngine};
use lastmile_repro::obs::trace;
use lastmile_repro::prefix::Asn;
use lastmile_repro::store::CacheMode;
use std::collections::BTreeMap;
use std::io::Write;

pub fn run(action: Option<&str>, flags: &Flags) -> Result<(), String> {
    match action {
        Some("gen") => gen(flags),
        Some("score") => score(flags),
        Some(other) => Err(format!("unknown fleet action {other} (gen|score)")),
        None => Err("fleet needs an action: gen|score".into()),
    }
}

/// Parse and validate a fleet spec file's text. Returns *all* problems —
/// JSON syntax, unknown keys, structural violations — not just the first.
pub fn parse_spec(text: &str) -> Result<FleetSpec, Vec<String>> {
    let value: serde_json::Value =
        serde_json::from_str(text).map_err(|e| vec![format!("not valid JSON: {e}")])?;
    let Some(obj) = value.as_object() else {
        return Err(vec!["spec must be a JSON object".to_string()]);
    };
    let mut problems = Vec::new();
    for (key, _) in obj {
        if !matches!(key.as_str(), "name" | "days" | "classes" | "probes_per_as") {
            problems.push(format!("unknown key {key:?}"));
        }
    }
    let name = match value.get("name").and_then(|v| v.as_str()) {
        Some(s) => s.to_string(),
        None => {
            problems.push("\"name\" must be a string".to_string());
            String::new()
        }
    };
    let days = match value.get("days").and_then(|v| v.as_u64()) {
        Some(d) => d as u32,
        None => {
            problems.push("\"days\" must be a positive integer".to_string());
            0
        }
    };
    let mut classes = ClassMix::default();
    match value.get("classes").and_then(|v| v.as_object()) {
        Some(map) => {
            for (key, count) in map {
                let Some(n) = count.as_u64() else {
                    problems.push(format!("classes.{key} must be a non-negative integer"));
                    continue;
                };
                let n = n as usize;
                let Some(label) = FleetLabel::parse(key) else {
                    problems.push(format!(
                        "unknown class {key:?} (expected one of: {})",
                        FleetLabel::ALL.map(|l| l.as_str()).join(", ")
                    ));
                    continue;
                };
                match label {
                    FleetLabel::Severe => classes.severe = n,
                    FleetLabel::Mild => classes.mild = n,
                    FleetLabel::Low => classes.low = n,
                    FleetLabel::Clean => classes.clean = n,
                    FleetLabel::Transient => classes.transient = n,
                    FleetLabel::AdversarialWeekly => classes.adversarial_weekly = n,
                    FleetLabel::AdversarialPeering => classes.adversarial_peering = n,
                    FleetLabel::AdversarialRouteShift => classes.adversarial_route_shift = n,
                }
            }
        }
        None => problems.push("\"classes\" must be an object of label: count".to_string()),
    }
    let (probes_min, probes_max) = match value.get("probes_per_as") {
        None => (3, 8),
        Some(v) => match v.as_object() {
            Some(map) => {
                for (key, _) in map {
                    if !matches!(key.as_str(), "min" | "max") {
                        problems.push(format!("unknown key probes_per_as.{key}"));
                    }
                }
                let get = |k: &str| v.get(k).and_then(|n| n.as_u64()).map(|n| n as usize);
                match (get("min"), get("max")) {
                    (Some(lo), Some(hi)) => (lo, hi),
                    _ => {
                        problems
                            .push("probes_per_as needs integer \"min\" and \"max\"".to_string());
                        (3, 8)
                    }
                }
            }
            None => {
                problems.push("probes_per_as must be an object".to_string());
                (3, 8)
            }
        },
    };
    let spec = FleetSpec {
        name,
        days,
        classes,
        probes_min,
        probes_max,
    };
    problems.extend(spec.validate());
    if problems.is_empty() {
        Ok(spec)
    } else {
        Err(problems)
    }
}

/// Load and validate `--spec FILE`, folding all problems into one error.
fn load_spec(path: &str) -> Result<FleetSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read --spec {path}: {e}"))?;
    parse_spec(&text)
        .map_err(|problems| format!("invalid fleet spec {path}:\n  {}", problems.join("\n  ")))
}

/// `--probes-per-as` subsampling config: (count, mode, sample seed).
type Subsample = (usize, SampleMode, u64);

/// The per-AS probe subset to emit, honoring `--probes-per-as`.
fn emitted_probes<'w>(
    scenario: &'w FleetScenario,
    flags: &Flags,
) -> Result<(Vec<&'w SimProbe>, Option<Subsample>), String> {
    let subsample = match flags.parsed::<usize>("probes-per-as")? {
        None => {
            if flags.optional("sample-mode").is_some() || flags.optional("sample-seed").is_some() {
                return Err("--sample-mode/--sample-seed need --probes-per-as".into());
            }
            None
        }
        Some(0) => return Err("--probes-per-as must be positive".into()),
        Some(n) => {
            let mode = match flags.optional("sample-mode") {
                None => SampleMode::Biased,
                Some(s) => SampleMode::parse(s)
                    .ok_or_else(|| format!("invalid --sample-mode {s} (uniform|biased)"))?,
            };
            let sample_seed = flags.parsed::<u64>("sample-seed")?.unwrap_or(1);
            Some((n, mode, sample_seed))
        }
    };
    let probes = match subsample {
        None => scenario.world.probes().iter().collect(),
        Some((n, mode, sample_seed)) => {
            let mut out: Vec<&SimProbe> = Vec::new();
            for t in &scenario.truth {
                for id in select_probes(&scenario.world, t.asn, n, mode, sample_seed) {
                    out.push(
                        scenario
                            .world
                            .probes()
                            .iter()
                            .find(|p| p.meta.id == id)
                            .expect("selected probe exists"),
                    );
                }
            }
            out
        }
    };
    Ok((probes, subsample))
}

fn gen(flags: &Flags) -> Result<(), String> {
    let spec = load_spec(flags.required("spec")?)?;
    let out_dir = flags.required("out")?;
    let seed: u64 = flags.parsed("seed")?.unwrap_or(20200646);
    let threads: usize = flags.parsed("threads")?.unwrap_or(1).max(1);
    let cache_dir = flags.optional("cache-dir");
    let cache_mode: CacheMode = flags.parsed("cache")?.unwrap_or_default();
    if cache_dir.is_none() && flags.optional("cache").is_some() {
        return Err("--cache needs --cache-dir".into());
    }
    std::fs::create_dir_all(out_dir).map_err(|e| format!("create {out_dir}: {e}"))?;

    let span = trace::span("fleet_build");
    let scenario = build_fleet(&spec, seed);
    let window = scenario.window;
    let (probes, subsample) = emitted_probes(&scenario, flags)?;
    drop(span);
    eprintln!(
        "[fleet] {} ({} ASes, {} of {} probes emitted, {} days)",
        spec.name,
        scenario.truth.len(),
        probes.len(),
        scenario.world.probes().len(),
        spec.days
    );

    // Probe metadata: the emitted subset only, so downstream `classify
    // --probes` sees the same population the corpus carries.
    let span = trace::span("fleet_export_meta");
    let metas: Vec<_> = probes.iter().map(|p| p.meta.clone()).collect();
    let probes_path = format!("{out_dir}/probes.json");
    let json = serde_json::to_string_pretty(&metas).expect("probes encode");
    std::fs::write(&probes_path, json).map_err(|e| format!("write {probes_path}: {e}"))?;
    eprintln!("[out] {probes_path} ({} probes)", metas.len());

    let table_path = format!("{out_dir}/bgp.csv");
    std::fs::write(
        &table_path,
        crate::bgp::table_to_csv(scenario.world.registry()),
    )
    .map_err(|e| format!("write {table_path}: {e}"))?;
    eprintln!("[out] {table_path}");

    // Ground-truth sidecar, the scorer's join input.
    let truth_path = format!("{out_dir}/truth.json");
    let truth_doc = serde_json::json!({
        "spec_name": spec.name,
        "seed": seed,
        "window": serde_json::json!({
            "start": window.start().as_secs(),
            "end": window.end().as_secs()
        }),
        "probes_per_as": subsample.map(|(n, mode, sample_seed)| serde_json::json!({
            "n": n,
            "mode": mode.as_str(),
            "seed": sample_seed
        })),
        "ases": scenario.truth.iter().map(|t| serde_json::json!({
            "asn": t.asn,
            "name": t.name,
            "country": t.country,
            "label": t.label.as_str(),
            "expected_class": expected_class_name(t.label),
            "amplitude_ms": t.amplitude_ms,
            "probes": t.probes,
            "probes_emitted": probes.iter().filter(|p| p.meta.asn == t.asn).count()
        })).collect::<Vec<_>>()
    });
    let mut truth_text = serde_json::to_string_pretty(&truth_doc).expect("truth encodes");
    truth_text.push('\n');
    std::fs::write(&truth_path, truth_text).map_err(|e| format!("write {truth_path}: {e}"))?;
    eprintln!("[out] {truth_path} ({} ASes)", scenario.truth.len());
    drop(span);

    // Traceroutes, probe-major. Rendering parallelizes over probes in
    // chunks of `--threads`, but the file is assembled strictly in probe
    // order — thread count can never move a byte.
    let span = trace::span("fleet_export_traceroutes");
    let trs_path = format!("{out_dir}/traceroutes.jsonl");
    let file = std::fs::File::create(&trs_path).map_err(|e| format!("create {trs_path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    let engine = TracerouteEngine::new(&scenario.world);
    let mut count = 0usize;
    for chunk in probes.chunks(threads) {
        let rendered: Vec<(String, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|probe| {
                    let engine = &engine;
                    s.spawn(move || {
                        let mut buf = String::new();
                        let mut n = 0usize;
                        engine.for_each_traceroute(probe, &window, |tr| {
                            buf.push_str(&to_atlas_json(&tr, probe.meta.public_addr));
                            buf.push('\n');
                            n += 1;
                        });
                        (buf, n)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("render thread panicked"))
                .collect()
        });
        for (buf, n) in rendered {
            w.write_all(buf.as_bytes())
                .map_err(|e| format!("write {trs_path}: {e}"))?;
            count += n;
        }
    }
    w.flush().map_err(|e| format!("flush {trs_path}: {e}"))?;
    eprintln!("[out] {trs_path} ({count} traceroutes)");
    drop(span);

    // Optional warm-start snapshot, exactly like `simulate --cache-dir`.
    if let Some(dir) = cache_dir {
        if cache_mode == CacheMode::ReadWrite {
            let report = cache::prime_snapshot(&trs_path, dir, &window)?;
            eprintln!(
                "[cache] primed {} ({} series, {} bytes; classify with --probes \
                 and --start {} --end {} to hit it)",
                report.snapshot.display(),
                report.series,
                report.bytes,
                window.start().as_secs(),
                window.end().as_secs()
            );
        } else {
            eprintln!(
                "[cache] --cache {cache_mode:?} given: fleet gen only primes in rw mode, skipping"
            );
        }
    }
    Ok(())
}

/// The class name `classify` should print for ASes of a label.
fn expected_class_name(label: FleetLabel) -> &'static str {
    match label {
        FleetLabel::Severe => "Severe",
        FleetLabel::Mild => "Mild",
        FleetLabel::Low => "Low",
        _ => "None",
    }
}

/// One AS's scored outcome: what the detector said.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    None,
    Low,
    Mild,
    Severe,
    /// The ASN never appeared in the classify output.
    Unanalyzed,
}

impl Outcome {
    const COLUMNS: [Outcome; 5] = [
        Outcome::None,
        Outcome::Low,
        Outcome::Mild,
        Outcome::Severe,
        Outcome::Unanalyzed,
    ];

    fn parse(class: &str) -> Option<Outcome> {
        match class {
            "None" => Some(Outcome::None),
            "Low" => Some(Outcome::Low),
            "Mild" => Some(Outcome::Mild),
            "Severe" => Some(Outcome::Severe),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Outcome::None => "None",
            Outcome::Low => "Low",
            Outcome::Mild => "Mild",
            Outcome::Severe => "Severe",
            Outcome::Unanalyzed => "unanalyzed",
        }
    }

    fn reported(self) -> bool {
        matches!(self, Outcome::Low | Outcome::Mild | Outcome::Severe)
    }
}

fn score(flags: &Flags) -> Result<(), String> {
    let truth_path = flags.required("truth")?;
    let classified_path = flags.required("classified")?;
    let truth_text = std::fs::read_to_string(truth_path)
        .map_err(|e| format!("read --truth {truth_path}: {e}"))?;
    let truth: serde_json::Value = serde_json::from_str(&truth_text)
        .map_err(|e| format!("--truth {truth_path} is not valid JSON: {e}"))?;
    let ases = truth
        .get("ases")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("--truth {truth_path} has no \"ases\" array"))?;

    let classified_text = std::fs::read_to_string(classified_path)
        .map_err(|e| format!("read --classified {classified_path}: {e}"))?;
    let classified: serde_json::Value = serde_json::from_str(&classified_text)
        .map_err(|e| format!("--classified {classified_path} is not valid JSON: {e}"))?;
    let docs = classified
        .as_array()
        .ok_or_else(|| format!("--classified {classified_path} must be a classify --json array"))?;
    let mut detected: BTreeMap<Asn, Outcome> = BTreeMap::new();
    for doc in docs {
        let asn = doc
            .get("asn")
            .and_then(|v| v.as_u64())
            .ok_or("classified entry without numeric \"asn\"")? as Asn;
        let class = doc
            .get("class")
            .and_then(|v| v.as_str())
            .ok_or("classified entry without \"class\"")?;
        let outcome =
            Outcome::parse(class).ok_or_else(|| format!("AS{asn}: unknown class {class:?}"))?;
        detected.insert(asn, outcome);
    }

    // The confusion matrix: label rows × outcome columns.
    let mut rows: BTreeMap<&'static str, BTreeMap<&'static str, usize>> = BTreeMap::new();
    let mut persistent_total = 0usize;
    let mut persistent_detected = 0usize;
    let mut persistent_exact = 0usize;
    let mut reported_total = 0usize;
    let mut true_positives = 0usize;
    let mut false_positives: BTreeMap<&'static str, usize> = BTreeMap::new();
    for as_truth in ases {
        let asn = as_truth
            .get("asn")
            .and_then(|v| v.as_u64())
            .ok_or("truth entry without numeric \"asn\"")? as Asn;
        let label_name = as_truth
            .get("label")
            .and_then(|v| v.as_str())
            .ok_or("truth entry without \"label\"")?;
        let label = FleetLabel::parse(label_name)
            .ok_or_else(|| format!("AS{asn}: unknown label {label_name:?}"))?;
        let outcome = detected.get(&asn).copied().unwrap_or(Outcome::Unanalyzed);
        *rows
            .entry(label.as_str())
            .or_default()
            .entry(outcome.as_str())
            .or_default() += 1;
        if outcome.reported() {
            reported_total += 1;
            if label.expect_reported() {
                true_positives += 1;
            } else {
                *false_positives.entry(label.as_str()).or_default() += 1;
            }
        }
        if label.expect_reported() {
            persistent_total += 1;
            if outcome.reported() {
                persistent_detected += 1;
            }
            if outcome.as_str() == expected_class_name(label) {
                persistent_exact += 1;
            }
        }
    }
    let recall = if persistent_total > 0 {
        persistent_detected as f64 / persistent_total as f64
    } else {
        1.0
    };
    let precision = if reported_total > 0 {
        true_positives as f64 / reported_total as f64
    } else {
        1.0
    };
    let exact = if persistent_total > 0 {
        persistent_exact as f64 / persistent_total as f64
    } else {
        1.0
    };
    let fp_of = |label: FleetLabel| false_positives.get(label.as_str()).copied().unwrap_or(0);
    let peering_fp = fp_of(FleetLabel::AdversarialPeering);

    // Threshold gates (checked after printing, so a failing run still
    // shows its matrix).
    let min_recall = flags.parsed::<f64>("min-recall")?;
    let max_peering_fp = flags.parsed::<usize>("max-peering-fp")?;
    let mut gate_failures = Vec::new();
    if let Some(min) = min_recall {
        if recall < min {
            gate_failures.push(format!("recall {recall:.3} below --min-recall {min}"));
        }
    }
    if let Some(max) = max_peering_fp {
        if peering_fp > max {
            gate_failures.push(format!(
                "{peering_fp} peering false positive(s) above --max-peering-fp {max}"
            ));
        }
    }

    if flags.switch("json") {
        let doc = serde_json::json!({
            "spec_name": truth.get("spec_name"),
            "seed": truth.get("seed"),
            "ases": ases.len(),
            "matrix": FleetLabel::ALL.iter().filter_map(|label| {
                let row = rows.get(label.as_str())?;
                Some(serde_json::json!({
                    "label": label.as_str(),
                    "total": row.values().sum::<usize>(),
                    "outcomes": Outcome::COLUMNS.iter().map(|o| {
                        (o.as_str().to_string(), row.get(o.as_str()).copied().unwrap_or(0))
                    }).collect::<BTreeMap<String, usize>>()
                }))
            }).collect::<Vec<_>>(),
            "recall": recall,
            "precision": precision,
            "exact_class_accuracy": exact,
            "false_positives": FleetLabel::ALL.iter()
                .filter(|l| !l.expect_reported())
                .map(|l| (l.as_str().to_string(), fp_of(*l)))
                .collect::<BTreeMap<String, usize>>(),
            "passed": gate_failures.is_empty()
        });
        let mut s = serde_json::to_string_pretty(&doc).expect("score encodes");
        s.push('\n');
        print!("{s}");
    } else {
        println!(
            "{:<24} {:>6} {:>6} {:>6} {:>6} {:>6} {:>11}",
            "label", "total", "None", "Low", "Mild", "Severe", "unanalyzed"
        );
        for label in FleetLabel::ALL {
            let Some(row) = rows.get(label.as_str()) else {
                continue;
            };
            let cell = |o: Outcome| row.get(o.as_str()).copied().unwrap_or(0);
            println!(
                "{:<24} {:>6} {:>6} {:>6} {:>6} {:>6} {:>11}",
                label.as_str(),
                row.values().sum::<usize>(),
                cell(Outcome::None),
                cell(Outcome::Low),
                cell(Outcome::Mild),
                cell(Outcome::Severe),
                cell(Outcome::Unanalyzed),
            );
        }
        println!(
            "recall {recall:.3}  precision {precision:.3}  exact-class {exact:.3}  \
             false positives: clean {} transient {} weekly {} peering {} route-shift {}",
            fp_of(FleetLabel::Clean),
            fp_of(FleetLabel::Transient),
            fp_of(FleetLabel::AdversarialWeekly),
            peering_fp,
            fp_of(FleetLabel::AdversarialRouteShift),
        );
    }

    if !gate_failures.is_empty() {
        return Err(format!(
            "fleet score gates failed: {}",
            gate_failures.join("; ")
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_spec_round_trips() {
        let text = r#"{
            "name": "smoke",
            "days": 7,
            "classes": {"severe": 2, "clean": 3, "adversarial_peering": 1},
            "probes_per_as": {"min": 3, "max": 6}
        }"#;
        let spec = parse_spec(text).unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.days, 7);
        assert_eq!(spec.classes.severe, 2);
        assert_eq!(spec.classes.clean, 3);
        assert_eq!(spec.classes.adversarial_peering, 1);
        assert_eq!(spec.classes.mild, 0);
        assert_eq!((spec.probes_min, spec.probes_max), (3, 6));
    }

    #[test]
    fn probes_per_as_defaults_when_omitted() {
        let spec = parse_spec(r#"{"name":"x","days":5,"classes":{"clean":1}}"#).unwrap();
        assert_eq!((spec.probes_min, spec.probes_max), (3, 8));
    }

    #[test]
    fn all_spec_problems_are_reported_together() {
        let text = r#"{
            "name": "bad",
            "days": 2,
            "classes": {"severe": 1, "bogus_label": 3},
            "probes_per_as": {"min": 1, "max": 0},
            "surprise": true
        }"#;
        let problems = parse_spec(text).unwrap_err();
        assert!(problems.len() >= 5, "{problems:?}");
        assert!(problems
            .iter()
            .any(|p| p.contains("unknown key \"surprise\"")));
        assert!(problems.iter().any(|p| p.contains("bogus_label")));
        assert!(problems.iter().any(|p| p.contains("Welch")));
        assert!(problems.iter().any(|p| p.contains("inclusion threshold")));
        assert!(problems.iter().any(|p| p.contains("probes_max")));
    }

    #[test]
    fn non_json_spec_is_one_clear_problem() {
        let problems = parse_spec("not json at all").unwrap_err();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("not valid JSON"));
    }

    #[test]
    fn outcome_names_cover_the_detector_classes() {
        for class in ["None", "Low", "Mild", "Severe"] {
            assert_eq!(Outcome::parse(class).unwrap().as_str(), class);
        }
        assert!(Outcome::parse("bogus").is_none());
        assert!(Outcome::Severe.reported() && !Outcome::None.reported());
        assert!(!Outcome::Unanalyzed.reported());
    }
}
