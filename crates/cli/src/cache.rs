//! Shared `--cache-dir` / `--cache` plumbing for the subcommands that can
//! reuse per-probe median series across runs.
//!
//! A cache directory holds one snapshot file (`series.lmss`) and is valid
//! for exactly one data source: the snapshot records a fingerprint of the
//! traceroute file it was built from, and a snapshot from a different
//! source (or a corrupt/truncated/old-format file) is reported and
//! ignored — the run recomputes everything, and in `rw` mode rewrites the
//! snapshot.

use crate::Flags;
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::core::series::ProbeSeriesBuilder;
use lastmile_repro::ingest::{ingest_file, IngestOptions};
use lastmile_repro::obs::{trace, RunMetrics, StageTimer};
use lastmile_repro::store::{CacheMode, SeriesStore, StoreConfig, StoreKey};
use lastmile_repro::timebase::TimeRange;
use std::io::Read;
use std::path::PathBuf;

/// Snapshot file name inside `--cache-dir`.
pub const SNAPSHOT_FILE: &str = "series.lmss";

/// What [`prime_snapshot`] wrote.
pub struct PrimeReport {
    /// Per-probe series inserted into the snapshot.
    pub series: usize,
    /// Snapshot size on disk, bytes.
    pub bytes: u64,
    /// The snapshot path (`<cache-dir>/series.lmss`).
    pub snapshot: PathBuf,
}

/// Prime a `--cache-dir` snapshot from an exported traceroute file, so a
/// later `classify --cache-dir` over that file starts warm. The file is
/// re-read through the same ingest path `classify` uses: the builders see
/// exactly what a `--probes`/ASN-0 classify would feed them — no
/// round-trip-fidelity assumption, and any export bug surfaces here as a
/// quarantined record instead of a poisoned snapshot.
///
/// The window must be the exact window a warm classify will pass via
/// `--start`/`--end` (the store only serves range-identical requests).
pub fn prime_snapshot(
    trs_path: &str,
    cache_dir: &str,
    window: &TimeRange,
) -> Result<PrimeReport, String> {
    let _span = trace::span("prime_cache");
    let cfg = PipelineConfig::paper();
    let store = SeriesStore::default();
    let mut builders: std::collections::BTreeMap<_, ProbeSeriesBuilder> = Default::default();
    let summary = ingest_file(trs_path, &IngestOptions::default(), |tr| {
        builders
            .entry(tr.probe)
            .or_insert_with(|| {
                ProbeSeriesBuilder::new(tr.probe, cfg.bin, cfg.min_traceroutes_per_bin)
            })
            .ingest(&tr);
    })?;
    if summary.skipped() > 0 {
        return Err(format!(
            "exported {trs_path} failed its own ingest: {} record(s) quarantined (first: {})",
            summary.skipped(),
            summary
                .quarantined
                .first()
                .map(|q| q.detail.as_str())
                .unwrap_or("?"),
        ));
    }
    for (probe, builder) in builders {
        let built = builder.finish_detailed();
        store.insert(&StoreKey::for_pipeline(probe, &cfg), window, &built);
    }
    std::fs::create_dir_all(cache_dir)
        .map_err(|e| format!("create --cache-dir {cache_dir}: {e}"))?;
    let snapshot = std::path::Path::new(cache_dir).join(SNAPSHOT_FILE);
    let fingerprint = file_fingerprint(trs_path)?;
    let bytes = store
        .save_snapshot(&snapshot, fingerprint)
        .map_err(|e| format!("save cache snapshot {}: {e}", snapshot.display()))?;
    Ok(PrimeReport {
        series: store.len(),
        bytes,
        snapshot,
    })
}

/// An active series cache: the (possibly snapshot-loaded) store plus
/// where and how to persist it.
pub struct Cache {
    pub store: SeriesStore,
    pub path: PathBuf,
    pub fingerprint: u64,
    pub mode: CacheMode,
}

/// Build the cache from `--cache-dir DIR` and `--cache off|ro|rw`
/// (default `rw`). Returns `None` when no `--cache-dir` was given.
/// `fingerprint` identifies the data source (see [`file_fingerprint`]);
/// it is computed lazily so an uncached run never pays for it.
pub fn from_flags(
    flags: &Flags,
    fingerprint: impl FnOnce() -> Result<u64, String>,
    metrics: Option<&RunMetrics>,
) -> Result<Option<Cache>, String> {
    let mode: CacheMode = flags.parsed("cache")?.unwrap_or_default();
    let Some(dir) = flags.optional("cache-dir") else {
        if flags.optional("cache").is_some() {
            return Err("--cache needs --cache-dir".into());
        }
        return Ok(None);
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("create --cache-dir {dir}: {e}"))?;
    let path = PathBuf::from(dir).join(SNAPSHOT_FILE);
    let config = StoreConfig {
        mode,
        ..StoreConfig::default()
    };
    if mode == CacheMode::Off {
        // Off mode neither loads nor persists, so the fingerprint (a
        // full scan of the data file) is never computed.
        return Ok(Some(Cache {
            store: SeriesStore::new(config),
            path,
            fingerprint: 0,
            mode,
        }));
    }
    let fingerprint = fingerprint()?;
    let span = trace::span_with("snapshot_load", |a| {
        a.str("path", path.display().to_string());
    });
    let load_timer = StageTimer::start();
    let (store, bytes, error) = SeriesStore::load_snapshot_or_empty(&path, fingerprint, config);
    drop(span);
    if let Some(m) = metrics {
        m.add_store_load_nanos(load_timer.elapsed_nanos());
        m.add_store_bytes_read(bytes);
    }
    match &error {
        Some(e) => eprintln!("[cache] ignoring {}: {e} (recomputing)", path.display()),
        None if bytes > 0 => eprintln!(
            "[cache] loaded {} ({} series, {bytes} bytes)",
            path.display(),
            store.len()
        ),
        None => {}
    }
    Ok(Some(Cache {
        store,
        path,
        fingerprint,
        mode,
    }))
}

impl Cache {
    /// Persist the store back to the snapshot (no-op unless `rw`).
    pub fn persist(&self, metrics: Option<&RunMetrics>) -> Result<(), String> {
        self.persist_as(self.fingerprint, metrics)
    }

    /// [`Cache::persist`], stamping the snapshot with a caller-supplied
    /// source fingerprint. A live daemon's corpus grows while it runs,
    /// so the fingerprint computed at startup no longer names the bytes
    /// the store now reflects — the shutdown persist recomputes it over
    /// the final corpus and stamps that instead.
    pub fn persist_as(&self, fingerprint: u64, metrics: Option<&RunMetrics>) -> Result<(), String> {
        if self.mode != CacheMode::ReadWrite {
            return Ok(());
        }
        let span = trace::span_with("snapshot_save", |a| {
            a.str("path", self.path.display().to_string());
        });
        let save_timer = StageTimer::start();
        let bytes = self
            .store
            .save_snapshot(&self.path, fingerprint)
            .map_err(|e| format!("save cache snapshot {}: {e}", self.path.display()))?;
        drop(span);
        if let Some(m) = metrics {
            m.add_store_save_nanos(save_timer.elapsed_nanos());
            m.add_store_bytes_written(bytes);
        }
        eprintln!(
            "[cache] saved {} ({} series, {bytes} bytes)",
            self.path.display(),
            self.store.len()
        );
        Ok(())
    }
}

/// Mix a second fingerprint into a first, order-sensitively: used when
/// the cached series depend on more than one input (e.g. `--bgp`
/// classification, where the table decides which traceroutes are
/// ingested), so snapshots from different input combinations — or the
/// same files in different roles — never match.
pub fn combine_fingerprints(a: u64, b: u64) -> u64 {
    // FNV-1a over a's bytes then b's: position-sensitive, so swapping
    // the inputs gives a different result.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in a.to_le_bytes().into_iter().chain(b.to_le_bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Fingerprint a data file by content (FNV-1a over its bytes): the same
/// bytes give the same fingerprint wherever the file lives, and any
/// content change invalidates snapshots built from it.
pub fn file_fingerprint(path: &str) -> Result<u64, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = reader
            .read(&mut buf)
            .map_err(|e| format!("read {path}: {e}"))?;
        if n == 0 {
            break;
        }
        for &b in &buf[..n] {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_content_not_name() {
        let dir = std::env::temp_dir().join("lastmile-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        std::fs::write(&a, "same bytes").unwrap();
        std::fs::write(&b, "same bytes").unwrap();
        let fa = file_fingerprint(a.to_str().unwrap()).unwrap();
        let fb = file_fingerprint(b.to_str().unwrap()).unwrap();
        assert_eq!(fa, fb);
        std::fs::write(&b, "other bytes").unwrap();
        assert_ne!(fa, file_fingerprint(b.to_str().unwrap()).unwrap());
        assert!(file_fingerprint("/does/not/exist").is_err());
    }

    #[test]
    fn combine_is_order_sensitive_and_changes_both_inputs() {
        assert_ne!(combine_fingerprints(1, 2), combine_fingerprints(2, 1));
        assert_ne!(combine_fingerprints(1, 2), 1);
        assert_ne!(combine_fingerprints(1, 2), 2);
        assert_eq!(combine_fingerprints(1, 2), combine_fingerprints(1, 2));
    }

    #[test]
    fn off_mode_never_computes_the_fingerprint() {
        let dir = std::env::temp_dir().join("lastmile-cache-off-test");
        std::fs::create_dir_all(&dir).unwrap();
        let args: Vec<String> = ["--cache-dir", dir.to_str().unwrap(), "--cache", "off"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = crate::Flags::parse(&args).unwrap();
        // The fingerprint closure (a full data-file scan in real runs)
        // must not run in off mode.
        let cache = from_flags(&flags, || panic!("fingerprint computed in off mode"), None)
            .unwrap()
            .expect("cache-dir given");
        assert_eq!(cache.mode, CacheMode::Off);
    }
}
