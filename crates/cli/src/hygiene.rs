//! `lastmile hygiene`: the §6 advisory for latency-sensitive studies —
//! which hours and probes to avoid per AS.

use crate::classify::analyze_file;
use crate::stats::{emit_stats, wants_stats};
use crate::Flags;
use lastmile_repro::core::hygiene::advise;
use lastmile_repro::obs::{RunMetrics, StageTimer};

pub fn run(flags: &Flags) -> Result<(), String> {
    let threshold: f64 = flags.parsed("threshold")?.unwrap_or(0.5);
    if threshold <= 0.0 {
        return Err("--threshold must be positive".into());
    }
    let metrics = wants_stats(flags).then(RunMetrics::new);
    let run_timer = StageTimer::start();
    let results = analyze_file(flags, metrics.as_ref())?;
    if let Some(m) = &metrics {
        m.set_wall(&run_timer);
    }
    if results.is_empty() {
        return Err("no analysable traceroutes in the window".into());
    }
    for (asn, analysis) in &results {
        let advisory = advise(analysis, threshold);
        let label = if *asn == 0 {
            "all probes".to_string()
        } else {
            format!("AS{asn}")
        };
        println!("{label}:");
        println!(
            "  persistent congestion : {}",
            if advisory.affected { "YES" } else { "no" }
        );
        if advisory.avoid_hours_utc.is_empty() {
            println!("  avoid hours (UTC)     : none");
        } else {
            let hours: Vec<String> = advisory
                .avoid_hours_utc
                .iter()
                .map(|h| format!("{h:02}"))
                .collect();
            println!("  avoid hours (UTC)     : {}", hours.join(", "));
            println!(
                "  bias if ignored       : +{:.2} ms median inflation",
                advisory.bias_ms
            );
        }
        if advisory.affected_probes.is_empty() {
            println!("  biased probes         : none");
        } else {
            let ids: Vec<String> = advisory
                .affected_probes
                .iter()
                .map(|p| p.0.to_string())
                .collect();
            println!("  biased probes         : {}", ids.join(", "));
        }
        println!();
    }
    println!("recommendation (paper §6): exclude the listed hours and probes from");
    println!("latency-based inferences (geolocation, anycast mapping, SLA baselines).");
    if let Some(m) = &metrics {
        emit_stats(flags, m)?;
    }
    Ok(())
}
