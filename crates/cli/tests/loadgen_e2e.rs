//! Saturation end-to-end test: the real `lastmile serve` daemon under a
//! real `lastmile loadgen` classify flood, with a heavy-class admission
//! budget of 1.
//!
//! Pinned behaviors, matching DESIGN.md's admission-control contract:
//!
//! * the flood sheds (`serve.admission.heavy.shed > 0`, 503s with
//!   `cost_class: "heavy"`) instead of queueing without bound;
//! * cheap endpoints (`/v1/populations`, `/v1/series/{asn}`) keep
//!   answering with bounded per-request latency while the flood runs;
//! * `POST /v1/traceroutes` intake lands mid-flood, the live engine
//!   re-analyzes, and `/v1/classify` converges to byte-identity with a
//!   cold `classify --json` over the union corpus;
//! * zero worker panics, and the loadgen report's shed accounting is
//!   consistent (`attempted == ok + shed + errors` — nonzero exit
//!   otherwise).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn lastmile_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("lastmile{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(lastmile_bin())
        .args(args)
        .output()
        .expect("spawn lastmile");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// One blocking HTTP/1.1 GET; the server always closes the connection.
fn http_get(addr: &str, target: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: lastmile\r\n\r\n").as_bytes())
        .unwrap();
    read_response(stream)
}

/// One blocking HTTP/1.1 POST with a `Content-Length` body.
fn http_post(addr: &str, target: &str, body: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST {target} HTTP/1.1\r\nHost: lastmile\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    stream.write_all(body).unwrap();
    read_response(stream)
}

fn read_response(mut stream: TcpStream) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let pos = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no head terminator in {:?}", String::from_utf8_lossy(&raw)));
    let head = String::from_utf8_lossy(&raw[..pos]).into_owned();
    let body = raw[pos + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    let headers = lines
        .map(|l| {
            let (k, v) = l
                .split_once(':')
                .unwrap_or_else(|| panic!("bad header {l:?}"));
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    (status, headers, body)
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// GET with 503-retry: sheds under load are expected and carry a
/// `Retry-After` hint; a well-behaved client honors it (capped, so the
/// test stays fast) and tries again until `deadline`.
fn get_with_retry(
    addr: &str,
    target: &str,
    deadline: Duration,
) -> (Vec<(String, String)>, Vec<u8>) {
    let started = Instant::now();
    loop {
        let (status, headers, body) = http_get(addr, target);
        if status == 200 {
            return (headers, body);
        }
        assert_eq!(
            status,
            503,
            "unexpected status for {target}: {}",
            String::from_utf8_lossy(&body)
        );
        assert!(
            started.elapsed() < deadline,
            "{target} still shedding after {deadline:?}"
        );
        let hint = header(&headers, "retry-after")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1);
        std::thread::sleep(Duration::from_millis((hint * 1000).min(300)));
    }
}

/// Poll `/metrics` until the live engine has analyzed every intake
/// record, or panic after `deadline`.
fn await_live_convergence(addr: &str, expect_ingested: u64, deadline: Duration) {
    let started = Instant::now();
    loop {
        let (status, _, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        let doc: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("metrics doc");
        let live = &doc["live"];
        if live["records_ingested"].as_u64() == Some(expect_ingested)
            && live["ingest_lag"].as_u64() == Some(0)
            && live["reanalyses"].as_u64().unwrap_or(0) >= 1
            && live["epoch"].as_u64().unwrap_or(0) >= 2
        {
            return;
        }
        assert!(
            started.elapsed() < deadline,
            "live intake never converged: {live}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn join_lines(ls: &[&str]) -> String {
    ls.iter().fold(String::new(), |mut s, l| {
        s.push_str(l);
        s.push('\n');
        s
    })
}

/// Wait for the `--ready-file` handshake, panicking with the daemon's
/// stderr if it dies first.
fn await_ready(child: &mut Child, ready: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(contents) = std::fs::read_to_string(ready) {
            if contents.ends_with('\n') {
                return contents.trim().to_string();
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            // Child already exited: safe to steal its output.
            let mut err = String::new();
            if let Some(stderr) = child.stderr.as_mut() {
                stderr.read_to_string(&mut err).ok();
            }
            panic!("serve exited before ready ({status}): {err}");
        }
        assert!(Instant::now() < deadline, "serve never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn classify_flood_sheds_heavy_while_cheap_and_intake_survive() {
    let dir = std::env::temp_dir().join(format!("lastmile-loadgen-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "anchor",
        "--out",
        dir.to_str().unwrap(),
        "--days",
        "5",
    ]);
    assert!(ok, "simulate failed: {err}");
    let probes = dir.join("probes.json");

    // Withhold probe 6005 entirely (changes the classification bytes for
    // sure); 500 of its records arrive later via POST, racing the flood.
    let all = std::fs::read_to_string(dir.join("traceroutes.jsonl")).expect("fixture corpus");
    let lines: Vec<&str> = all.lines().collect();
    let (head, tail): (Vec<&str>, Vec<&str>) = lines
        .iter()
        .partition(|line| !line.contains("\"prb_id\":6005"));
    assert!(tail.len() > 500, "fixture probe 6005 too sparse to split");
    let to_post = &tail[..500];
    let corpus = dir.join("live.jsonl");
    let spool = dir.join("spool.jsonl");
    std::fs::write(&corpus, join_lines(&head)).unwrap();

    // Two workers, but only ONE may run the heavy endpoint at a time —
    // and the heavy handler is artificially slowed so the flood piles up
    // against the budget instead of finishing before the next arrival.
    let ready = dir.join("ready");
    let mut child = Command::new(lastmile_bin())
        .args([
            "serve",
            "--traceroutes",
            corpus.to_str().unwrap(),
            "--probes",
            probes.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--ready-file",
            ready.to_str().unwrap(),
            "--serve-workers",
            "2",
            "--serve-budget-heavy",
            "1",
            "--serve-heavy-delay-ms",
            "100",
            "--reanalyze-debounce-ms",
            "100",
            "--live-spool",
            spool.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lastmile serve");
    let addr = await_ready(&mut child, &ready);

    // Pre-flood baseline: epoch 1 classify bytes, and a real ASN for the
    // cheap per-ASN endpoint.
    let (headers, baseline) = get_with_retry(&addr, "/v1/classify", Duration::from_secs(30));
    assert_eq!(header(&headers, "x-epoch"), Some("1"));
    let (status, _, body) = http_get(&addr, "/v1/populations");
    assert_eq!(status, 200);
    let pops: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("populations doc");
    let asn = pops.as_array().expect("rows")[0]["asn"]
        .as_u64()
        .expect("asn");

    // The flood: the real loadgen binary, open loop, heavy endpoint
    // only, offered well above what one budgeted slot at 100ms/request
    // can absorb (~10 rps).
    let flood_report = dir.join("flood.json");
    let flood = Command::new(lastmile_bin())
        .args([
            "loadgen",
            "--addr",
            &addr,
            "--profile",
            "fanout",
            "--mix",
            "classify=1",
            "--rate",
            "80",
            "--duration-ms",
            "6000",
            "--concurrency",
            "8",
            "--out",
            flood_report.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lastmile loadgen");
    std::thread::sleep(Duration::from_millis(500));

    // While the flood runs: cheap endpoints must keep answering, each
    // successful round-trip bounded — the second worker is never
    // starved, because over-budget heavy requests are shed in
    // microseconds instead of holding a worker for 100ms.
    let series_target = format!("/v1/series/{asn}");
    for _ in 0..8 {
        for target in ["/v1/populations", series_target.as_str()] {
            let attempt = Instant::now();
            let (_, body) = get_with_retry(&addr, target, Duration::from_secs(10));
            assert!(!body.is_empty());
            assert!(
                attempt.elapsed() < Duration::from_secs(5),
                "cheap endpoint {target} starved under flood: {:?}",
                attempt.elapsed()
            );
        }
    }

    // Mid-flood intake: the POST must land (503 sheds are retried like
    // any well-behaved collector would).
    let post_body = join_lines(to_post);
    let post_started = Instant::now();
    let outcome = loop {
        let (status, headers, body) = http_post(&addr, "/v1/traceroutes", post_body.as_bytes());
        if status == 200 {
            break serde_json::from_str::<serde_json::Value>(
                std::str::from_utf8(&body).expect("intake doc utf8"),
            )
            .expect("intake doc");
        }
        assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
        assert!(
            post_started.elapsed() < Duration::from_secs(30),
            "intake POST never landed under flood"
        );
        let hint = header(&headers, "retry-after")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1);
        std::thread::sleep(Duration::from_millis((hint * 1000).min(300)));
    };
    assert_eq!(outcome["accepted"].as_u64(), Some(500));

    // The flood finishes with consistent shed accounting (nonzero exit
    // otherwise) and a report showing real sheds naming the heavy class.
    let flood_out = flood.wait_with_output().expect("collect loadgen output");
    assert!(
        flood_out.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&flood_out.stderr)
    );
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&flood_report).unwrap())
            .expect("flood report");
    assert_eq!(report["consistent"].as_bool(), Some(true));
    let classify = &report["endpoints"]["classify"];
    assert!(
        classify["shed"].as_u64().unwrap() > 0,
        "flood never hit the heavy budget: {report}"
    );
    assert!(classify["ok"].as_u64().unwrap() > 0, "{report}");
    assert!(
        report["totals"]["retry_after_max"].as_u64().unwrap() >= 1,
        "{report}"
    );

    // Quiet now: the live engine converges, and the served document is
    // byte-identical to a cold classify over the union corpus — the
    // flood never corrupted an epoch.
    await_live_convergence(&addr, 500, Duration::from_secs(120));
    let (headers, live_body) = get_with_retry(&addr, "/v1/classify", Duration::from_secs(30));
    assert_ne!(live_body, baseline, "intake changed nothing");
    let live_epoch: u64 = header(&headers, "x-epoch").unwrap().parse().unwrap();
    assert!(live_epoch >= 2);
    let union = dir.join("union.jsonl");
    let mut union_bytes = std::fs::read(&corpus).unwrap();
    union_bytes.extend_from_slice(&std::fs::read(&spool).unwrap());
    std::fs::write(&union, union_bytes).unwrap();
    let (cold, err, ok) = run(&[
        "classify",
        "--traceroutes",
        union.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "cold union classify failed: {err}");
    assert_eq!(
        live_body,
        cold.as_bytes(),
        "flooded daemon diverged from cold union classify"
    );

    // Daemon-side accounting agrees: heavy budget 1 enforced and hit,
    // sheds recorded in the dedicated rejected histogram, no panics.
    let (status, _, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    let metrics: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("metrics doc");
    let serve = &metrics["serve"];
    let heavy = &serve["admission"]["heavy"];
    assert_eq!(heavy["budget"].as_u64(), Some(1), "{serve}");
    assert!(heavy["shed"].as_u64().unwrap() > 0, "{serve}");
    assert!(heavy["admitted"].as_u64().unwrap() > 0, "{serve}");
    // Unset classes auto-size to the worker count: admission disengaged.
    assert_eq!(serve["admission"]["cheap"]["budget"].as_u64(), Some(2));
    assert_eq!(serve["admission"]["intake"]["budget"].as_u64(), Some(2));
    assert!(
        serve["latency"]["rejected"]["count"].as_u64().unwrap() > 0,
        "{serve}"
    );
    assert_eq!(serve["worker_panics"].as_u64(), Some(0), "{serve}");

    let ok = Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill failed");
    let out = child.wait_with_output().expect("collect serve output");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "serve did not exit cleanly: {stderr}");
    assert!(stderr.contains("[serve] shutdown: drained"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
