//! End-to-end test for the ops plane: spawn the real `lastmile serve`
//! binary with the sampler, telemetry ring, access log, and trace
//! stream all enabled, push a shed-inducing burst through it, and
//! assert the whole observability story joins up:
//!
//! * `/v1/ops/timeline` shows the shed rate rising during the burst and
//!   recovering after it;
//! * `/v1/ops/epochs` records the mid-burst re-analysis the intake POST
//!   triggered;
//! * an explicit `X-Request-Id` is echoed on the response and appears
//!   in both the access log and the trace JSON;
//! * `/metrics?format=prom` passes the strict linter and its histogram
//!   `_count` agrees with the JSON snapshot, fetched prom-first;
//! * zero worker panics under all of it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

fn lastmile_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("lastmile{}", std::env::consts::EXE_SUFFIX));
    path
}

/// Simulate the anchor fixture into `dir`, returning the traceroute and
/// probe file paths.
fn fixture(dir: &Path) -> (PathBuf, PathBuf) {
    let out = Command::new(lastmile_bin())
        .args([
            "simulate",
            "--scenario",
            "anchor",
            "--out",
            dir.to_str().unwrap(),
            "--days",
            "5",
        ])
        .output()
        .expect("spawn simulate");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (dir.join("traceroutes.jsonl"), dir.join("probes.json"))
}

/// Spawn `lastmile serve` and wait for the ready file, returning the
/// child and the bound address.
fn spawn_serve(dir: &Path, extra: &[&str]) -> (Child, String) {
    let (trs, probes) = fixture(dir);
    let ready = dir.join("ready");
    let mut args = vec![
        "serve".to_string(),
        "--traceroutes".into(),
        trs.to_str().unwrap().into(),
        "--probes".into(),
        probes.to_str().unwrap().into(),
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--ready-file".into(),
        ready.to_str().unwrap().into(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let mut child = Command::new(lastmile_bin())
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lastmile serve");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(contents) = std::fs::read_to_string(&ready) {
            if contents.ends_with('\n') {
                break contents.trim().to_string();
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            let out = child.wait_with_output().expect("collect output");
            panic!(
                "serve exited before ready ({status}): {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        assert!(Instant::now() < deadline, "serve never became ready");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

/// SIGTERM the daemon and collect (stderr, success).
fn terminate(child: Child) -> (String, bool) {
    let ok = Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill failed");
    let out = child.wait_with_output().expect("collect serve output");
    (
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// One blocking HTTP/1.1 GET with optional extra header lines (each
/// `"Name: value"`); the server closes, so the body runs to EOF.
fn http_get_with(
    addr: &str,
    target: &str,
    extra_headers: &[&str],
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut request = format!("GET {target} HTTP/1.1\r\nHost: lastmile\r\n");
    for line in extra_headers {
        request.push_str(line);
        request.push_str("\r\n");
    }
    request.push_str("\r\n");
    stream.write_all(request.as_bytes()).unwrap();
    read_response(stream)
}

fn http_get(addr: &str, target: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    http_get_with(addr, target, &[])
}

fn http_post(addr: &str, target: &str, body: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST {target} HTTP/1.1\r\nHost: lastmile\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    stream.write_all(body).unwrap();
    read_response(stream)
}

fn read_response(mut stream: TcpStream) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let pos = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no head terminator in {:?}", String::from_utf8_lossy(&raw)));
    let head = String::from_utf8_lossy(&raw[..pos]).into_owned();
    let body = raw[pos + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    let headers = lines
        .map(|l| {
            let (k, v) = l
                .split_once(':')
                .unwrap_or_else(|| panic!("bad header {l:?}"));
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    (status, headers, body)
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn metrics_json(addr: &str) -> serde_json::Value {
    let (status, _, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("metrics doc")
}

fn unix_now_secs() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_secs() as i64
}

#[test]
fn ops_plane_joins_timeline_epochs_access_log_and_prom() {
    let dir = std::env::temp_dir().join(format!("lastmile-ops-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let access = dir.join("access.jsonl");
    let trace = dir.join("trace.json");
    let spool = dir.join("spool.jsonl");
    // A tight heavy budget plus a per-heavy-request delay makes sheds
    // easy to force; a 50 ms sampler gives the timeline fine enough
    // grain to see the burst's shape; live flags arm the re-analysis
    // engine so an intake POST produces an epoch record.
    let (child, addr) = spawn_serve(
        &dir,
        &[
            "--serve-workers",
            "2",
            "--serve-budget-heavy",
            "1",
            "--serve-heavy-delay-ms",
            "200",
            "--watch",
            "--watch-poll-ms",
            "50",
            "--reanalyze-debounce-ms",
            "100",
            "--live-spool",
            spool.to_str().unwrap(),
            "--ops-sample-ms",
            "50",
            "--access-log",
            access.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ],
    );

    // Let the sampler lay down a few quiet ticks, then pin the query
    // window's `from` after the first tick so the timeline answers at
    // raw resolution.
    std::thread::sleep(Duration::from_millis(400));
    let from = unix_now_secs();

    // A client-supplied request id is echoed back on the response.
    let (status, headers, _) =
        http_get_with(&addr, "/v1/populations", &["X-Request-Id: ops-e2e-probe-1"]);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-request-id"), Some("ops-e2e-probe-1"));

    // The burst: three rounds of 12 concurrent heavy requests against a
    // budget of 1, with an intake POST in the middle to trigger a
    // re-analysis while the daemon is shedding.
    let corpus = dir.join("traceroutes.jsonl");
    let last_line = {
        let all = std::fs::read_to_string(&corpus).unwrap();
        all.lines()
            .next_back()
            .expect("nonempty corpus")
            .to_string()
    };
    let mut sheds = 0u64;
    let mut oks = 0u64;
    for round in 0..3 {
        let outcomes: Vec<(u16, Vec<(String, String)>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..12)
                .map(|_| {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let (status, headers, _) = http_get(&addr, "/v1/classify");
                        (status, headers)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("burst client"))
                .collect()
        });
        for (status, headers) in outcomes {
            assert!(
                status == 200 || status == 503,
                "unexpected status {status} under burst"
            );
            // Every response — served or shed — carries a request id.
            let id = header(&headers, "x-request-id").expect("x-request-id on every response");
            assert!(!id.is_empty());
            if status == 503 {
                sheds += 1;
            } else {
                oks += 1;
            }
        }
        if round == 1 {
            let body = format!("{last_line}\n");
            let (status, _, resp) = http_post(&addr, "/v1/traceroutes", body.as_bytes());
            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
        }
        std::thread::sleep(Duration::from_millis(150));
    }
    assert!(sheds >= 1, "burst never shed (ok {oks}, sheds {sheds})");
    assert!(oks >= 1, "burst starved everything (sheds {sheds})");

    // Wait for the POSTed record's re-analysis to land, then give the
    // sampler time to record the recovery (zero-shed ticks).
    let started = Instant::now();
    loop {
        let doc = metrics_json(&addr);
        let live = &doc["live"];
        if live["reanalyses"].as_u64().unwrap_or(0) >= 1 && live["ingest_lag"].as_u64() == Some(0) {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "re-analysis never landed: {live}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    std::thread::sleep(Duration::from_millis(400));

    // Prometheus exposition, fetched BEFORE the JSON snapshot so the
    // self-incrementing metrics endpoint can't skew the comparison of a
    // quiesced endpoint (classify: the burst is fully joined).
    let (status, headers, prom_body) = http_get(&addr, "/metrics?format=prom");
    assert_eq!(status, 200);
    assert!(
        header(&headers, "content-type")
            .unwrap()
            .starts_with("text/plain; version=0.0.4"),
        "wrong prom content type"
    );
    let prom_text = std::str::from_utf8(&prom_body).expect("utf-8 exposition");
    if let Err(errors) = lastmile_repro::obs::prom::lint(prom_text) {
        panic!("exposition failed its own linter: {errors:?}");
    }
    let prom_classify_count: u64 = prom_text
        .lines()
        .find(|l| {
            l.starts_with("lastmile_serve_request_duration_nanos_count{endpoint=\"classify\"}")
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("classify _count series in exposition");

    // Accept-header negotiation: a text/plain scraper gets prom without
    // the query parameter; the bare endpoint still answers JSON.
    let (status, headers, _) = http_get_with(&addr, "/metrics", &["Accept: text/plain"]);
    assert_eq!(status, 200);
    assert!(header(&headers, "content-type")
        .unwrap()
        .starts_with("text/plain; version=0.0.4"));
    let (_, headers, _) = http_get(&addr, "/metrics");
    assert_eq!(header(&headers, "content-type"), Some("application/json"));

    // The JSON snapshot agrees with the exposition and reports a clean
    // run: sheds happened, nothing panicked.
    let doc = metrics_json(&addr);
    let serve = &doc["serve"];
    assert_eq!(
        serve["latency"]["classify"]["count"].as_u64(),
        Some(prom_classify_count),
        "prom _count diverged from the JSON snapshot"
    );
    assert_eq!(serve["worker_panics"].as_u64(), Some(0));
    let heavy_shed = serve["admission"]["heavy"]["shed"].as_u64().unwrap();
    assert!(heavy_shed >= 1, "{serve}");

    // The timeline saw the burst: shed_rate_heavy rises above zero and
    // recovers to zero afterwards, at raw resolution, with monotone
    // timestamps.
    let to = unix_now_secs() + 60;
    let (status, _, body) = http_get(
        &addr,
        &format!("/v1/ops/timeline?metric=shed_rate_heavy&from={from}&to={to}"),
    );
    assert_eq!(status, 200);
    let timeline: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("timeline doc");
    assert_eq!(timeline["metric"].as_str(), Some("shed_rate_heavy"));
    let points = timeline["points"].as_array().expect("points");
    assert!(points.len() >= 2, "timeline too sparse: {timeline}");
    let times: Vec<i64> = points.iter().map(|p| p["t"].as_i64().unwrap()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    let maxes: Vec<f64> = points.iter().map(|p| p["max"].as_f64().unwrap()).collect();
    let rise = maxes
        .iter()
        .position(|&v| v > 0.0)
        .unwrap_or_else(|| panic!("shed rate never rose: {maxes:?}"));
    assert!(
        maxes[rise..].last() == Some(&0.0),
        "shed rate never recovered: {maxes:?}"
    );
    // Unknown metrics are a client error naming the valid set.
    let (status, _, body) = http_get(&addr, "/v1/ops/timeline?metric=bogus");
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("shed_rate_heavy"));

    // The epoch telemetry ring recorded the mid-burst re-analysis.
    let (status, _, body) = http_get(&addr, "/v1/ops/epochs");
    assert_eq!(status, 200);
    let epochs: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("epochs doc");
    let records = epochs["epochs"].as_array().expect("epochs array");
    let posted = records
        .iter()
        .find(|r| r["trigger"].as_str().unwrap_or("").contains("post"))
        .unwrap_or_else(|| panic!("no post-triggered epoch record: {epochs}"));
    assert_eq!(posted["outcome"].as_str(), Some("published"));
    assert!(posted["epoch"].as_u64().unwrap() >= 2);
    assert!(posted["records_ingested"].as_u64().unwrap() >= 1);
    assert!(posted["pass_nanos"].as_u64().unwrap() > 0);

    let (stderr, ok) = terminate(child);
    assert!(ok, "serve did not exit cleanly: {stderr}");

    // The explicit request id joins the access log and the trace: one
    // JSON access-log line carries it (with the populations endpoint
    // and a 200), and the trace file mentions it in a span.
    let log = std::fs::read_to_string(&access).expect("access log written");
    let tagged = log
        .lines()
        .find(|l| l.contains("ops-e2e-probe-1"))
        .unwrap_or_else(|| panic!("request id missing from access log:\n{log}"));
    let entry: serde_json::Value = serde_json::from_str(tagged).expect("access line is JSON");
    assert_eq!(entry["request_id"].as_str(), Some("ops-e2e-probe-1"));
    assert_eq!(entry["status"].as_u64(), Some(200));
    assert_eq!(entry["endpoint"].as_str(), Some("populations"));
    // Every line is a parseable object, and both outcomes of the burst
    // (served + shed) are in the log.
    for line in log.lines() {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable access line {line:?}: {e}"));
        assert!(v.as_object().is_some());
    }
    assert!(log.contains("\"shed_reason\":\"over_budget\""), "{log}");
    let trace_json = std::fs::read_to_string(&trace).expect("trace written");
    assert!(
        trace_json.contains("ops-e2e-probe-1"),
        "request id missing from trace"
    );
    std::fs::remove_dir_all(&dir).ok();
}
