//! End-to-end tests of the `lastmile fleet` subcommand: spec linting,
//! byte-exact determinism of generated corpora, snapshot priming for
//! zero-re-ingest warm classification, and the truth-joined scorer with
//! its CI gates.

use std::path::{Path, PathBuf};
use std::process::Command;

fn lastmile_bin() -> PathBuf {
    // target/debug/lastmile next to the test binary's directory.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("lastmile{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(lastmile_bin())
        .args(args)
        .output()
        .expect("spawn lastmile");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// A fresh scratch dir per test (parallel tests must not collide).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lastmile-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small spec covering a persistent, a clean, and an adversarial AS.
fn write_spec(dir: &Path) -> PathBuf {
    let spec = dir.join("spec.json");
    std::fs::write(
        &spec,
        r#"{
            "name": "e2e",
            "days": 5,
            "classes": {"severe": 1, "clean": 1, "adversarial_peering": 1},
            "probes_per_as": {"min": 3, "max": 4}
        }"#,
    )
    .unwrap();
    spec
}

/// The `--start`/`--end` instants recorded in a truth sidecar.
fn truth_window(truth_path: &Path) -> (i64, i64) {
    let truth: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(truth_path).unwrap()).unwrap();
    (
        truth["window"]["start"].as_i64().unwrap(),
        truth["window"]["end"].as_i64().unwrap(),
    )
}

#[test]
fn lint_validates_fleet_specs() {
    let dir = scratch("lint");
    let spec = write_spec(&dir);
    let (_, err, ok) = run(&["lint", "--fleet", spec.to_str().unwrap()]);
    assert!(ok, "lint rejected a valid spec: {err}");
    assert!(err.contains("fleet spec ok (3 ASes, 5 days)"), "{err}");

    // A broken spec fails with *every* problem listed, not just the first.
    let bad = dir.join("bad.json");
    std::fs::write(
        &bad,
        r#"{"name": "bad", "days": 2, "classes": {"severe": 1}, "surprise": true}"#,
    )
    .unwrap();
    let (_, err, ok) = run(&["lint", "--fleet", bad.to_str().unwrap()]);
    assert!(!ok, "lint accepted an invalid spec");
    assert!(err.contains("unknown key \"surprise\""), "{err}");
    assert!(err.contains("Welch"), "{err}");
}

#[test]
fn fleet_corpus_is_byte_identical_across_threads_and_runs() {
    let dir = scratch("determinism");
    let spec = write_spec(&dir);
    let spec_s = spec.to_str().unwrap();
    for (out, threads) in [("a", "1"), ("b", "1"), ("c", "3")] {
        let out_dir = dir.join(out);
        let (_, err, ok) = run(&[
            "fleet",
            "gen",
            "--spec",
            spec_s,
            "--out",
            out_dir.to_str().unwrap(),
            "--seed",
            "11",
            "--threads",
            threads,
        ]);
        assert!(ok, "fleet gen --threads {threads} failed: {err}");
    }
    for artifact in ["traceroutes.jsonl", "probes.json", "bgp.csv", "truth.json"] {
        let a = std::fs::read(dir.join("a").join(artifact)).unwrap();
        let b = std::fs::read(dir.join("b").join(artifact)).unwrap();
        let c = std::fs::read(dir.join("c").join(artifact)).unwrap();
        assert!(a == b, "{artifact} differs between identical runs");
        assert!(
            a == c,
            "{artifact} differs between --threads 1 and --threads 3"
        );
        assert!(!a.is_empty(), "{artifact} is empty");
    }

    // A different seed moves the corpus (the knob is live).
    let other = dir.join("other");
    let (_, err, ok) = run(&[
        "fleet",
        "gen",
        "--spec",
        spec_s,
        "--out",
        other.to_str().unwrap(),
        "--seed",
        "12",
    ]);
    assert!(ok, "fleet gen failed: {err}");
    let a = std::fs::read(dir.join("a/traceroutes.jsonl")).unwrap();
    let d = std::fs::read(other.join("traceroutes.jsonl")).unwrap();
    assert!(a != d, "different seeds must move the corpus");
}

#[test]
fn fleet_gen_primes_cache_for_zero_reingest_warm_classify() {
    let dir = scratch("warm");
    let spec = write_spec(&dir);
    let world = dir.join("world");
    let cache = dir.join("cache");
    let (_, err, ok) = run(&[
        "fleet",
        "gen",
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        world.to_str().unwrap(),
        "--seed",
        "5",
        "--cache-dir",
        cache.to_str().unwrap(),
    ]);
    assert!(ok, "fleet gen failed: {err}");
    assert!(err.contains("[cache] primed"), "{err}");
    assert!(cache.join("series.lmss").exists());

    let (start, end) = truth_window(&world.join("truth.json"));
    let trs = world.join("traceroutes.jsonl");
    let probes_path = world.join("probes.json");
    let probes: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&probes_path).unwrap()).unwrap();
    let probe_count = probes.as_array().unwrap().len();

    let classify = |extra: &[&str]| -> (String, String, bool) {
        let mut args = vec![
            "classify",
            "--traceroutes",
            trs.to_str().unwrap(),
            "--probes",
            probes_path.to_str().unwrap(),
            "--json",
        ];
        let (start_s, end_s) = (start.to_string(), end.to_string());
        args.extend(["--start", &start_s, "--end", &end_s]);
        args.extend(extra);
        run(&args)
    };

    // Cold baseline: no cache flags at all.
    let (cold, err, ok) = classify(&[]);
    assert!(ok, "cold classify failed: {err}");

    // Warm run against the primed snapshot, read-only: every series is a
    // hit, nothing is re-ingested, nothing is re-inserted — and the
    // verdicts are byte-identical to the cold run.
    let stats = dir.join("stats.json");
    let (warm, err, ok) = classify(&[
        "--cache-dir",
        cache.to_str().unwrap(),
        "--cache",
        "ro",
        "--stats-out",
        stats.to_str().unwrap(),
    ]);
    assert!(ok, "warm classify failed: {err}");
    assert_eq!(cold, warm, "warm verdicts must match cold verdicts");
    let stats: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    assert_eq!(
        stats["store"]["hits"].as_u64().unwrap(),
        probe_count as u64,
        "every probe series must come from the snapshot: {stats}"
    );
    assert_eq!(stats["store"]["misses"].as_u64(), Some(0), "{stats}");
    assert_eq!(stats["store"]["inserts"].as_u64(), Some(0), "{stats}");
    assert_eq!(
        stats["traceroutes_ingested"].as_u64(),
        Some(0),
        "a warm fleet survey must re-ingest nothing: {stats}"
    );
}

#[test]
fn fleet_score_joins_truth_and_enforces_gates() {
    let dir = scratch("score");
    let spec = write_spec(&dir);
    let world = dir.join("world");
    let (_, err, ok) = run(&[
        "fleet",
        "gen",
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        world.to_str().unwrap(),
        "--seed",
        "9",
    ]);
    assert!(ok, "fleet gen failed: {err}");
    let (start, end) = truth_window(&world.join("truth.json"));

    let (classified, err, ok) = run(&[
        "classify",
        "--traceroutes",
        world.join("traceroutes.jsonl").to_str().unwrap(),
        "--probes",
        world.join("probes.json").to_str().unwrap(),
        "--start",
        &start.to_string(),
        "--end",
        &end.to_string(),
        "--json",
    ]);
    assert!(ok, "classify failed: {err}");
    let classified_path = dir.join("classified.json");
    std::fs::write(&classified_path, &classified).unwrap();

    // Gates that must hold by construction: the severe AS is found
    // (recall 1.0) and the peering AS — congested *beyond* the edge — is
    // never a false positive.
    let truth_s = world.join("truth.json");
    let (stdout, err, ok) = run(&[
        "fleet",
        "score",
        "--truth",
        truth_s.to_str().unwrap(),
        "--classified",
        classified_path.to_str().unwrap(),
        "--min-recall",
        "0.99",
        "--max-peering-fp",
        "0",
    ]);
    assert!(ok, "score gates failed: {err}\n{stdout}");
    assert!(stdout.contains("severe"), "{stdout}");
    assert!(stdout.contains("adversarial_peering"), "{stdout}");
    assert!(stdout.contains("recall 1.000"), "{stdout}");

    // The JSON form carries the full matrix.
    let (stdout, err, ok) = run(&[
        "fleet",
        "score",
        "--truth",
        truth_s.to_str().unwrap(),
        "--classified",
        classified_path.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "score --json failed: {err}");
    let doc: serde_json::Value = serde_json::from_str(&stdout).expect("score json");
    assert_eq!(doc["spec_name"], "e2e");
    assert_eq!(doc["ases"].as_u64(), Some(3));
    assert_eq!(doc["recall"].as_f64(), Some(1.0));
    assert_eq!(
        doc["false_positives"]["adversarial_peering"].as_u64(),
        Some(0)
    );
    let matrix = doc["matrix"].as_array().unwrap();
    assert_eq!(matrix.len(), 3, "{stdout}");
    assert_eq!(matrix[0]["label"], "severe");
    assert_eq!(matrix[0]["outcomes"]["Severe"].as_u64(), Some(1));

    // An impossible gate fails loudly (nonzero exit, matrix still shown).
    let (stdout, err, ok) = run(&[
        "fleet",
        "score",
        "--truth",
        truth_s.to_str().unwrap(),
        "--classified",
        classified_path.to_str().unwrap(),
        "--min-recall",
        "1.01",
    ]);
    assert!(!ok, "impossible gate must fail");
    assert!(err.contains("below --min-recall"), "{err}");
    assert!(
        stdout.contains("severe"),
        "matrix must print even on gate failure"
    );
}
