//! End-to-end tests of the parallel ingest path: classification output
//! must be byte-identical at any thread count (and on the retained serial
//! reference path) for both input forms, and malformed records must show
//! up — typed and reproducible — in `--stats` and `--quarantine`.

use std::path::PathBuf;
use std::process::Command;

fn lastmile_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("lastmile{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(lastmile_bin())
        .args(args)
        .output()
        .expect("spawn lastmile");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// One synthetic Atlas traceroute line: probe `prb`, congestion-shaped
/// RTT at the edge hop.
fn tr_line(prb: u32, ts: i64, rtt: f64) -> String {
    format!(
        r#"{{"fw":5020,"af":4,"dst_addr":"20.99.0.1","src_addr":"192.168.1.10","from":"20.0.0.{prb}","msm_id":5001,"prb_id":{prb},"timestamp":{ts},"proto":"ICMP","type":"traceroute","result":[{{"hop":1,"result":[{{"from":"192.168.1.1","rtt":1.0}}]}},{{"hop":2,"result":[{{"from":"20.0.0.{prb}","rtt":{rtt}}}]}}]}}"#
    )
}

/// A day of 30-minute bins for three probes, in both wire forms.
fn write_dataset(dir: &std::path::Path) -> (PathBuf, PathBuf) {
    let mut lines = Vec::new();
    for bin in 0..48i64 {
        for k in 0..3i64 {
            let ts = bin * 1800 + k * 600;
            // A mild diurnal swing so the pipeline has structure to chew on.
            let rtt = 10.0 + 3.0 * ((bin % 48) as f64 / 48.0);
            for prb in 1..=3u32 {
                lines.push(tr_line(prb, ts, rtt + prb as f64 * 0.25));
            }
        }
    }
    let jsonl = dir.join("trs.jsonl");
    std::fs::write(&jsonl, lines.join("\n") + "\n").unwrap();
    let array = dir.join("trs.json");
    std::fs::write(&array, format!("[\n{}\n]", lines.join(",\n"))).unwrap();
    (jsonl, array)
}

#[test]
fn reports_are_byte_identical_across_thread_counts_and_forms() {
    let dir = std::env::temp_dir().join(format!("lastmile-ingest-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (jsonl, array) = write_dataset(&dir);

    let classify = |path: &std::path::Path, extra: &[&str]| {
        let mut args = vec![
            "classify",
            "--traceroutes",
            path.to_str().unwrap(),
            "--min-probes",
            "1",
            "--json",
        ];
        args.extend_from_slice(extra);
        let (stdout, err, ok) = run(&args);
        assert!(ok, "classify {extra:?} failed: {err}");
        stdout
    };

    let baseline = classify(&jsonl, &["--ingest-serial"]);
    assert!(!baseline.is_empty());
    for extra in [
        &["--ingest-threads", "1"][..],
        &["--ingest-threads", "4"][..],
        &[][..], // auto
    ] {
        assert_eq!(
            classify(&jsonl, extra),
            baseline,
            "lines form diverges under {extra:?}"
        );
        assert_eq!(
            classify(&array, extra),
            baseline,
            "array form diverges under {extra:?}"
        );
    }
    assert_eq!(
        classify(&array, &["--ingest-serial"]),
        baseline,
        "serial array form diverges"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_counts_and_dump_are_exact() {
    let dir = std::env::temp_dir().join(format!("lastmile-ingest-quar-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Two good records around one JSON-broken line and one well-formed
    // JSON document that fails model conversion (unparsable destination).
    let good1 = tr_line(1, 600, 10.0);
    let good2 = tr_line(1, 86000, 11.0);
    let bad_json = r#"{"fw":5020,"af":4,TRUNCATED"#;
    let bad_model = r#"{"fw":5020,"af":4,"dst_addr":"not-an-ip","src_addr":"192.168.1.10","from":"20.0.0.1","msm_id":5001,"prb_id":1,"timestamp":700,"proto":"ICMP","type":"traceroute","result":[]}"#;
    let trs = dir.join("trs.jsonl");
    std::fs::write(&trs, format!("{good1}\n{bad_json}\n{bad_model}\n{good2}\n")).unwrap();

    let stats_path = dir.join("stats.json");
    let quarantine_path = dir.join("quarantine.jsonl");
    let (_, err, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--min-probes",
        "1",
        "--stats-out",
        stats_path.to_str().unwrap(),
        "--quarantine",
        quarantine_path.to_str().unwrap(),
    ]);
    assert!(ok, "classify failed: {err}");
    assert!(err.contains("2 traceroutes parsed, 2 skipped"), "{err}");

    // Typed counts in the stats JSON are per-file exact, even though
    // classify reads the file twice.
    let stats: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats_path).unwrap()).unwrap();
    let q = &stats["ingest"]["quarantined"];
    assert_eq!(q["json"], 1, "{stats}");
    assert_eq!(q["model"], 1, "{stats}");
    assert_eq!(q["framing"], 0, "{stats}");
    assert_eq!(q["worker_panic"], 0, "{stats}");
    assert_eq!(stats["ingest"]["records_decoded"], 4, "two passes of two");
    assert!(stats["ingest"]["bytes_read"].as_u64().unwrap() > 0);
    assert!(stats["ingest"]["records_per_sec"].as_f64().unwrap() > 0.0);

    // The dump reproduces each bad record verbatim, with its offset.
    let dump = std::fs::read_to_string(&quarantine_path).unwrap();
    let docs: Vec<serde_json::Value> = dump
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(docs.len(), 2, "{dump}");
    assert_eq!(docs[0]["kind"], "json");
    assert_eq!(docs[0]["record"], bad_json);
    assert_eq!(docs[0]["offset"], (good1.len() + 1) as u64);
    assert_eq!(docs[1]["kind"], "model");
    assert_eq!(docs[1]["record"], bad_model);
    assert!(!docs[1]["detail"].as_str().unwrap().is_empty());

    std::fs::remove_dir_all(&dir).ok();
}
