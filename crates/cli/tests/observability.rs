//! End-to-end observability: simulate a fixture, then classify with
//! `--trace`, `--stats-out`, `--populations-csv`, and `--progress`, and
//! validate every artefact — the Chrome trace is well-formed (valid
//! JSON, balanced begin/end per thread, one span per pipeline stage and
//! per population), the stats JSON matches its golden key set, the CSV
//! mirrors the population table — and that classification stdout stays
//! byte-identical across ingest thread counts with tracing on.
//!
//! `scripts/check.sh` runs this test as its observability smoke step, so
//! the artefact validation needs no external tools (no jq).

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::process::Command;

fn lastmile_bin() -> PathBuf {
    // target/debug/lastmile next to the test binary's directory.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("lastmile{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(lastmile_bin())
        .args(args)
        .output()
        .expect("spawn lastmile");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn keys(v: &serde_json::Value) -> Vec<&str> {
    v.as_object()
        .expect("object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect()
}

#[test]
fn trace_stats_and_csv_artifacts() {
    let dir = std::env::temp_dir().join(format!("lastmile-obs-e2e-{}", std::process::id()));
    let dir_s = dir.to_str().unwrap();
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "anchor",
        "--out",
        dir_s,
        "--days",
        "5",
    ]);
    assert!(ok, "simulate failed: {err}");
    let trs = dir.join("traceroutes.jsonl");
    let probes = dir.join("probes.json");
    let trace_path = dir.join("trace.json");
    let stats_path = dir.join("stats.json");
    let csv_path = dir.join("populations.csv");

    let (stdout_base, err, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--json",
        "--trace",
        trace_path.to_str().unwrap(),
        "--stats-out",
        stats_path.to_str().unwrap(),
        "--populations-csv",
        csv_path.to_str().unwrap(),
        "--progress",
    ]);
    assert!(ok, "classify failed: {err}");
    assert!(err.contains("[trace] wrote"), "{err}");
    // The heartbeat prints a final line when it stops, so even a
    // sub-second run reports at least once.
    assert!(err.contains("[progress"), "{err}");

    // --- The trace file: valid Chrome trace-event JSON ---------------
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap())
            .expect("trace file is valid JSON");
    assert_eq!(trace["displayTimeUnit"], "ms");
    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    // Balanced begin/end per thread: depth never goes negative and every
    // thread returns to zero.
    let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
    let mut span_names: BTreeSet<String> = BTreeSet::new();
    let mut population_spans = 0u64;
    for ev in events {
        let ph = ev["ph"].as_str().expect("event ph");
        match ph {
            "B" => {
                let tid = ev["tid"].as_u64().expect("B tid");
                assert!(ev["ts"].as_f64().is_some(), "B without ts: {ev:?}");
                let name = ev["name"].as_str().expect("B name");
                span_names.insert(name.to_string());
                if name == "population" {
                    population_spans += 1;
                    assert!(ev["args"]["asn"].as_u64().is_some(), "{ev:?}");
                    assert!(ev["args"]["period"].as_str().is_some(), "{ev:?}");
                }
                *depth.entry(tid).or_insert(0) += 1;
            }
            "E" => {
                let tid = ev["tid"].as_u64().expect("E tid");
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "unbalanced E on tid {tid}");
            }
            "i" | "M" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    for (tid, d) in &depth {
        assert_eq!(*d, 0, "thread {tid} has {d} unclosed span(s)");
    }
    // One span per pipeline stage, and one per population.
    for required in ["ingest", "series", "aggregate", "detect", "population"] {
        assert!(
            span_names.contains(required),
            "no {required:?} span: {span_names:?}"
        );
    }

    // --- The stats JSON: golden key set ------------------------------
    let stats: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats_path).unwrap()).expect("stats JSON");
    assert_eq!(
        keys(&stats),
        vec![
            "traceroutes_ingested",
            "traceroutes_out_of_period",
            "bins_discarded_sanity",
            "bins_interpolated",
            "welch_segments",
            "populations_analyzed",
            "populations_with_detection",
            "tasks_failed",
            "store",
            "ingest",
            "latency",
            "stage_nanos",
            "populations",
        ],
        "--stats top-level schema changed"
    );
    assert_eq!(
        keys(&stats["latency"]),
        vec!["decode", "series", "analyze", "bucket_count"]
    );
    // The bucket-table size is exposed so quantile consumers can reason
    // about the log-linear resolution (and thus the error bound).
    assert!(stats["latency"]["bucket_count"].as_u64().unwrap() > 0);
    for hist in ["decode", "series", "analyze"] {
        let h = &stats["latency"][hist];
        assert_eq!(
            keys(h),
            vec!["count", "p50_nanos", "p90_nanos", "p99_nanos", "max_nanos"],
            "latency.{hist} schema changed"
        );
        assert!(h["count"].as_u64().unwrap() > 0, "latency.{hist} is empty");
        let (p50, p90, p99, max) = (
            h["p50_nanos"].as_u64().unwrap(),
            h["p90_nanos"].as_u64().unwrap(),
            h["p99_nanos"].as_u64().unwrap(),
            h["max_nanos"].as_u64().unwrap(),
        );
        assert!(p50 > 0 && p50 <= p90 && p90 <= p99, "latency.{hist}: {h:?}");
        assert!(max > 0, "latency.{hist}: {h:?}");
    }
    assert!(stats["ingest"]["queue_max_depth"].as_u64().is_some());
    // Every decoded record contributes one decode-latency sample. Both
    // classify passes report into records_decoded, so the histogram
    // must sample both — it used to sit at exactly half.
    assert_eq!(
        stats["latency"]["decode"]["count"].as_u64().unwrap(),
        stats["ingest"]["records_decoded"].as_u64().unwrap(),
        "decode histogram count != records decoded"
    );
    let pops = stats["populations"].as_array().expect("populations array");
    assert_eq!(
        pops.len() as u64,
        stats["populations_analyzed"].as_u64().unwrap()
    );
    assert_eq!(
        population_spans,
        pops.len() as u64,
        "one span per population"
    );
    for row in pops {
        assert_eq!(
            keys(row),
            vec![
                "asn",
                "period",
                "traceroutes",
                "bins_discarded",
                "probes",
                "class",
                "nanos"
            ],
            "population row schema changed"
        );
        assert!(row["traceroutes"].as_u64().unwrap() > 0, "{row:?}");
        assert!(row["nanos"].as_u64().unwrap() > 0, "{row:?}");
    }

    // --- The populations CSV mirrors the table -----------------------
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("asn,period,traceroutes,bins_discarded,probes,class,nanos")
    );
    assert_eq!(lines.count(), pops.len());

    // --- Determinism: stdout byte-identical across ingest modes with
    //     tracing on ---------------------------------------------------
    for (i, extra) in [
        &["--ingest-serial"][..],
        &["--ingest-threads", "1"][..],
        &["--ingest-threads", "4"][..],
    ]
    .iter()
    .enumerate()
    {
        let rerun_trace = dir.join(format!("trace-{i}.json"));
        let mut args = vec![
            "classify",
            "--traceroutes",
            trs.to_str().unwrap(),
            "--probes",
            probes.to_str().unwrap(),
            "--json",
            "--trace",
            rerun_trace.to_str().unwrap(),
            "--stats",
        ];
        args.extend_from_slice(extra);
        let (stdout, err, ok) = run(&args);
        assert!(ok, "classify {extra:?} failed: {err}");
        assert_eq!(stdout, stdout_base, "output diverges under {extra:?}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn artifact_flags_create_missing_parent_dirs() {
    // `--quarantine`, `--stats-out`, and `--populations-csv` into
    // directories that don't exist yet must create them (matching the
    // experiment runners' CSV writers) instead of failing at the end of
    // an otherwise-complete run.
    let dir = std::env::temp_dir().join(format!("lastmile-obs-mkdir-{}", std::process::id()));
    let dir_s = dir.to_str().unwrap();
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "anchor",
        "--out",
        dir_s,
        "--days",
        "5",
    ]);
    assert!(ok, "simulate failed: {err}");
    let trs = dir.join("traceroutes.jsonl");
    let probes = dir.join("probes.json");
    let quarantine = dir.join("triage/deep/quarantine.jsonl");
    let stats = dir.join("out/stats/run.json");
    let csv = dir.join("out/csv/populations.csv");
    let (_, err, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--quarantine",
        quarantine.to_str().unwrap(),
        "--stats-out",
        stats.to_str().unwrap(),
        "--populations-csv",
        csv.to_str().unwrap(),
    ]);
    assert!(ok, "classify failed: {err}");
    assert!(quarantine.exists(), "quarantine parent dirs not created");
    assert!(stats.exists(), "stats-out parent dirs not created");
    assert!(csv.exists(), "populations-csv parent dirs not created");

    // An uncreatable parent (a path component is a regular file) fails
    // with a located error naming the flag.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "not a directory").unwrap();
    let bad = dir.join("blocker/sub/q.jsonl");
    let (_, err, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--quarantine",
        bad.to_str().unwrap(),
    ]);
    assert!(!ok, "classify should fail on an uncreatable parent");
    assert!(
        err.contains("cannot create directory") && err.contains("--quarantine"),
        "error not located: {err}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hygiene_accepts_stats_flags() {
    let dir = std::env::temp_dir().join(format!("lastmile-obs-hyg-{}", std::process::id()));
    let dir_s = dir.to_str().unwrap();
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "anchor",
        "--out",
        dir_s,
        "--days",
        "5",
    ]);
    assert!(ok, "simulate failed: {err}");
    let trs = dir.join("traceroutes.jsonl");
    let probes = dir.join("probes.json");
    let stats_path = dir.join("hygiene-stats.json");
    let (stdout, err, ok) = run(&[
        "hygiene",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--stats-out",
        stats_path.to_str().unwrap(),
    ]);
    assert!(ok, "hygiene --stats-out failed: {err}");
    assert!(stdout.contains("persistent congestion"), "{stdout}");
    let stats: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats_path).unwrap()).expect("stats JSON");
    assert!(stats["traceroutes_ingested"].as_u64().unwrap() > 0);
    assert!(stats["populations_analyzed"].as_u64().unwrap() > 0);
    assert!(stats["latency"]["series"]["count"].as_u64().unwrap() > 0);
    assert!(stats["stage_nanos"]["wall"].as_u64().unwrap() > 0);

    std::fs::remove_dir_all(&dir).ok();
}
