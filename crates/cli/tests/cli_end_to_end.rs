//! End-to-end test of the `lastmile` binary: simulate a scenario to disk,
//! then classify the exported Atlas-format data and check the verdict
//! matches the planted ground truth.

use std::path::PathBuf;
use std::process::Command;

fn lastmile_bin() -> PathBuf {
    // target/debug/lastmile next to the test binary's directory.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("lastmile{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(lastmile_bin())
        .args(args)
        .output()
        .expect("spawn lastmile");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn simulate_then_classify_round_trip() {
    let dir = std::env::temp_dir().join(format!("lastmile-e2e-{}", std::process::id()));
    let dir_s = dir.to_str().unwrap();

    // Export 5 days of the anchor scenario (ISP_D: planted Severe).
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "anchor",
        "--out",
        dir_s,
        "--days",
        "5",
    ]);
    assert!(ok, "simulate failed: {err}");
    assert!(dir.join("traceroutes.jsonl").exists());
    assert!(dir.join("probes.json").exists());

    // Classify with probe metadata: ISP_D must come back Severe.
    let trs = dir.join("traceroutes.jsonl");
    let probes = dir.join("probes.json");
    let (stdout, err, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "classify failed: {err}");
    let docs: serde_json::Value = serde_json::from_str(&stdout).expect("json output");
    let row = &docs.as_array().expect("array")[0];
    assert_eq!(row["asn"], 64520);
    assert_eq!(row["class"], "Severe");
    assert_eq!(row["probes"], 6);
    assert!(row["daily_amplitude_ms"].as_f64().unwrap() > 3.0);

    // Hygiene output flags the congestion.
    let (stdout, _, ok) = run(&[
        "hygiene",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stdout.contains("persistent congestion : YES"), "{stdout}");
    assert!(stdout.contains("avoid hours"), "{stdout}");

    // --stats emits the RunMetrics JSON on stderr, after the [input] line.
    let (_, err, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--stats",
    ]);
    assert!(ok, "classify --stats failed: {err}");
    let json_start = err.find('{').expect("stats JSON on stderr");
    let stats: serde_json::Value = serde_json::from_str(&err[json_start..]).expect("stats JSON");
    assert!(
        stats["traceroutes_ingested"].as_u64().unwrap() > 0,
        "{stats}"
    );
    assert!(stats["populations_analyzed"].as_u64().unwrap() > 0);
    assert!(stats["welch_segments"].as_u64().unwrap() > 0);
    assert!(stats["stage_nanos"]["wall"].as_u64().unwrap() > 0);
    assert_eq!(stats["tasks_failed"], 0);

    // --stats-out writes the same document to a file instead.
    let stats_path = dir.join("stats.json");
    let (_, _, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--stats-out",
        stats_path.to_str().unwrap(),
    ]);
    assert!(ok);
    let from_file: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats_path).unwrap()).expect("stats file");
    assert_eq!(
        from_file["traceroutes_ingested"],
        stats["traceroutes_ingested"]
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_then_throughput_round_trip() {
    let dir = std::env::temp_dir().join(format!("lastmile-e2e-thr-{}", std::process::id()));
    let dir_s = dir.to_str().unwrap();
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "tokyo",
        "--out",
        dir_s,
        "--days",
        "1",
    ]);
    assert!(ok, "simulate failed: {err}");

    let cdn = dir.join("cdn_access.tsv");
    let bgp = dir.join("bgp.csv");
    let (stdout, err, ok) = run(&[
        "throughput",
        "--cdn",
        cdn.to_str().unwrap(),
        "--bgp",
        bgp.to_str().unwrap(),
    ]);
    assert!(ok, "throughput failed: {err}");
    // All three broadband ASNs appear; the legacy ISPs dip below half of
    // the clean one's floor.
    for asn in ["AS64511", "AS64512", "AS64513"] {
        assert!(stdout.contains(asn), "{stdout}");
    }
    // The mobile view switches to the mobile ASNs.
    let (stdout, _, ok) = run(&[
        "throughput",
        "--cdn",
        cdn.to_str().unwrap(),
        "--bgp",
        bgp.to_str().unwrap(),
        "--view",
        "mobile",
    ]);
    assert!(ok);
    assert!(stdout.contains("AS64611"), "{stdout}");
    assert!(!stdout.contains("AS64511"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bgp_classify_cache_is_isolated_and_round_trips() {
    let dir = std::env::temp_dir().join(format!("lastmile-e2e-bgp-{}", std::process::id()));
    let cache_dir = dir.join("cache");
    let dir_s = dir.to_str().unwrap();

    // Simulate with --cache-dir: primes a --probes/ASN-0 snapshot and
    // prints the aligned window to classify with.
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "anchor",
        "--out",
        dir_s,
        "--days",
        "5",
        "--cache-dir",
        cache_dir.to_str().unwrap(),
    ]);
    assert!(ok, "simulate failed: {err}");
    let grab = |marker: &str| -> String {
        let at = err.find(marker).expect(marker) + marker.len();
        err[at..].chars().take_while(char::is_ascii_digit).collect()
    };
    let start = grab("--start ");
    let end = grab("--end ");

    let trs = dir.join("traceroutes.jsonl");
    let trs = trs.to_str().unwrap();
    let bgp = dir.join("bgp.csv");
    let bgp = bgp.to_str().unwrap();
    let bgp_args = [
        "classify",
        "--traceroutes",
        trs,
        "--bgp",
        bgp,
        "--start",
        &start,
        "--end",
        &end,
        "--json",
    ];

    // Baseline: --bgp classification without any cache.
    let (baseline, err, ok) = run(&bgp_args);
    assert!(ok, "uncached --bgp classify failed: {err}");

    // Cold cached --bgp run: the primed snapshot belongs to the
    // --probes/ASN-0 source id, so it must be rejected (not served),
    // and the output must match the cache-free baseline.
    let cached_args: Vec<&str> = bgp_args
        .iter()
        .copied()
        .chain(["--cache-dir", cache_dir.to_str().unwrap()])
        .collect();
    let (cold, err, ok) = run(&cached_args);
    assert!(ok, "cold cached --bgp classify failed: {err}");
    assert!(
        err.contains("[cache] ignoring"),
        "primed snapshot not rejected under --bgp: {err}"
    );
    assert_eq!(cold, baseline, "cold cached --bgp output diverges");

    // Warm --bgp run: serves the snapshot the cold run wrote, still
    // byte-identical.
    let (warm, err, ok) = run(&cached_args);
    assert!(ok, "warm cached --bgp classify failed: {err}");
    assert!(err.contains("[cache] loaded"), "no snapshot served: {err}");
    assert_eq!(warm, baseline, "warm cached --bgp output diverges");

    // And the --bgp snapshot must not leak into --probes classification:
    // its source id differs, so the probes run rejects and recomputes.
    let probes = dir.join("probes.json");
    let probes = probes.to_str().unwrap();
    let probes_args = [
        "classify",
        "--traceroutes",
        trs,
        "--probes",
        probes,
        "--start",
        &start,
        "--end",
        &end,
        "--json",
    ];
    let (probes_baseline, _, ok) = run(&probes_args);
    assert!(ok);
    let probes_cached: Vec<&str> = probes_args
        .iter()
        .copied()
        .chain(["--cache-dir", cache_dir.to_str().unwrap()])
        .collect();
    let (probes_out, err, ok) = run(&probes_cached);
    assert!(ok, "cached --probes classify failed: {err}");
    assert!(
        err.contains("[cache] ignoring"),
        "--bgp snapshot not rejected under --probes: {err}"
    );
    assert_eq!(probes_out, probes_baseline);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bgp_cache_excludes_multi_asn_probes() {
    // Hand-crafted input reproducing the per-traceroute-attribution
    // hazard: probe 1's edge hop alternates between two ASNs (its
    // traceroutes legitimately split across AS pipelines), probe 2 is
    // single-homed. The cache must memoize only probe 2; caching probe
    // 1's per-pipeline partial series under one key would poison the
    // snapshot and make warm runs diverge.
    let dir = std::env::temp_dir().join(format!("lastmile-e2e-multiasn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bgp = dir.join("bgp.csv");
    std::fs::write(&bgp, "20.0.0.0/16,64500\n20.1.0.0/16,64501\n").unwrap();

    let mut lines = String::new();
    let mut tr_line = |prb: u32, ts: i64, edge: &str, rtt: f64| {
        lines.push_str(&format!(
            r#"{{"fw":5020,"af":4,"dst_addr":"20.99.0.1","src_addr":"192.168.1.10","from":"{edge}","msm_id":5001,"prb_id":{prb},"timestamp":{ts},"proto":"ICMP","type":"traceroute","result":[{{"hop":1,"result":[{{"from":"192.168.1.1","rtt":1.0}}]}},{{"hop":2,"result":[{{"from":"{edge}","rtt":{rtt}}}]}}]}}"#,
        ));
        lines.push('\n');
    };
    for bin in 0..8i64 {
        for k in 0..3i64 {
            let ts = bin * 1800 + k * 600;
            let rtt = 10.0 + bin as f64;
            let edge1 = if k % 2 == 0 { "20.0.0.1" } else { "20.1.0.1" };
            tr_line(1, ts, edge1, rtt);
            tr_line(2, ts, "20.0.0.9", rtt + 0.5);
        }
    }
    let trs = dir.join("traceroutes.jsonl");
    std::fs::write(&trs, lines).unwrap();

    let cache_dir = dir.join("cache");
    let base_args = [
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--bgp",
        bgp.to_str().unwrap(),
        "--start",
        "0",
        "--end",
        "86400",
        "--min-probes",
        "1",
        "--json",
    ];
    let (baseline, err, ok) = run(&base_args);
    assert!(ok, "uncached classify failed: {err}");

    let cached_args: Vec<&str> = base_args
        .iter()
        .copied()
        .chain(["--cache-dir", cache_dir.to_str().unwrap()])
        .collect();
    let (cold, err, ok) = run(&cached_args);
    assert!(ok, "cold cached classify failed: {err}");
    assert_eq!(cold, baseline, "cold cached output diverges");
    // Only the single-ASN probe may be memoized.
    assert!(
        err.contains("(1 series"),
        "expected exactly probe 2 in the snapshot: {err}"
    );

    let (warm, err, ok) = run(&cached_args);
    assert!(ok, "warm cached classify failed: {err}");
    assert!(err.contains("[cache] loaded"), "no snapshot served: {err}");
    assert_eq!(warm, baseline, "warm cached output diverges");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let (_, _, ok) = run(&["classify"]); // missing --traceroutes
    assert!(!ok);
    let (_, _, ok) = run(&["frobnicate"]);
    assert!(!ok);
    let (_, _, ok) = run(&["simulate", "--scenario", "nope", "--out", "/tmp"]);
    assert!(!ok);
}
