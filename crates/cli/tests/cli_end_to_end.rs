//! End-to-end test of the `lastmile` binary: simulate a scenario to disk,
//! then classify the exported Atlas-format data and check the verdict
//! matches the planted ground truth.

use std::path::PathBuf;
use std::process::Command;

fn lastmile_bin() -> PathBuf {
    // target/debug/lastmile next to the test binary's directory.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("lastmile{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(lastmile_bin())
        .args(args)
        .output()
        .expect("spawn lastmile");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn simulate_then_classify_round_trip() {
    let dir = std::env::temp_dir().join(format!("lastmile-e2e-{}", std::process::id()));
    let dir_s = dir.to_str().unwrap();

    // Export 5 days of the anchor scenario (ISP_D: planted Severe).
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "anchor",
        "--out",
        dir_s,
        "--days",
        "5",
    ]);
    assert!(ok, "simulate failed: {err}");
    assert!(dir.join("traceroutes.jsonl").exists());
    assert!(dir.join("probes.json").exists());

    // Classify with probe metadata: ISP_D must come back Severe.
    let trs = dir.join("traceroutes.jsonl");
    let probes = dir.join("probes.json");
    let (stdout, err, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "classify failed: {err}");
    let docs: serde_json::Value = serde_json::from_str(&stdout).expect("json output");
    let row = &docs.as_array().expect("array")[0];
    assert_eq!(row["asn"], 64520);
    assert_eq!(row["class"], "Severe");
    assert_eq!(row["probes"], 6);
    assert!(row["daily_amplitude_ms"].as_f64().unwrap() > 3.0);

    // Hygiene output flags the congestion.
    let (stdout, _, ok) = run(&[
        "hygiene",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stdout.contains("persistent congestion : YES"), "{stdout}");
    assert!(stdout.contains("avoid hours"), "{stdout}");

    // --stats emits the RunMetrics JSON on stderr, after the [input] line.
    let (_, err, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--stats",
    ]);
    assert!(ok, "classify --stats failed: {err}");
    let json_start = err.find('{').expect("stats JSON on stderr");
    let stats: serde_json::Value = serde_json::from_str(&err[json_start..]).expect("stats JSON");
    assert!(
        stats["traceroutes_ingested"].as_u64().unwrap() > 0,
        "{stats}"
    );
    assert!(stats["populations_analyzed"].as_u64().unwrap() > 0);
    assert!(stats["welch_segments"].as_u64().unwrap() > 0);
    assert!(stats["stage_nanos"]["wall"].as_u64().unwrap() > 0);
    assert_eq!(stats["tasks_failed"], 0);

    // --stats-out writes the same document to a file instead.
    let stats_path = dir.join("stats.json");
    let (_, _, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--stats-out",
        stats_path.to_str().unwrap(),
    ]);
    assert!(ok);
    let from_file: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats_path).unwrap()).expect("stats file");
    assert_eq!(
        from_file["traceroutes_ingested"],
        stats["traceroutes_ingested"]
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_then_throughput_round_trip() {
    let dir = std::env::temp_dir().join(format!("lastmile-e2e-thr-{}", std::process::id()));
    let dir_s = dir.to_str().unwrap();
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "tokyo",
        "--out",
        dir_s,
        "--days",
        "1",
    ]);
    assert!(ok, "simulate failed: {err}");

    let cdn = dir.join("cdn_access.tsv");
    let bgp = dir.join("bgp.csv");
    let (stdout, err, ok) = run(&[
        "throughput",
        "--cdn",
        cdn.to_str().unwrap(),
        "--bgp",
        bgp.to_str().unwrap(),
    ]);
    assert!(ok, "throughput failed: {err}");
    // All three broadband ASNs appear; the legacy ISPs dip below half of
    // the clean one's floor.
    for asn in ["AS64511", "AS64512", "AS64513"] {
        assert!(stdout.contains(asn), "{stdout}");
    }
    // The mobile view switches to the mobile ASNs.
    let (stdout, _, ok) = run(&[
        "throughput",
        "--cdn",
        cdn.to_str().unwrap(),
        "--bgp",
        bgp.to_str().unwrap(),
        "--view",
        "mobile",
    ]);
    assert!(ok);
    assert!(stdout.contains("AS64611"), "{stdout}");
    assert!(!stdout.contains("AS64511"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let (_, _, ok) = run(&["classify"]); // missing --traceroutes
    assert!(!ok);
    let (_, _, ok) = run(&["frobnicate"]);
    assert!(!ok);
    let (_, _, ok) = run(&["simulate", "--scenario", "nope", "--out", "/tmp"]);
    assert!(!ok);
}
