//! End-to-end tests for the `lastmile serve` daemon: spawn the real
//! binary on an ephemeral port (`--addr 127.0.0.1:0` + `--ready-file`),
//! then talk plain HTTP/1.1 over `std::net::TcpStream`.
//!
//! Pinned behaviors, matching DESIGN.md's serving contract:
//!
//! * `/v1/classify` bytes are identical to batch `classify --json`
//!   stdout — even under concurrent requests;
//! * the populations CSV matches `--populations-csv` output modulo the
//!   timing column;
//! * a saturated accept queue answers `503` with `Retry-After` while
//!   queued requests still complete (and no worker panics);
//! * SIGTERM drains in-flight requests, re-persists the series-cache
//!   snapshot, and exits 0.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn lastmile_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("lastmile{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(lastmile_bin())
        .args(args)
        .output()
        .expect("spawn lastmile");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Simulate the anchor fixture into `dir`, returning the traceroute and
/// probe file paths.
fn fixture(dir: &Path) -> (PathBuf, PathBuf) {
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "anchor",
        "--out",
        dir.to_str().unwrap(),
        "--days",
        "5",
    ]);
    assert!(ok, "simulate failed: {err}");
    (dir.join("traceroutes.jsonl"), dir.join("probes.json"))
}

/// Spawn `lastmile serve` with piped stderr and wait for the ready file
/// to appear, returning the child and the bound address.
fn spawn_serve(dir: &Path, extra: &[&str]) -> (Child, String) {
    let (trs, probes) = fixture(dir);
    let ready = dir.join("ready");
    let mut args = vec![
        "serve".to_string(),
        "--traceroutes".into(),
        trs.to_str().unwrap().into(),
        "--probes".into(),
        probes.to_str().unwrap().into(),
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--ready-file".into(),
        ready.to_str().unwrap().into(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let mut child = Command::new(lastmile_bin())
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lastmile serve");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(contents) = std::fs::read_to_string(&ready) {
            if contents.ends_with('\n') {
                break contents.trim().to_string();
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            let out = child.wait_with_output().expect("collect output");
            panic!(
                "serve exited before ready ({status}): {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        assert!(Instant::now() < deadline, "serve never became ready");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

/// SIGTERM the daemon and collect (stderr, success).
fn terminate(child: Child) -> (String, bool) {
    let ok = Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill failed");
    let out = child.wait_with_output().expect("collect serve output");
    (
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// One blocking HTTP/1.1 GET; the server always closes the connection,
/// so the body runs to EOF.
fn http_get(addr: &str, target: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: lastmile\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let pos = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no head terminator in {:?}", String::from_utf8_lossy(&raw)));
    let head = String::from_utf8_lossy(&raw[..pos]).into_owned();
    let body = raw[pos + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    let headers = lines
        .map(|l| {
            let (k, v) = l
                .split_once(':')
                .unwrap_or_else(|| panic!("bad header {l:?}"));
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    (status, headers, body)
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Drop a CSV's trailing (timing) column, which legitimately differs
/// between two runs over the same corpus.
fn strip_last_column(csv: &str) -> String {
    csv.lines()
        .map(|line| line.rsplit_once(',').expect("csv has columns").0)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn concurrent_responses_match_batch_output() {
    let dir = std::env::temp_dir().join(format!("lastmile-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (child, addr) = spawn_serve(&dir, &[]);

    // The batch outputs the daemon must reproduce byte-for-byte.
    let trs = dir.join("traceroutes.jsonl");
    let probes = dir.join("probes.json");
    let csv_path = dir.join("populations.csv");
    let (batch_json, err, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--json",
        "--populations-csv",
        csv_path.to_str().unwrap(),
    ]);
    assert!(ok, "batch classify failed: {err}");

    // Eight concurrent full-classification requests, all byte-identical
    // to the batch stdout.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || http_get(&addr, "/v1/classify"))
            })
            .collect();
        for handle in handles {
            let (status, headers, body) = handle.join().expect("client thread");
            assert_eq!(status, 200);
            assert_eq!(header(&headers, "content-type"), Some("application/json"));
            assert_eq!(
                header(&headers, "content-length"),
                Some(body.len().to_string().as_str())
            );
            assert_eq!(header(&headers, "connection"), Some("close"));
            assert_eq!(body, batch_json.as_bytes(), "daemon diverged from batch");
        }
    });

    // A single ASN's document equals its element of the batch array.
    let batch: serde_json::Value = serde_json::from_str(&batch_json).expect("batch JSON");
    let first = &batch.as_array().expect("array")[0];
    let asn = first["asn"].as_u64().expect("asn");
    let (status, _, body) = http_get(&addr, &format!("/v1/classify/{asn}"));
    assert_eq!(status, 200);
    let doc: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("classify doc");
    assert_eq!(&doc, first);
    let (status, _, _) = http_get(&addr, "/v1/classify/999999");
    assert_eq!(status, 404);

    // The populations CSV matches --populations-csv modulo timings.
    let (status, headers, body) = http_get(&addr, "/v1/populations?format=csv");
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/csv; charset=utf-8")
    );
    let batch_csv = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(
        strip_last_column(std::str::from_utf8(&body).unwrap()),
        strip_last_column(&batch_csv),
        "daemon population table diverged from batch CSV"
    );

    // Series for the same ASN: well-formed, bounded by the query window.
    let (status, _, body) = http_get(&addr, &format!("/v1/series/{asn}"));
    assert_eq!(status, 200);
    let series: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("series doc");
    let points = series["points"].as_array().expect("points");
    assert!(!points.is_empty());
    let t0 = points[0]["t"].as_i64().expect("t");
    let (status, _, body) = http_get(&addr, &format!("/v1/series/{asn}?from={}", t0 + 1));
    assert_eq!(status, 200);
    let clipped: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    let clipped_points = clipped["points"].as_array().unwrap();
    assert_eq!(
        clipped_points.len(),
        points.len() - 1,
        "from= is inclusive-exclusive"
    );
    let (status, _, _) = http_get(&addr, &format!("/v1/series/{asn}?from=banana"));
    assert_eq!(status, 400);

    // Liveness and metrics.
    let (status, _, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, b"{\"status\":\"ok\"}\n");
    let (status, _, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    let metrics: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("metrics doc");
    assert!(metrics["run"]["traceroutes_ingested"].as_u64().unwrap() > 0);
    let serve = &metrics["serve"];
    assert!(serve["requests"].as_u64().unwrap() >= 8);
    assert_eq!(serve["worker_panics"].as_u64(), Some(0));
    assert_eq!(serve["rejected_busy"].as_u64(), Some(0));
    assert!(serve["latency"]["classify"]["count"].as_u64().unwrap() >= 8);

    let (stderr, ok) = terminate(child);
    assert!(ok, "serve did not exit cleanly: {stderr}");
    assert!(stderr.contains("[serve] shutdown: drained"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn saturated_queue_answers_503_with_retry_after() {
    let dir = std::env::temp_dir().join(format!("lastmile-serve-busy-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // One worker, one queue slot, and a handler slow enough that two
    // staggered requests hold both; the third must bounce.
    let (child, addr) = spawn_serve(
        &dir,
        &[
            "--serve-workers",
            "1",
            "--serve-queue",
            "1",
            "--serve-delay-ms",
            "1500",
            "--retry-after",
            "3",
        ],
    );

    let slow = |addr: String| {
        std::thread::spawn(move || {
            let (status, _, body) = http_get(&addr, "/healthz");
            (status, body)
        })
    };
    let a = slow(addr.clone()); // → in flight (worker sleeps 1.5s)
    std::thread::sleep(Duration::from_millis(400));
    let b = slow(addr.clone()); // → parked in the accept queue
    std::thread::sleep(Duration::from_millis(400));

    // The pool is saturated: the acceptor itself must bounce us, with
    // the configured Retry-After and a JSON error body.
    let (status, headers, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 503, "expected a bounce while saturated");
    assert_eq!(header(&headers, "retry-after"), Some("3"));
    let err: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("503 body is JSON");
    assert_eq!(err["error"].as_str(), Some("accept queue full"));
    assert_eq!(err["retry_after_secs"].as_u64(), Some(3));

    // Both the in-flight and the queued request still complete.
    for handle in [a, b] {
        let (status, body) = handle.join().expect("slow client");
        assert_eq!(status, 200, "queued request must not be dropped");
        assert_eq!(body, b"{\"status\":\"ok\"}\n");
    }

    // The daemon survived: metrics report the bounce and zero panics.
    let (status, _, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    let metrics: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("metrics doc");
    let serve = &metrics["serve"];
    assert!(serve["rejected_busy"].as_u64().unwrap() >= 1, "{serve}");
    assert_eq!(serve["worker_panics"].as_u64(), Some(0));
    assert!(serve["queue_max_depth"].as_u64().unwrap() >= 1, "{serve}");

    let (stderr, ok) = terminate(child);
    assert!(ok, "serve did not exit cleanly: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_in_flight_and_repersists_snapshot() {
    let dir = std::env::temp_dir().join(format!("lastmile-serve-term-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_dir = dir.join("cache");
    let (child, addr) = spawn_serve(
        &dir,
        &[
            "--serve-delay-ms",
            "1500",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ],
    );
    // Startup analysis persisted the first snapshot.
    let snapshot = cache_dir.join("series.lmss");
    assert!(snapshot.exists(), "startup snapshot missing");

    // Park a request in flight, then SIGTERM mid-handling.
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || http_get(&addr, "/v1/classify"))
    };
    std::thread::sleep(Duration::from_millis(400));
    let (stderr, ok) = terminate(child);

    // The in-flight request completed with a full, valid body.
    let (status, headers, body) = in_flight.join().expect("in-flight client");
    assert_eq!(status, 200, "in-flight request was dropped by shutdown");
    assert_eq!(
        header(&headers, "content-length"),
        Some(body.len().to_string().as_str())
    );
    serde_json::from_str::<serde_json::Value>(std::str::from_utf8(&body).unwrap())
        .expect("complete JSON body");

    assert!(ok, "serve did not exit cleanly: {stderr}");
    assert!(stderr.contains("[serve] shutdown: drained"), "{stderr}");
    // Snapshot persisted twice: once at startup, once at shutdown.
    assert_eq!(
        stderr.matches("[cache] saved").count(),
        2,
        "expected startup + shutdown persists: {stderr}"
    );
    assert!(snapshot.exists(), "shutdown snapshot missing");
    std::fs::remove_dir_all(&dir).ok();
}
