//! End-to-end tests for the `lastmile serve` daemon: spawn the real
//! binary on an ephemeral port (`--addr 127.0.0.1:0` + `--ready-file`),
//! then talk plain HTTP/1.1 over `std::net::TcpStream`.
//!
//! Pinned behaviors, matching DESIGN.md's serving contract:
//!
//! * `/v1/classify` bytes are identical to batch `classify --json`
//!   stdout — even under concurrent requests;
//! * the populations CSV matches `--populations-csv` output modulo the
//!   timing column;
//! * a saturated accept queue answers `503` with `Retry-After` for
//!   classify traffic while `/healthz` keeps answering via the fast
//!   lane, and queued requests still complete (no worker panics);
//! * live intake (file appends + `POST /v1/traceroutes`) converges to
//!   byte-identity with a cold `classify --json` over the union corpus,
//!   and concurrent readers see exactly one epoch per response;
//! * SIGTERM drains in-flight requests AND any pending re-analysis
//!   (epoch swap before snapshot re-persist), then exits 0.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn lastmile_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push(format!("lastmile{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(lastmile_bin())
        .args(args)
        .output()
        .expect("spawn lastmile");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Simulate the anchor fixture into `dir`, returning the traceroute and
/// probe file paths.
fn fixture(dir: &Path) -> (PathBuf, PathBuf) {
    let (_, err, ok) = run(&[
        "simulate",
        "--scenario",
        "anchor",
        "--out",
        dir.to_str().unwrap(),
        "--days",
        "5",
    ]);
    assert!(ok, "simulate failed: {err}");
    (dir.join("traceroutes.jsonl"), dir.join("probes.json"))
}

/// Spawn `lastmile serve` with piped stderr and wait for the ready file
/// to appear, returning the child and the bound address.
fn spawn_serve(dir: &Path, extra: &[&str]) -> (Child, String) {
    let (trs, probes) = fixture(dir);
    let ready = dir.join("ready");
    let mut args = vec![
        "serve".to_string(),
        "--traceroutes".into(),
        trs.to_str().unwrap().into(),
        "--probes".into(),
        probes.to_str().unwrap().into(),
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--ready-file".into(),
        ready.to_str().unwrap().into(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let mut child = Command::new(lastmile_bin())
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lastmile serve");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(contents) = std::fs::read_to_string(&ready) {
            if contents.ends_with('\n') {
                break contents.trim().to_string();
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            let out = child.wait_with_output().expect("collect output");
            panic!(
                "serve exited before ready ({status}): {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        assert!(Instant::now() < deadline, "serve never became ready");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

/// SIGTERM the daemon and collect (stderr, success).
fn terminate(child: Child) -> (String, bool) {
    let ok = Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill failed");
    let out = child.wait_with_output().expect("collect serve output");
    (
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// One blocking HTTP/1.1 GET; the server always closes the connection,
/// so the body runs to EOF.
fn http_get(addr: &str, target: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: lastmile\r\n\r\n").as_bytes())
        .unwrap();
    read_response(stream)
}

/// One blocking HTTP/1.1 POST with a `Content-Length` body.
fn http_post(addr: &str, target: &str, body: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST {target} HTTP/1.1\r\nHost: lastmile\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    stream.write_all(body).unwrap();
    read_response(stream)
}

fn read_response(mut stream: TcpStream) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let pos = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no head terminator in {:?}", String::from_utf8_lossy(&raw)));
    let head = String::from_utf8_lossy(&raw[..pos]).into_owned();
    let body = raw[pos + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    let headers = lines
        .map(|l| {
            let (k, v) = l
                .split_once(':')
                .unwrap_or_else(|| panic!("bad header {l:?}"));
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    (status, headers, body)
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Drop a CSV's trailing (timing) column, which legitimately differs
/// between two runs over the same corpus.
fn strip_last_column(csv: &str) -> String {
    csv.lines()
        .map(|line| line.rsplit_once(',').expect("csv has columns").0)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn concurrent_responses_match_batch_output() {
    let dir = std::env::temp_dir().join(format!("lastmile-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (child, addr) = spawn_serve(&dir, &[]);

    // The batch outputs the daemon must reproduce byte-for-byte.
    let trs = dir.join("traceroutes.jsonl");
    let probes = dir.join("probes.json");
    let csv_path = dir.join("populations.csv");
    let (batch_json, err, ok) = run(&[
        "classify",
        "--traceroutes",
        trs.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--json",
        "--populations-csv",
        csv_path.to_str().unwrap(),
    ]);
    assert!(ok, "batch classify failed: {err}");

    // Eight concurrent full-classification requests, all byte-identical
    // to the batch stdout.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || http_get(&addr, "/v1/classify"))
            })
            .collect();
        for handle in handles {
            let (status, headers, body) = handle.join().expect("client thread");
            assert_eq!(status, 200);
            assert_eq!(header(&headers, "content-type"), Some("application/json"));
            assert_eq!(
                header(&headers, "content-length"),
                Some(body.len().to_string().as_str())
            );
            assert_eq!(header(&headers, "connection"), Some("close"));
            assert_eq!(body, batch_json.as_bytes(), "daemon diverged from batch");
        }
    });

    // A single ASN's document equals its element of the batch array.
    let batch: serde_json::Value = serde_json::from_str(&batch_json).expect("batch JSON");
    let first = &batch.as_array().expect("array")[0];
    let asn = first["asn"].as_u64().expect("asn");
    let (status, _, body) = http_get(&addr, &format!("/v1/classify/{asn}"));
    assert_eq!(status, 200);
    let doc: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("classify doc");
    assert_eq!(&doc, first);
    let (status, _, _) = http_get(&addr, "/v1/classify/999999");
    assert_eq!(status, 404);

    // The populations CSV matches --populations-csv modulo timings.
    let (status, headers, body) = http_get(&addr, "/v1/populations?format=csv");
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/csv; charset=utf-8")
    );
    let batch_csv = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(
        strip_last_column(std::str::from_utf8(&body).unwrap()),
        strip_last_column(&batch_csv),
        "daemon population table diverged from batch CSV"
    );

    // Series for the same ASN: well-formed, bounded by the query window.
    let (status, _, body) = http_get(&addr, &format!("/v1/series/{asn}"));
    assert_eq!(status, 200);
    let series: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("series doc");
    let points = series["points"].as_array().expect("points");
    assert!(!points.is_empty());
    let t0 = points[0]["t"].as_i64().expect("t");
    let (status, _, body) = http_get(&addr, &format!("/v1/series/{asn}?from={}", t0 + 1));
    assert_eq!(status, 200);
    let clipped: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    let clipped_points = clipped["points"].as_array().unwrap();
    assert_eq!(
        clipped_points.len(),
        points.len() - 1,
        "from= is inclusive-exclusive"
    );
    let (status, _, _) = http_get(&addr, &format!("/v1/series/{asn}?from=banana"));
    assert_eq!(status, 400);

    // Without --live-spool, POST intake is explicitly disabled (409,
    // not 404: the endpoint exists, the daemon just has nowhere durable
    // to put records) and other methods are rejected.
    let (status, _, body) = http_post(&addr, "/v1/traceroutes", b"{}\n");
    assert_eq!(status, 409, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("live ingest disabled"));
    let (status, _, _) = http_get(&addr, "/v1/traceroutes");
    assert_eq!(status, 405);

    // Liveness and metrics.
    let (status, _, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, b"{\"status\":\"ok\"}\n");
    let (status, _, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    let metrics: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("metrics doc");
    assert!(metrics["run"]["traceroutes_ingested"].as_u64().unwrap() > 0);
    let serve = &metrics["serve"];
    assert!(serve["requests"].as_u64().unwrap() >= 8);
    assert_eq!(serve["worker_panics"].as_u64(), Some(0));
    assert_eq!(serve["rejected_busy"].as_u64(), Some(0));
    assert!(serve["latency"]["classify"]["count"].as_u64().unwrap() >= 8);

    let (stderr, ok) = terminate(child);
    assert!(ok, "serve did not exit cleanly: {stderr}");
    assert!(stderr.contains("[serve] shutdown: drained"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn saturated_queue_answers_503_with_retry_after() {
    let dir = std::env::temp_dir().join(format!("lastmile-serve-busy-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // One worker, one queue slot, and a handler slow enough that two
    // staggered requests hold both; the third must bounce — but health
    // probes must keep answering via the fast lane the whole time.
    let (child, addr) = spawn_serve(
        &dir,
        &[
            "--serve-workers",
            "1",
            "--serve-queue",
            "1",
            "--serve-delay-ms",
            "1500",
            "--retry-after",
            "3",
        ],
    );

    let slow = |addr: String| {
        std::thread::spawn(move || {
            let (status, _, body) = http_get(&addr, "/v1/classify");
            (status, body)
        })
    };
    let a = slow(addr.clone()); // → in flight (worker sleeps 1.5s)
    std::thread::sleep(Duration::from_millis(400));
    let b = slow(addr.clone()); // → parked in the accept queue
    std::thread::sleep(Duration::from_millis(400));

    // The pool is saturated. Health probes bypass the full queue — they
    // must answer 200, promptly, while both worker slots are held.
    for _ in 0..3 {
        let probe_started = Instant::now();
        let (status, _, body) = http_get(&addr, "/healthz");
        assert_eq!(status, 200, "health probe bounced while saturated");
        assert_eq!(body, b"{\"status\":\"ok\"}\n");
        assert!(
            probe_started.elapsed() < Duration::from_millis(900),
            "health probe stuck behind the worker pool: {:?}",
            probe_started.elapsed()
        );
    }

    // Classify traffic, by contrast, must bounce: the fast lane serves
    // only health/metrics, so the acceptor 503s with the configured
    // Retry-After and a JSON error body.
    let (status, headers, body) = http_get(&addr, "/v1/classify");
    assert_eq!(status, 503, "expected a bounce while saturated");
    assert_eq!(header(&headers, "retry-after"), Some("3"));
    let err: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("503 body is JSON");
    assert_eq!(err["error"].as_str(), Some("accept queue full"));
    assert_eq!(err["retry_after_secs"].as_u64(), Some(3));

    // Both the in-flight and the queued request still complete.
    for handle in [a, b] {
        let (status, body) = handle.join().expect("slow client");
        assert_eq!(status, 200, "queued request must not be dropped");
        assert!(!body.is_empty());
    }

    // The daemon survived: metrics report the bounce, the fast-lane
    // hits, and zero panics. (/metrics itself also rides the fast lane
    // when saturated; here the pool has drained.)
    let (status, _, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    let metrics: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("metrics doc");
    let serve = &metrics["serve"];
    assert!(serve["rejected_busy"].as_u64().unwrap() >= 1, "{serve}");
    assert!(serve["fastlane_hits"].as_u64().unwrap() >= 3, "{serve}");
    assert_eq!(serve["worker_panics"].as_u64(), Some(0));
    assert!(serve["queue_max_depth"].as_u64().unwrap() >= 1, "{serve}");
    assert!(serve["latency"]["healthz"]["count"].as_u64().unwrap() >= 3);

    let (stderr, ok) = terminate(child);
    assert!(ok, "serve did not exit cleanly: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Append a newline-terminated chunk to a file (the collector-style
/// corpus append the `--watch` intake path is built for).
fn append_file(path: &Path, bytes: &[u8]) {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .expect("open corpus for append");
    f.write_all(bytes).unwrap();
}

/// Poll `/metrics` until the `live` gauges say every ingested record has
/// been analyzed (`ingest_lag == 0` after at least one re-analysis and
/// `expect_ingested` intake records), or panic after `deadline`.
fn await_live_convergence(addr: &str, expect_ingested: u64, deadline: Duration) {
    let started = Instant::now();
    loop {
        let (status, _, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        let doc: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("metrics doc");
        let live = &doc["live"];
        if live["records_ingested"].as_u64() == Some(expect_ingested)
            && live["ingest_lag"].as_u64() == Some(0)
            && live["reanalyses"].as_u64().unwrap_or(0) >= 1
            && live["epoch"].as_u64().unwrap_or(0) >= 2
        {
            return;
        }
        assert!(
            started.elapsed() < deadline,
            "live intake never converged: {live}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn live_appends_and_posts_converge_to_cold_union_bytes() {
    let dir = std::env::temp_dir().join(format!("lastmile-serve-live-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (full_corpus, probes) = fixture(&dir);
    let all = std::fs::read_to_string(&full_corpus).expect("fixture corpus");
    let lines: Vec<&str> = all.lines().collect();
    // The daemon starts without ANY of probe 6005's records — the
    // simulated signal is perfectly periodic, so dropping a time-tail
    // changes nothing; dropping a whole probe changes the population
    // (and therefore the classification bytes) for sure. Its records
    // arrive later: most as file appends, 500 via POST (bounded so the
    // body stays under the 4 MiB intake cap).
    let (head, tail): (Vec<&str>, Vec<&str>) = lines
        .iter()
        .partition(|line| !line.contains("\"prb_id\":6005"));
    assert!(tail.len() > 1000, "fixture probe 6005 too sparse to split");
    let (to_append, to_post) = tail.split_at(tail.len() - 500);
    let corpus = dir.join("live.jsonl");
    let spool = dir.join("spool.jsonl");
    let join = |ls: &[&str]| {
        ls.iter().fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        })
    };
    std::fs::write(&corpus, join(&head)).unwrap();

    let ready = dir.join("ready-live");
    let mut child = std::process::Command::new(lastmile_bin())
        .args([
            "serve",
            "--traceroutes",
            corpus.to_str().unwrap(),
            "--probes",
            probes.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--ready-file",
            ready.to_str().unwrap(),
            "--watch",
            "--watch-poll-ms",
            "50",
            "--reanalyze-debounce-ms",
            "100",
            "--live-spool",
            spool.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn live serve");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(contents) = std::fs::read_to_string(&ready) {
            if contents.ends_with('\n') {
                break contents.trim().to_string();
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            let out = child.wait_with_output().expect("collect output");
            panic!(
                "serve exited before ready ({status}): {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        assert!(Instant::now() < deadline, "serve never became ready");
        std::thread::sleep(Duration::from_millis(20));
    };

    // Epoch 1 serves the head-only analysis.
    let (status, headers, baseline) = http_get(&addr, "/v1/classify");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-epoch"), Some("1"));

    // Concurrent readers during the swaps: every response must carry
    // one consistent epoch — same X-Epoch ⇒ byte-identical body, and a
    // reader's epoch never goes backwards.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen: Vec<(u64, Vec<u8>)> = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (status, headers, body) = http_get(&addr, "/v1/classify");
                    assert_eq!(status, 200);
                    let epoch: u64 = header(&headers, "x-epoch")
                        .expect("x-epoch header")
                        .parse()
                        .expect("numeric epoch");
                    if let Some((last, _)) = seen.last() {
                        assert!(epoch >= *last, "epoch went backwards");
                    }
                    seen.push((epoch, body));
                    std::thread::sleep(Duration::from_millis(50));
                }
                seen
            })
        })
        .collect();

    // A malformed-only POST is rejected with the quarantine taxonomy
    // and must not disturb the pipeline.
    let (status, _, body) = http_post(&addr, "/v1/traceroutes", b"not json at all\n");
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    let err: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("reject doc");
    assert_eq!(err["rejected"][0]["kind"].as_str(), Some("json"));

    // Live intake: 3 records appended to the watched corpus (split so a
    // poll can observe a partial line), 3 POSTed (one good + bad mix).
    let appended = join(to_append);
    let (first_part, rest) = appended.as_bytes().split_at(appended.len() / 2);
    append_file(&corpus, first_part);
    std::thread::sleep(Duration::from_millis(120));
    append_file(&corpus, rest);
    let post_body = format!("{}garbage line\n", join(to_post));
    let (status, _, body) = http_post(&addr, "/v1/traceroutes", post_body.as_bytes());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let outcome: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("intake doc");
    assert_eq!(outcome["accepted"].as_u64(), Some(500));
    assert_eq!(outcome["rejected"].as_array().map(Vec::len), Some(1));

    // Wait until every accepted record has been re-analyzed, then stop
    // the readers.
    await_live_convergence(&addr, tail.len() as u64, Duration::from_secs(120));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut all_seen: Vec<(u64, Vec<u8>)> = Vec::new();
    for reader in readers {
        all_seen.extend(reader.join().expect("reader thread"));
    }

    // The live document now differs from the baseline and equals a cold
    // `classify --json` over the union corpus (corpus-after-appends +
    // spool), byte for byte.
    let (status, headers, live_body) = http_get(&addr, "/v1/classify");
    assert_eq!(status, 200);
    assert_ne!(live_body, baseline, "re-analysis changed nothing");
    let live_epoch: u64 = header(&headers, "x-epoch").unwrap().parse().unwrap();
    assert!(live_epoch >= 2);
    let union = dir.join("union.jsonl");
    let mut union_bytes = std::fs::read(&corpus).unwrap();
    union_bytes.extend_from_slice(&std::fs::read(&spool).unwrap());
    std::fs::write(&union, union_bytes).unwrap();
    let (cold, err, ok) = run(&[
        "classify",
        "--traceroutes",
        union.to_str().unwrap(),
        "--probes",
        probes.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "cold union classify failed: {err}");
    assert_eq!(
        live_body,
        cold.as_bytes(),
        "live daemon diverged from cold union classify"
    );

    // Same epoch ⇒ same bytes, across all readers.
    all_seen.push((live_epoch, live_body));
    all_seen.push((1, baseline));
    let mut by_epoch: std::collections::BTreeMap<u64, &[u8]> = std::collections::BTreeMap::new();
    for (epoch, body) in &all_seen {
        match by_epoch.get(epoch) {
            Some(existing) => assert_eq!(
                existing, body,
                "two readers saw different bytes under epoch {epoch}"
            ),
            None => {
                by_epoch.insert(*epoch, body);
            }
        }
    }

    let (stderr, ok) = terminate(child);
    assert!(ok, "serve did not exit cleanly: {stderr}");
    assert!(stderr.contains("[live] epoch"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_pending_reanalysis_before_snapshot_persist() {
    let dir = std::env::temp_dir().join(format!("lastmile-serve-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_dir = dir.join("cache");
    // A huge debounce guarantees the re-analysis is still PENDING when
    // SIGTERM lands; the engine must run it during shutdown (draining
    // the swap) before the snapshot re-persist.
    let (child, addr) = spawn_serve(
        &dir,
        &[
            "--watch",
            "--watch-poll-ms",
            "50",
            "--reanalyze-debounce-ms",
            "60000",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ],
    );
    let corpus = dir.join("traceroutes.jsonl");
    let all = std::fs::read_to_string(&corpus).unwrap();
    let last_line = all.lines().next_back().expect("nonempty corpus");
    append_file(&corpus, format!("{last_line}\n").as_bytes());

    // Wait until the watcher has seen the append (dirty window open).
    let started = Instant::now();
    loop {
        let (_, _, body) = http_get(&addr, "/metrics");
        let doc: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
        if doc["live"]["watch_appends"].as_u64().unwrap_or(0) >= 1 {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "watcher never saw the append: {}",
            doc["live"]
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let (stderr, ok) = terminate(child);
    assert!(ok, "serve did not exit cleanly: {stderr}");
    // The pending window was drained: epoch 2 published during
    // shutdown, strictly before the final snapshot persist — so the
    // persisted store never mixes epochs.
    assert!(
        stderr.contains("[live] draining pending re-analysis before shutdown"),
        "{stderr}"
    );
    let swap_at = stderr
        .find("[live] epoch 2")
        .unwrap_or_else(|| panic!("drained re-analysis never published its epoch: {stderr}"));
    let last_persist_at = stderr.rfind("[cache] saved").expect("shutdown persist");
    assert!(
        swap_at < last_persist_at,
        "snapshot persisted before the drained epoch swap: {stderr}"
    );
    // The watcher's resume offset survived shutdown next to the cache.
    assert!(
        cache_dir.join("live.offset").exists(),
        "offset sidecar missing"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_in_flight_and_repersists_snapshot() {
    let dir = std::env::temp_dir().join(format!("lastmile-serve-term-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_dir = dir.join("cache");
    let (child, addr) = spawn_serve(
        &dir,
        &[
            "--serve-delay-ms",
            "1500",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ],
    );
    // Startup analysis persisted the first snapshot.
    let snapshot = cache_dir.join("series.lmss");
    assert!(snapshot.exists(), "startup snapshot missing");

    // Park a request in flight, then SIGTERM mid-handling.
    let in_flight = {
        let addr = addr.clone();
        std::thread::spawn(move || http_get(&addr, "/v1/classify"))
    };
    std::thread::sleep(Duration::from_millis(400));
    let (stderr, ok) = terminate(child);

    // The in-flight request completed with a full, valid body.
    let (status, headers, body) = in_flight.join().expect("in-flight client");
    assert_eq!(status, 200, "in-flight request was dropped by shutdown");
    assert_eq!(
        header(&headers, "content-length"),
        Some(body.len().to_string().as_str())
    );
    serde_json::from_str::<serde_json::Value>(std::str::from_utf8(&body).unwrap())
        .expect("complete JSON body");

    assert!(ok, "serve did not exit cleanly: {stderr}");
    assert!(stderr.contains("[serve] shutdown: drained"), "{stderr}");
    // Snapshot persisted twice: once at startup, once at shutdown.
    assert_eq!(
        stderr.matches("[cache] saved").count(),
        2,
        "expected startup + shutdown persists: {stderr}"
    );
    assert!(snapshot.exists(), "shutdown snapshot missing");
    std::fs::remove_dir_all(&dir).ok();
}
