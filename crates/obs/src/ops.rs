//! The ops plane's in-memory state: the self-scraped metrics timeline
//! and the epoch telemetry ring.
//!
//! [`OpsTimeline`] answers "what did the daemon's own gauges look like
//! over the last while" without any external scraper: a sampler thread
//! in `lastmile serve` pushes one [`TimelineSample`] per tick and the
//! ring keeps three bounded resolutions — raw ticks, 10-second rollups,
//! and 1-minute rollups (min/mean/max per metric per window). Queries
//! use the same half-open `[from, to)` unix-second semantics as
//! `/v1/series/{asn}` and return the finest resolution that still
//! covers the requested window, so a ladder run's knee is visible from
//! the server side minutes later and a day-long incident still has
//! minute-level shape.
//!
//! [`EpochTelemetry`] is the live engine's flight recorder: one
//! structured [`EpochRecord`] per re-analysis pass (trigger, volume,
//! duration, outcome) in a last-N ring served at `/v1/ops/epochs`.
//!
//! Both are Mutex-guarded plain data — pushes happen once a second (or
//! once an epoch), far off any request hot path.

use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Mutex;

/// The metrics a timeline sample carries, in stable report order. Rates
/// are per-second deltas computed by the sampler from the underlying
/// monotone counters; the rest are instantaneous gauges.
pub const TIMELINE_METRICS: [&str; 9] = [
    "request_rate",
    "shed_rate_cheap",
    "shed_rate_heavy",
    "shed_rate_intake",
    "rejected_rate",
    "in_flight",
    "queue_depth",
    "ingest_lag",
    "epoch",
];

const METRICS: usize = TIMELINE_METRICS.len();

/// Default ring capacities: 10 minutes of raw 1-second ticks, an hour
/// of 10-second windows, a day of 1-minute windows. Total worst-case
/// footprint is a few hundred kilobytes, independent of uptime.
const RAW_CAP: usize = 600;
const R10_CAP: usize = 360;
const R60_CAP: usize = 1440;

const W10_MS: u64 = 10_000;
const W60_MS: u64 = 60_000;

/// One sampler tick: a unix-millisecond timestamp plus every metric's
/// value, ordered as [`TIMELINE_METRICS`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimelineSample {
    pub unix_ms: u64,
    pub values: [f64; METRICS],
}

/// One rollup window's running aggregates for every metric.
#[derive(Clone, Copy, Debug)]
struct Window {
    start_ms: u64,
    samples: u64,
    min: [f64; METRICS],
    sum: [f64; METRICS],
    max: [f64; METRICS],
}

impl Window {
    fn open(start_ms: u64, sample: &TimelineSample) -> Window {
        Window {
            start_ms,
            samples: 1,
            min: sample.values,
            sum: sample.values,
            max: sample.values,
        }
    }

    fn absorb(&mut self, sample: &TimelineSample) {
        self.samples += 1;
        for i in 0..METRICS {
            self.min[i] = self.min[i].min(sample.values[i]);
            self.sum[i] += sample.values[i];
            self.max[i] = self.max[i].max(sample.values[i]);
        }
    }

    fn point(&self, metric: usize, resolution_secs: u64) -> TimelinePoint {
        TimelinePoint {
            t: self.start_ms / 1000,
            resolution_secs,
            min: self.min[metric],
            mean: self.sum[metric] / self.samples as f64,
            max: self.max[metric],
            samples: self.samples,
        }
    }
}

/// One queried point: the window's start (unix seconds), its width, and
/// the metric's min/mean/max over the samples that landed in it. Raw
/// ticks report `resolution_secs: 0` with `min == mean == max`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct TimelinePoint {
    pub t: u64,
    pub resolution_secs: u64,
    pub min: f64,
    pub mean: f64,
    pub max: f64,
    pub samples: u64,
}

struct TimelineInner {
    raw: VecDeque<TimelineSample>,
    r10: VecDeque<Window>,
    r60: VecDeque<Window>,
    open10: Option<Window>,
    open60: Option<Window>,
    last_ms: u64,
    raw_evicted: bool,
}

/// The bounded multi-resolution timeline ring. Shared by `Arc` between
/// the sampler thread and the `/v1/ops/timeline` handler.
pub struct OpsTimeline {
    caps: (usize, usize, usize),
    inner: Mutex<TimelineInner>,
}

impl Default for OpsTimeline {
    fn default() -> OpsTimeline {
        OpsTimeline::with_caps(RAW_CAP, R10_CAP, R60_CAP)
    }
}

impl OpsTimeline {
    pub fn new() -> OpsTimeline {
        OpsTimeline::default()
    }

    /// A timeline with explicit ring capacities (tests shrink them to
    /// exercise eviction without pushing hundreds of thousands of
    /// samples).
    pub fn with_caps(raw: usize, r10: usize, r60: usize) -> OpsTimeline {
        OpsTimeline {
            caps: (raw.max(1), r10.max(1), r60.max(1)),
            inner: Mutex::new(TimelineInner {
                raw: VecDeque::new(),
                r10: VecDeque::new(),
                r60: VecDeque::new(),
                open10: None,
                open60: None,
                last_ms: 0,
                raw_evicted: false,
            }),
        }
    }

    /// Index of `metric` in [`TIMELINE_METRICS`], `None` if unknown.
    pub fn metric_index(metric: &str) -> Option<usize> {
        TIMELINE_METRICS.iter().position(|m| *m == metric)
    }

    /// Record one sampler tick. Timestamps are clamped to be monotone
    /// non-decreasing (a wall-clock step backwards must not corrupt the
    /// ring's ordering invariant).
    pub fn push(&self, mut sample: TimelineSample) {
        let mut guard = self.inner.lock().expect("ops timeline lock");
        let inner = &mut *guard;
        sample.unix_ms = sample.unix_ms.max(inner.last_ms);
        inner.last_ms = sample.unix_ms;
        inner.raw.push_back(sample);
        while inner.raw.len() > self.caps.0 {
            inner.raw.pop_front();
            inner.raw_evicted = true;
        }
        let start10 = sample.unix_ms - sample.unix_ms % W10_MS;
        match &mut inner.open10 {
            Some(open) if open.start_ms == start10 => open.absorb(&sample),
            open => {
                if let Some(done) = open.replace(Window::open(start10, &sample)) {
                    inner.r10.push_back(done);
                    while inner.r10.len() > self.caps.1 {
                        inner.r10.pop_front();
                    }
                }
            }
        }
        let start60 = sample.unix_ms - sample.unix_ms % W60_MS;
        match &mut inner.open60 {
            Some(open) if open.start_ms == start60 => open.absorb(&sample),
            open => {
                if let Some(done) = open.replace(Window::open(start60, &sample)) {
                    inner.r60.push_back(done);
                    while inner.r60.len() > self.caps.2 {
                        inner.r60.pop_front();
                    }
                }
            }
        }
    }

    /// Samples currently held per ring `(raw, 10s, 1min)`, open windows
    /// included — the bounded-memory invariant tests pin.
    pub fn depths(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock().expect("ops timeline lock");
        (
            inner.raw.len(),
            inner.r10.len() + usize::from(inner.open10.is_some()),
            inner.r60.len() + usize::from(inner.open60.is_some()),
        )
    }

    /// Query one metric over half-open `[from, to)` unix seconds (the
    /// same window semantics as `/v1/series/{asn}`). Returns the finest
    /// resolution whose retained history still covers `from`: raw ticks
    /// first, then 10-second windows, then 1-minute windows. While no
    /// raw tick has ever been evicted the raw ring IS the complete
    /// history, so it covers any window — an unbounded query on a young
    /// daemon answers at raw resolution instead of degrading to the one
    /// open rollup window. `None` when the metric name is unknown.
    pub fn query(&self, metric: &str, from: i64, to: i64) -> Option<Vec<TimelinePoint>> {
        let metric = Self::metric_index(metric)?;
        let inner = self.inner.lock().expect("ops timeline lock");
        let in_range = |t_secs: u64| t_secs as i64 >= from && (t_secs as i64) < to;

        if let Some(first) = inner.raw.front() {
            if !inner.raw_evicted
                || first.unix_ms / 1000 <= from.max(0) as u64
                || inner.r10.is_empty()
            {
                return Some(
                    inner
                        .raw
                        .iter()
                        .filter(|s| in_range(s.unix_ms / 1000))
                        .map(|s| TimelinePoint {
                            t: s.unix_ms / 1000,
                            resolution_secs: 0,
                            min: s.values[metric],
                            mean: s.values[metric],
                            max: s.values[metric],
                            samples: 1,
                        })
                        .collect(),
                );
            }
        }
        let windows = |ring: &VecDeque<Window>, open: &Option<Window>, secs: u64| {
            ring.iter()
                .chain(open.iter())
                .filter(|w| in_range(w.start_ms / 1000))
                .map(|w| w.point(metric, secs))
                .collect::<Vec<_>>()
        };
        if let Some(first) = inner.r10.front().or(inner.open10.as_ref()) {
            if first.start_ms / 1000 <= from.max(0) as u64 || inner.r60.is_empty() {
                return Some(windows(&inner.r10, &inner.open10, 10));
            }
        }
        Some(windows(&inner.r60, &inner.open60, 60))
    }
}

/// One re-analysis pass of the live engine, as recorded for
/// `/v1/ops/epochs`.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct EpochRecord {
    /// Epoch generation this pass published (unchanged on error).
    pub epoch: u64,
    /// What woke the pass: `watch_append`, `watch_truncation`, `post`,
    /// combinations joined with `+`, or `drain` when nothing specific
    /// was pending (e.g. a shutdown flush).
    pub trigger: String,
    /// Total records live-ingested when the pass started.
    pub records_ingested: u64,
    /// Probes invalidated at pass start (0 = full invalidation).
    pub probes_invalidated: u64,
    /// Wall nanoseconds the whole pass took.
    pub pass_nanos: u64,
    /// Wall nanoseconds the epoch pointer swap took.
    pub swap_nanos: u64,
    /// `published` or `error`.
    pub outcome: String,
    /// The error message when `outcome == "error"`, else empty.
    #[serde(skip_serializing_if = "String::is_empty")]
    pub error: String,
    /// Unix milliseconds the pass finished.
    pub unix_ms: u64,
}

/// Bounded last-N ring of [`EpochRecord`]s. Shared by `Arc` between the
/// live engine and the `/v1/ops/epochs` handler.
pub struct EpochTelemetry {
    cap: usize,
    ring: Mutex<VecDeque<EpochRecord>>,
}

impl Default for EpochTelemetry {
    fn default() -> EpochTelemetry {
        EpochTelemetry::with_capacity(64)
    }
}

impl EpochTelemetry {
    pub fn new() -> EpochTelemetry {
        EpochTelemetry::default()
    }

    pub fn with_capacity(cap: usize) -> EpochTelemetry {
        EpochTelemetry {
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Append one pass record, evicting the oldest beyond capacity.
    pub fn record(&self, record: EpochRecord) {
        let mut ring = self.ring.lock().expect("epoch telemetry lock");
        ring.push_back(record);
        while ring.len() > self.cap {
            ring.pop_front();
        }
    }

    /// Oldest-first copy of the retained records.
    pub fn snapshot(&self) -> Vec<EpochRecord> {
        self.ring
            .lock()
            .expect("epoch telemetry lock")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(unix_ms: u64, value: f64) -> TimelineSample {
        TimelineSample {
            unix_ms,
            values: [value; METRICS],
        }
    }

    #[test]
    fn rings_stay_bounded_under_long_runs() {
        let tl = OpsTimeline::with_caps(10, 5, 3);
        // Simulate ~3 hours of 1-second ticks.
        for i in 0..10_800u64 {
            tl.push(sample(1_700_000_000_000 + i * 1000, i as f64));
        }
        let (raw, r10, r60) = tl.depths();
        assert!(raw <= 10, "raw ring grew to {raw}");
        assert!(r10 <= 6, "10s ring grew to {r10}");
        assert!(r60 <= 4, "1min ring grew to {r60}");
        // Default caps hold too (cheap smoke, not 3 hours of default).
        let tl = OpsTimeline::new();
        for i in 0..2_000u64 {
            tl.push(sample(1_700_000_000_000 + i * 1000, 1.0));
        }
        assert!(tl.depths().0 <= 600);
    }

    #[test]
    fn timestamps_are_clamped_monotone() {
        let tl = OpsTimeline::new();
        tl.push(sample(5_000, 1.0));
        tl.push(sample(3_000, 2.0)); // wall clock stepped back
        tl.push(sample(7_000, 3.0));
        let points = tl.query("request_rate", 0, 100).expect("known metric");
        let times: Vec<u64> = points.iter().map(|p| p.t).collect();
        assert_eq!(times, vec![5, 5, 7]);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rollups_match_a_naive_oracle() {
        let base = 1_700_000_040_000u64; // 10s- and 60s-aligned
        let values: Vec<f64> = (0..25).map(|i| ((i * 7) % 13) as f64).collect();
        // A raw ring of 2 forces the query onto the 10s rollups, whose
        // min/mean/max must match the naive per-window aggregation.
        let tiny = OpsTimeline::with_caps(2, 10_000, 10_000);
        for (i, &v) in values.iter().enumerate() {
            tiny.push(sample(base + i as u64 * 1000, v));
        }
        let points = tiny
            .query(
                "request_rate",
                (base / 1000) as i64,
                (base / 1000 + 100) as i64,
            )
            .expect("known metric");
        // 25 one-second ticks from an aligned start: windows of 10, 10,
        // and an open 5.
        assert_eq!(points.len(), 3);
        for (w, point) in points.iter().enumerate() {
            let chunk: Vec<f64> = values.iter().copied().skip(w * 10).take(10).collect();
            let min = chunk.iter().copied().fold(f64::INFINITY, f64::min);
            let max = chunk.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            assert_eq!(point.resolution_secs, 10);
            assert_eq!(point.samples, chunk.len() as u64);
            assert_eq!(point.min, min, "window {w} min");
            assert_eq!(point.max, max, "window {w} max");
            assert!((point.mean - mean).abs() < 1e-9, "window {w} mean");
            assert_eq!(point.t, base / 1000 + w as u64 * 10);
        }
    }

    #[test]
    fn query_is_half_open_like_v1_series() {
        let tl = OpsTimeline::new();
        for t in [10u64, 11, 12, 13, 14] {
            tl.push(sample(t * 1000, t as f64));
        }
        let points = tl.query("epoch", 11, 14).expect("known metric");
        let times: Vec<u64> = points.iter().map(|p| p.t).collect();
        // from inclusive, to exclusive.
        assert_eq!(times, vec![11, 12, 13]);
        assert!(tl.query("epoch", 14, 14).expect("known").is_empty());
        assert_eq!(tl.query("no_such_metric", 0, 100), None);
    }

    #[test]
    fn query_falls_back_to_coarser_rings_as_raw_evicts() {
        // Raw holds 3 ticks, 10s ring holds plenty: a query from the
        // distant past must come back at 10s resolution, not the
        // truncated raw view.
        let tl = OpsTimeline::with_caps(3, 100, 100);
        let base = 1_700_000_040_000u64;
        for i in 0..40u64 {
            tl.push(sample(base + i * 1000, i as f64));
        }
        let from = (base / 1000) as i64;
        let points = tl.query("request_rate", from, from + 1000).expect("known");
        assert!(points.iter().all(|p| p.resolution_secs == 10));
        assert!(points.len() >= 3);
        // A query covering only the freshest ticks stays raw.
        let points = tl
            .query("request_rate", from + 37, from + 1000)
            .expect("known");
        assert!(points.iter().all(|p| p.resolution_secs == 0));
        assert_eq!(points.len(), 3);
    }

    #[test]
    fn unbounded_query_stays_raw_until_first_eviction() {
        // 25 ticks crossing two 10s boundaries: rollup windows exist,
        // but raw still holds everything, so an unbounded query must
        // answer with all 25 raw ticks — not the open rollup window.
        let tl = OpsTimeline::new();
        let base = 1_700_000_040_000u64;
        for i in 0..25u64 {
            tl.push(sample(base + i * 1000, i as f64));
        }
        let points = tl.query("request_rate", i64::MIN, i64::MAX).expect("known");
        assert_eq!(points.len(), 25);
        assert!(points.iter().all(|p| p.resolution_secs == 0));
    }

    #[test]
    fn epoch_telemetry_ring_keeps_last_n_in_order() {
        let ring = EpochTelemetry::with_capacity(3);
        for i in 1..=5u64 {
            ring.record(EpochRecord {
                epoch: i,
                trigger: "post".into(),
                outcome: "published".into(),
                ..EpochRecord::default()
            });
        }
        let records = ring.snapshot();
        assert_eq!(records.len(), 3);
        let epochs: Vec<u64> = records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![3, 4, 5]);
        // Serialization drops the empty error field, keeps the rest.
        let json = serde_json::to_string(&records[0]).expect("serializes");
        assert!(json.contains("\"trigger\":\"post\""));
        assert!(!json.contains("\"error\""));
        let mut with_error = records[0].clone();
        with_error.error = "boom".into();
        with_error.outcome = "error".into();
        let json = serde_json::to_string(&with_error).expect("serializes");
        assert!(json.contains("\"error\":\"boom\""));
    }
}
