//! Prometheus text exposition (format 0.0.4) for the daemon's metrics
//! surface, plus a strict exposition linter the tests and `lastmile
//! lint` hold the encoder to.
//!
//! The JSON `/metrics` document stays the canonical bespoke schema;
//! this module renders the *same* counters, gauges, and log-linear
//! histograms as `# TYPE`-annotated families with stable `lastmile_`-
//! prefixed names so a stock Prometheus scraper ingests the daemon with
//! zero glue. Conventions held (and enforced by [`lint`]):
//!
//! * counters end in `_total`;
//! * histograms render **cumulative** `_bucket{le="…"}` series ending in
//!   `le="+Inf"`, plus `_sum` and `_count`, with `_count` equal to the
//!   `+Inf` bucket;
//! * per-endpoint request latency uses one family with an `endpoint`
//!   label; admission accounting uses a `cost_class` label;
//! * every family's samples are contiguous and each series is unique.
//!
//! The encoder is dependency-free: plain `String` assembly from the
//! live [`ServeMetrics`] (full histograms, not just summaries) and the
//! plain-value run/live snapshots.

use crate::hist::Histogram;
use crate::{LiveMetricsSnapshot, RunMetricsSnapshot, ServeMetrics};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// The `Content-Type` a Prometheus scraper expects for this body.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Incremental exposition writer: family headers + samples.
struct Exposition {
    out: String,
}

impl Exposition {
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        if labels.is_empty() {
            let _ = writeln!(self.out, "{name} {value}");
        } else {
            let inner = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(self.out, "{name}{{{inner}}} {value}");
        }
    }

    /// One unlabeled counter family with a single sample.
    fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "counter", help);
        self.sample(name, &[], value);
    }

    /// One unlabeled gauge family with a single sample.
    fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "gauge", help);
        self.sample(name, &[], value);
    }

    /// One labeled counter family: a sample per `(label value, count)`.
    fn counter_by(&mut self, name: &str, help: &str, label: &str, series: &[(&str, u64)]) {
        self.family(name, "counter", help);
        for (value, count) in series {
            self.sample(name, &[(label, value)], *count);
        }
    }

    /// One labeled gauge family: a sample per `(label value, level)`.
    fn gauge_by(&mut self, name: &str, help: &str, label: &str, series: &[(&str, u64)]) {
        self.family(name, "gauge", help);
        for (value, level) in series {
            self.sample(name, &[(label, value)], *level);
        }
    }

    /// One histogram family with a distinguishing label: cumulative
    /// non-empty buckets + `+Inf`, then `_sum` and `_count`, per series.
    fn histogram_by(&mut self, name: &str, help: &str, label: &str, series: &[(&str, Histogram)]) {
        self.family(name, "histogram", help);
        let bucket = format!("{name}_bucket");
        for (value, h) in series {
            let mut cumulative = 0u64;
            for (upper, count) in h.nonzero_buckets() {
                cumulative += count;
                let le = upper.to_string();
                self.sample(&bucket, &[(label, value), ("le", &le)], cumulative);
            }
            self.sample(&bucket, &[(label, value), ("le", "+Inf")], h.count());
            self.sample(&format!("{name}_sum"), &[(label, value)], h.sum());
            self.sample(&format!("{name}_count"), &[(label, value)], h.count());
        }
    }

    /// Per-quantile gauges for a family only known by its summary.
    fn summary_gauges(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        series: &[(&str, crate::HistogramSummary)],
    ) {
        self.family(name, "gauge", help);
        for (value, s) in series {
            for (q, v) in [
                ("0.5", s.p50_nanos),
                ("0.9", s.p90_nanos),
                ("0.99", s.p99_nanos),
                ("max", s.max_nanos),
            ] {
                self.sample(name, &[(label, value), ("quantile", q)], v);
            }
        }
    }
}

/// Render the full metrics surface as Prometheus exposition text.
///
/// `serve` is taken live (not as a snapshot) because the per-endpoint
/// histograms need their full bucket tables, which the JSON snapshot
/// deliberately collapses to p50/p90/p99/max summaries.
pub fn render(
    run: &RunMetricsSnapshot,
    serve: &ServeMetrics,
    live: &LiveMetricsSnapshot,
) -> String {
    let mut e = Exposition {
        out: String::with_capacity(16 * 1024),
    };

    // --- run: the analysis pipeline's funnel counters ---
    e.counter(
        "lastmile_run_traceroutes_ingested_total",
        "Traceroute measurements streamed into the analysis pipeline.",
        run.traceroutes_ingested,
    );
    e.counter(
        "lastmile_run_traceroutes_out_of_period_total",
        "Traceroutes dropped for falling outside the measurement period.",
        run.traceroutes_out_of_period,
    );
    e.counter(
        "lastmile_run_bins_discarded_sanity_total",
        "Probe bins discarded by the per-bin sanity filter.",
        run.bins_discarded_sanity,
    );
    e.counter(
        "lastmile_run_bins_interpolated_total",
        "Signal gaps filled by linear interpolation before analysis.",
        run.bins_interpolated,
    );
    e.counter(
        "lastmile_run_welch_segments_total",
        "Segments averaged by the Welch periodogram across detections.",
        run.welch_segments,
    );
    e.counter(
        "lastmile_run_populations_analyzed_total",
        "(AS, period) populations fully analyzed.",
        run.populations_analyzed,
    );
    e.counter(
        "lastmile_run_populations_with_detection_total",
        "Analyzed populations that produced a congestion detection.",
        run.populations_with_detection,
    );
    e.counter(
        "lastmile_run_tasks_failed_total",
        "Survey tasks whose worker panicked (isolated per task).",
        run.tasks_failed,
    );
    e.counter_by(
        "lastmile_run_store_lookups_total",
        "Series-store lookups by result.",
        "result",
        &[
            ("hit", run.store.hits),
            ("miss", run.store.misses),
            ("bypass", run.store.bypasses),
        ],
    );
    e.counter(
        "lastmile_run_store_inserts_total",
        "Series-store entries inserted.",
        run.store.inserts,
    );
    e.counter(
        "lastmile_run_store_evictions_total",
        "Series-store entries evicted.",
        run.store.evictions,
    );
    e.counter_by(
        "lastmile_run_store_snapshot_bytes_total",
        "Series-store snapshot bytes by direction.",
        "direction",
        &[
            ("written", run.store.snapshot_bytes_written),
            ("read", run.store.snapshot_bytes_read),
        ],
    );
    e.counter(
        "lastmile_run_ingest_bytes_read_total",
        "Bytes read from traceroute input files.",
        run.ingest.bytes_read,
    );
    e.counter(
        "lastmile_run_ingest_records_decoded_total",
        "Traceroute records decoded from disk.",
        run.ingest.records_decoded,
    );
    e.counter_by(
        "lastmile_run_ingest_quarantined_total",
        "Quarantined ingest records by error kind.",
        "kind",
        &[
            ("framing", run.ingest.quarantined.framing),
            ("json", run.ingest.quarantined.json),
            ("model", run.ingest.quarantined.model),
            ("worker_panic", run.ingest.quarantined.worker_panic),
        ],
    );
    e.gauge(
        "lastmile_run_ingest_queue_max_depth",
        "High-water mark of the bounded ingest batch queue.",
        run.ingest.queue_max_depth,
    );
    e.counter_by(
        "lastmile_run_stage_nanos_total",
        "Wall nanoseconds per pipeline stage, summed across workers.",
        "stage",
        &[
            ("ingest", run.stage_nanos.ingest),
            ("series", run.stage_nanos.series),
            ("aggregate", run.stage_nanos.aggregate),
            ("detect", run.stage_nanos.detect),
        ],
    );
    e.gauge(
        "lastmile_run_wall_nanos",
        "Elapsed wall nanoseconds of the analysis run.",
        run.stage_nanos.wall,
    );
    e.summary_gauges(
        "lastmile_run_latency_nanos",
        "Bucketed latency quantiles of the per-item hot loops (upper-bound estimates, relative error <= 1/16).",
        "loop",
        &[
            ("decode", run.latency.decode),
            ("series", run.latency.series),
            ("analyze", run.latency.analyze),
        ],
    );
    e.counter_by(
        "lastmile_run_latency_samples_total",
        "Samples recorded by the per-item latency histograms.",
        "loop",
        &[
            ("decode", run.latency.decode.count),
            ("series", run.latency.series.count),
            ("analyze", run.latency.analyze.count),
        ],
    );
    e.gauge(
        "lastmile_run_histogram_buckets",
        "Fixed bucket-table size of every log-linear histogram.",
        run.latency.bucket_count,
    );

    // --- serve: the request plane ---
    e.counter(
        "lastmile_serve_accepted_total",
        "Connections accepted (queued or handled inline).",
        load(&serve.accepted),
    );
    e.counter(
        "lastmile_serve_rejected_busy_total",
        "Connections refused with 503 because the accept queue was full.",
        load(&serve.rejected_busy),
    );
    e.counter(
        "lastmile_serve_requests_total",
        "Requests fully answered by a handler (any status).",
        load(&serve.requests),
    );
    e.counter(
        "lastmile_serve_worker_panics_total",
        "Worker iterations that panicked while handling a connection.",
        load(&serve.worker_panics),
    );
    e.counter(
        "lastmile_serve_fastlane_hits_total",
        "Probes served by the fast lane while the accept queue was busy.",
        load(&serve.fastlane_hits),
    );
    e.gauge(
        "lastmile_serve_in_flight",
        "Requests being handled right now.",
        load(&serve.in_flight),
    );
    e.gauge(
        "lastmile_serve_queue_depth",
        "Connections sitting in the accept queue right now.",
        load(&serve.queue_depth),
    );
    e.gauge(
        "lastmile_serve_queue_max_depth",
        "High-water mark of the accept queue depth.",
        load(&serve.queue_max_depth),
    );
    let classes = [
        ("cheap", &serve.admission_cheap),
        ("heavy", &serve.admission_heavy),
        ("intake", &serve.admission_intake),
    ];
    let by = |f: fn(&crate::AdmissionClassMetrics) -> u64| -> Vec<(&str, u64)> {
        classes.iter().map(|(name, c)| (*name, f(c))).collect()
    };
    e.gauge_by(
        "lastmile_serve_admission_budget",
        "Configured concurrency budget per cost class (0 = disengaged).",
        "cost_class",
        &by(|c| load(&c.budget)),
    );
    e.gauge_by(
        "lastmile_serve_admission_in_flight",
        "Requests of this cost class in a handler right now.",
        "cost_class",
        &by(|c| load(&c.in_flight)),
    );
    e.counter_by(
        "lastmile_serve_admission_admitted_total",
        "Requests admitted under the class budget.",
        "cost_class",
        &by(|c| load(&c.admitted)),
    );
    e.counter_by(
        "lastmile_serve_admission_shed_total",
        "Requests shed with 503 because the class budget was exhausted.",
        "cost_class",
        &by(|c| load(&c.shed)),
    );
    e.histogram_by(
        "lastmile_serve_request_duration_nanos",
        "Request latency (accept to response flushed) per endpoint family.",
        "endpoint",
        &[
            ("classify", serve.latency_classify.snapshot()),
            ("series", serve.latency_series.snapshot()),
            ("populations", serve.latency_populations.snapshot()),
            ("ingest", serve.latency_ingest.snapshot()),
            ("healthz", serve.latency_healthz.snapshot()),
            ("metrics", serve.latency_metrics.snapshot()),
            ("other", serve.latency_other.snapshot()),
            ("rejected", serve.latency_rejected.snapshot()),
        ],
    );

    // --- live: the re-ingest engine ---
    e.counter(
        "lastmile_live_records_ingested_total",
        "Records accepted through live intake (watch appends + POSTs).",
        live.records_ingested,
    );
    e.counter(
        "lastmile_live_posts_accepted_total",
        "Records accepted via POST /v1/traceroutes.",
        live.posts_accepted,
    );
    e.counter(
        "lastmile_live_posts_rejected_total",
        "Records rejected (quarantined) via POST /v1/traceroutes.",
        live.posts_rejected,
    );
    e.counter(
        "lastmile_live_watch_appends_total",
        "Append deltas slurped by the corpus-file watcher.",
        live.watch_appends,
    );
    e.counter(
        "lastmile_live_watch_truncations_total",
        "Truncation/rotation events (each forces a full re-ingest).",
        live.watch_truncations,
    );
    e.counter(
        "lastmile_live_watch_quarantined_total",
        "Records the watcher quarantined (malformed appended lines).",
        live.watch_quarantined,
    );
    e.counter(
        "lastmile_live_reanalyses_total",
        "Re-analyses that published a new epoch.",
        live.reanalyses,
    );
    e.counter(
        "lastmile_live_reanalysis_errors_total",
        "Re-analyses that failed (epoch unchanged).",
        live.reanalysis_errors,
    );
    e.gauge(
        "lastmile_live_ingest_lag",
        "Records ingested but not yet covered by a published epoch.",
        live.ingest_lag,
    );
    e.gauge(
        "lastmile_live_epoch",
        "Generation of the currently published analysis snapshot.",
        live.epoch,
    );
    e.gauge(
        "lastmile_live_swap_nanos",
        "Wall nanoseconds the last epoch pointer swap took.",
        live.swap_nanos,
    );
    e.gauge(
        "lastmile_live_reanalysis_nanos",
        "Wall nanoseconds the last full re-analysis took.",
        live.reanalysis_nanos,
    );

    e.out
}

fn load(a: &std::sync::atomic::AtomicU64) -> u64 {
    a.load(std::sync::atomic::Ordering::Relaxed)
}

// --- linter ---

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => token.parse::<f64>().ok(),
    }
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parse `name{k="v",…} value` (no timestamps — the encoder never emits
/// them, and the linter treats trailing tokens as errors).
fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name '{name}'"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(stripped) = rest.strip_prefix('{') {
        let close = stripped
            .find('}')
            .ok_or_else(|| "unterminated label set".to_string())?;
        // Label values never contain an unescaped '}' in our encoder;
        // a raw '}' inside a quoted value would truncate here and then
        // fail the pair syntax below, so malformed input still errors.
        let body = &stripped[..close];
        rest = &stripped[close + 1..];
        for pair in body.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                return Err("empty label pair (trailing comma?)".into());
            }
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("label pair '{pair}' missing '='"))?;
            if !valid_label_name(k) {
                return Err(format!("invalid label name '{k}'"));
            }
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("label value for '{k}' not quoted"))?;
            labels.push((k.to_string(), v.to_string()));
        }
    }
    let mut tokens = rest.split_ascii_whitespace();
    let value_token = tokens
        .next()
        .ok_or_else(|| "sample has no value".to_string())?;
    if tokens.next().is_some() {
        return Err("unexpected tokens after the value (timestamps are not emitted)".into());
    }
    let value = parse_value(value_token).ok_or_else(|| format!("invalid value '{value_token}'"))?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Histogram bookkeeping for one `(family, labels-without-le)` series.
#[derive(Default)]
struct HistGroup {
    buckets: Vec<(f64, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

/// Strictly lint Prometheus exposition text: syntax, `# TYPE` before
/// samples, contiguous families, unique series, counter `_total`
/// suffixes, and cumulative histograms whose `_count` equals the
/// `+Inf` bucket. Returns every violation found.
pub fn lint(text: &str) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut sampled: HashSet<String> = HashSet::new();
    let mut finished: HashSet<String> = HashSet::new();
    let mut current_family: Option<String> = None;
    let mut series_seen: HashSet<String> = HashSet::new();
    let mut hist_groups: BTreeMap<(String, String), HistGroup> = BTreeMap::new();

    for (n, raw) in text.lines().enumerate() {
        let lineno = n + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_ascii_whitespace();
                let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(name), Some(kind), None) => (name, kind),
                    _ => {
                        errors.push(format!("line {lineno}: malformed TYPE line"));
                        continue;
                    }
                };
                if !valid_metric_name(name) {
                    errors.push(format!("line {lineno}: invalid family name '{name}'"));
                    continue;
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    errors.push(format!("line {lineno}: unknown metric type '{kind}'"));
                    continue;
                }
                if kind == "counter" && !name.ends_with("_total") {
                    errors.push(format!(
                        "line {lineno}: counter '{name}' does not end in _total"
                    ));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    errors.push(format!("line {lineno}: duplicate TYPE for '{name}'"));
                }
                if sampled.contains(name) {
                    errors.push(format!(
                        "line {lineno}: TYPE for '{name}' appears after its samples"
                    ));
                }
            }
            // HELP and free comments need no further validation.
            continue;
        }
        let sample = match parse_sample(line) {
            Ok(sample) => sample,
            Err(e) => {
                errors.push(format!("line {lineno}: {e}"));
                continue;
            }
        };
        // Resolve the family: histogram samples are suffixed.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = sample.name.strip_suffix(suffix)?;
                (types.get(base).map(String::as_str) == Some("histogram")).then(|| base.to_string())
            })
            .unwrap_or_else(|| sample.name.clone());
        let kind = match types.get(&family) {
            Some(kind) => kind.clone(),
            None => {
                errors.push(format!(
                    "line {lineno}: sample '{}' has no preceding TYPE",
                    sample.name
                ));
                continue;
            }
        };
        sampled.insert(family.clone());
        if current_family.as_deref() != Some(family.as_str()) {
            if let Some(prev) = current_family.take() {
                finished.insert(prev);
            }
            if finished.contains(&family) {
                errors.push(format!(
                    "line {lineno}: samples of '{family}' are not contiguous"
                ));
            }
            current_family = Some(family.clone());
        }
        let mut sorted = sample.labels.clone();
        sorted.sort();
        let series_key = format!("{}|{sorted:?}", sample.name);
        if !series_seen.insert(series_key) {
            errors.push(format!(
                "line {lineno}: duplicate series '{}' {:?}",
                sample.name, sample.labels
            ));
        }
        if kind == "histogram" {
            if sample.name == family {
                errors.push(format!(
                    "line {lineno}: histogram '{family}' must only emit _bucket/_sum/_count"
                ));
                continue;
            }
            let mut group_labels: Vec<(String, String)> = sample
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            group_labels.sort();
            let key = (family.clone(), format!("{group_labels:?}"));
            let group = hist_groups.entry(key).or_default();
            if sample.name.ends_with("_bucket") {
                match sample.labels.iter().find(|(k, _)| k == "le") {
                    Some((_, le)) => match parse_value(le) {
                        Some(le) => group.buckets.push((le, sample.value)),
                        None => errors.push(format!("line {lineno}: invalid le '{le}'")),
                    },
                    None => {
                        errors.push(format!("line {lineno}: _bucket sample without an le label"))
                    }
                }
            } else if sample.name.ends_with("_sum") {
                group.sum = Some(sample.value);
            } else {
                group.count = Some(sample.value);
            }
        }
    }

    for (name, _) in types.iter() {
        if !sampled.contains(name) {
            errors.push(format!("family '{name}' declares a TYPE but no samples"));
        }
    }
    for ((family, labels), group) in &hist_groups {
        let series = format!("histogram '{family}' {labels}");
        if group.buckets.is_empty() {
            errors.push(format!("{series}: no _bucket samples"));
            continue;
        }
        for pair in group.buckets.windows(2) {
            if pair[1].0 <= pair[0].0 {
                errors.push(format!("{series}: le bounds not strictly increasing"));
            }
            if pair[1].1 < pair[0].1 {
                errors.push(format!("{series}: bucket values not cumulative"));
            }
        }
        let (last_le, last_value) = *group.buckets.last().expect("non-empty");
        if last_le != f64::INFINITY {
            errors.push(format!("{series}: last bucket is not le=\"+Inf\""));
        }
        match group.count {
            Some(count) if count == last_value => {}
            Some(count) => errors.push(format!(
                "{series}: _count {count} != +Inf bucket {last_value}"
            )),
            None => errors.push(format!("{series}: missing _count")),
        }
        if group.sum.is_none() {
            errors.push(format!("{series}: missing _sum"));
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LiveMetrics, RunMetrics, ServeEndpoint, ServeMetrics};
    use std::sync::atomic::Ordering;

    fn rendered() -> String {
        let run = RunMetrics::new();
        run.add_traceroutes_ingested(120);
        run.add_population(true);
        let serve = ServeMetrics::new();
        serve.accepted.fetch_add(9, Ordering::Relaxed);
        serve.admission_heavy.budget.store(2, Ordering::Relaxed);
        assert!(serve.admission_heavy.try_acquire());
        serve.record_request(ServeEndpoint::Classify, 1_200_000);
        serve.record_request(ServeEndpoint::Classify, 3_400_000);
        serve.record_request(ServeEndpoint::Healthz, 9_000);
        serve.record_rejected(4_000);
        let live = LiveMetrics::new();
        live.records_ingested.fetch_add(77, Ordering::Relaxed);
        live.epoch.store(3, Ordering::Relaxed);
        render(&run.snapshot(), &serve, &live.snapshot())
    }

    #[test]
    fn rendered_exposition_passes_the_linter() {
        let text = rendered();
        if let Err(errors) = lint(&text) {
            panic!("linter rejected our own exposition:\n{}", errors.join("\n"));
        }
        // Spot checks: stable names, labels, and the histogram triplet.
        for needle in [
            "# TYPE lastmile_run_traceroutes_ingested_total counter",
            "lastmile_run_traceroutes_ingested_total 120",
            "lastmile_serve_admission_budget{cost_class=\"heavy\"} 2",
            "lastmile_serve_admission_admitted_total{cost_class=\"heavy\"} 1",
            "# TYPE lastmile_serve_request_duration_nanos histogram",
            "lastmile_serve_request_duration_nanos_bucket{endpoint=\"classify\",le=\"+Inf\"} 2",
            "lastmile_serve_request_duration_nanos_count{endpoint=\"classify\"} 2",
            "lastmile_serve_request_duration_nanos_count{endpoint=\"healthz\"} 1",
            "lastmile_live_epoch 3",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn histogram_count_matches_json_summary_count() {
        let serve = ServeMetrics::new();
        for nanos in [10u64, 200, 3_000, 40_000] {
            serve.record_request(ServeEndpoint::Series, nanos);
        }
        let text = render(
            &RunMetrics::new().snapshot(),
            &serve,
            &LiveMetrics::new().snapshot(),
        );
        let count = serve.snapshot().latency.series.count;
        assert!(text.contains(&format!(
            "lastmile_serve_request_duration_nanos_count{{endpoint=\"series\"}} {count}"
        )));
        // The _sum is the exact nanosecond total, not a bucketed figure.
        assert!(
            text.contains("lastmile_serve_request_duration_nanos_sum{endpoint=\"series\"} 43210")
        );
    }

    #[test]
    fn empty_metrics_render_a_lintable_document() {
        let text = render(
            &RunMetrics::new().snapshot(),
            &ServeMetrics::new(),
            &LiveMetrics::new().snapshot(),
        );
        assert!(lint(&text).is_ok(), "{:?}", lint(&text));
        // Even an empty histogram series keeps the +Inf/_sum/_count triplet.
        assert!(text.contains(
            "lastmile_serve_request_duration_nanos_bucket{endpoint=\"ingest\",le=\"+Inf\"} 0"
        ));
    }

    #[test]
    fn linter_rejects_untyped_samples_and_bad_names() {
        let errs = lint("lastmile_x_total 1\n").unwrap_err();
        assert!(errs[0].contains("no preceding TYPE"), "{errs:?}");
        let errs = lint("# TYPE 9bad counter\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("invalid family name")));
        let errs =
            lint("# TYPE lastmile_a_total counter\nlastmile_a_total{9x=\"v\"} 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("invalid label name")));
        let errs = lint("# TYPE lastmile_a_total counter\nlastmile_a_total nope\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("invalid value")));
    }

    #[test]
    fn linter_rejects_counters_without_total_suffix() {
        let errs = lint("# TYPE lastmile_requests counter\nlastmile_requests 4\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("does not end in _total")));
    }

    #[test]
    fn linter_rejects_duplicate_and_interleaved_series() {
        let text = "# TYPE a_total counter\na_total 1\na_total 2\n";
        let errs = lint(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("duplicate series")));
        let text = "# TYPE a_total counter\n# TYPE b gauge\na_total 1\nb 2\na_total{k=\"v\"} 3\n";
        let errs = lint(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not contiguous")));
    }

    #[test]
    fn linter_enforces_histogram_invariants() {
        // Non-cumulative buckets.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\n\
                    h_bucket{le=\"2\"} 3\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 9\nh_count 5\n";
        let errs = lint(text).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("not cumulative")),
            "{errs:?}"
        );
        // Missing +Inf.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        let errs = lint(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not le=\"+Inf\"")));
        // _count disagreeing with the +Inf bucket.
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        let errs = lint(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("!= +Inf bucket")));
        // Missing _sum.
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n";
        let errs = lint(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing _sum")));
        // A correct histogram with labels passes.
        let text = "# TYPE h histogram\n\
                    h_bucket{endpoint=\"a\",le=\"1\"} 2\n\
                    h_bucket{endpoint=\"a\",le=\"+Inf\"} 3\n\
                    h_sum{endpoint=\"a\"} 12\n\
                    h_count{endpoint=\"a\"} 3\n";
        assert!(lint(text).is_ok(), "{:?}", lint(text));
    }

    #[test]
    fn linter_flags_type_declared_but_never_sampled() {
        let errs = lint("# TYPE lastmile_ghost gauge\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no samples")));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
