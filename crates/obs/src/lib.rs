//! Run observability for the survey pipeline.
//!
//! [`RunMetrics`] is a set of lock-free counters and stage-time
//! accumulators shared (by reference) between the survey workers.  Each
//! counter names one of the §2 pipeline filters or stages of the paper:
//!
//! * `traceroutes_ingested` — built-in measurements streamed into an
//!   [`AsPipeline`] (after probe selection).
//! * `traceroutes_out_of_period` — dropped because their timestamp fell
//!   outside the measurement period (§2's period cut).
//! * `bins_discarded_sanity` — 30-minute probe bins discarded by the
//!   "at least N traceroutes per bin" sanity filter (§2).
//! * `bins_interpolated` — gaps in the aggregated signal filled by
//!   linear interpolation before spectral analysis.
//! * `welch_segments` — segments averaged by the Welch periodogram
//!   across all detections.
//! * `populations_analyzed` / `populations_with_detection` — (AS,
//!   period) populations processed, and the subset that passed the
//!   probe-coverage gate and produced a [`Detection`].
//! * `tasks_failed` — survey tasks whose worker panicked; the executor
//!   isolates these per task instead of aborting the run.
//! * `store_*` — series-store traffic when a run is given a
//!   `lastmile-store` cache: lookup hits/misses/bypasses, entries
//!   inserted and evicted, snapshot bytes written/read and the
//!   nanoseconds spent saving/loading snapshots. A warm run over stored
//!   probes shows `store_hits > 0` and `traceroutes_ingested == 0`.
//! * `ingest_*` — file-ingest traffic when a run decodes traceroutes
//!   from disk through `lastmile-ingest`: bytes read, records decoded,
//!   quarantined records by error kind (framing / JSON / model
//!   conversion / worker panic), and per-stage decode timers (framing
//!   vs parse, plus the ingest wall clock the throughput is computed
//!   against).
//!
//! Stage timers accumulate wall-clock nanoseconds measured with the
//! monotonic [`std::time::Instant`] clock; under a multi-threaded
//! executor they sum *across* workers, so stage totals can exceed the
//! elapsed `wall_nanos`.
//!
//! [`AsPipeline`]: ../lastmile_core/pipeline/struct.AsPipeline.html
//! [`Detection`]: ../lastmile_core/detect/struct.Detection.html

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Lock-free counters for one survey / classification run.
///
/// All methods take `&self`; share between threads by reference.
/// Counters use relaxed ordering — they are statistics, not
/// synchronisation, and the executor's channel/join already orders the
/// final read after every write.
#[derive(Debug, Default)]
pub struct RunMetrics {
    traceroutes_ingested: AtomicU64,
    traceroutes_out_of_period: AtomicU64,
    bins_discarded_sanity: AtomicU64,
    bins_interpolated: AtomicU64,
    welch_segments: AtomicU64,
    populations_analyzed: AtomicU64,
    populations_with_detection: AtomicU64,
    tasks_failed: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_bypasses: AtomicU64,
    store_inserts: AtomicU64,
    store_evictions: AtomicU64,
    store_bytes_written: AtomicU64,
    store_bytes_read: AtomicU64,
    store_save_nanos: AtomicU64,
    store_load_nanos: AtomicU64,
    ingest_bytes_read: AtomicU64,
    ingest_records_decoded: AtomicU64,
    ingest_quarantined_framing: AtomicU64,
    ingest_quarantined_json: AtomicU64,
    ingest_quarantined_model: AtomicU64,
    ingest_quarantined_panic: AtomicU64,
    ingest_frame_nanos: AtomicU64,
    ingest_decode_nanos: AtomicU64,
    ingest_wall_nanos: AtomicU64,
    /// Summed across workers (may exceed wall time).
    ingest_nanos: AtomicU64,
    series_nanos: AtomicU64,
    aggregate_nanos: AtomicU64,
    detect_nanos: AtomicU64,
    /// Elapsed time of the whole run (set once by the driver).
    wall_nanos: AtomicU64,
}

impl RunMetrics {
    pub fn new() -> RunMetrics {
        RunMetrics::default()
    }

    /// Add `n` to a counter. Used via the named helpers below.
    fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_traceroutes_ingested(&self, n: u64) {
        Self::add(&self.traceroutes_ingested, n);
    }
    pub fn add_traceroutes_out_of_period(&self, n: u64) {
        Self::add(&self.traceroutes_out_of_period, n);
    }
    pub fn add_bins_discarded_sanity(&self, n: u64) {
        Self::add(&self.bins_discarded_sanity, n);
    }
    pub fn add_bins_interpolated(&self, n: u64) {
        Self::add(&self.bins_interpolated, n);
    }
    pub fn add_welch_segments(&self, n: u64) {
        Self::add(&self.welch_segments, n);
    }
    pub fn add_population(&self, with_detection: bool) {
        Self::add(&self.populations_analyzed, 1);
        if with_detection {
            Self::add(&self.populations_with_detection, 1);
        }
    }
    pub fn add_task_failed(&self) {
        Self::add(&self.tasks_failed, 1);
    }

    /// Record one batch of series-store lookup/insert traffic.
    pub fn add_store_traffic(&self, traffic: &StoreTraffic) {
        Self::add(&self.store_hits, traffic.hits);
        Self::add(&self.store_misses, traffic.misses);
        Self::add(&self.store_bypasses, traffic.bypasses);
        Self::add(&self.store_inserts, traffic.inserts);
        Self::add(&self.store_evictions, traffic.evictions);
    }
    pub fn add_store_bytes_written(&self, n: u64) {
        Self::add(&self.store_bytes_written, n);
    }
    pub fn add_store_bytes_read(&self, n: u64) {
        Self::add(&self.store_bytes_read, n);
    }
    pub fn add_store_save_nanos(&self, n: u64) {
        Self::add(&self.store_save_nanos, n);
    }
    pub fn add_store_load_nanos(&self, n: u64) {
        Self::add(&self.store_load_nanos, n);
    }

    /// Record one file ingest's traffic (a classify run that streams the
    /// input twice calls this once per pass; quarantine counts should be
    /// reported for one pass only so they stay per-file exact).
    pub fn add_ingest_traffic(&self, traffic: &IngestTraffic) {
        Self::add(&self.ingest_bytes_read, traffic.bytes_read);
        Self::add(&self.ingest_records_decoded, traffic.records_decoded);
        Self::add(
            &self.ingest_quarantined_framing,
            traffic.quarantined_framing,
        );
        Self::add(&self.ingest_quarantined_json, traffic.quarantined_json);
        Self::add(&self.ingest_quarantined_model, traffic.quarantined_model);
        Self::add(&self.ingest_quarantined_panic, traffic.quarantined_panic);
        Self::add(&self.ingest_frame_nanos, traffic.frame_nanos);
        Self::add(&self.ingest_decode_nanos, traffic.decode_nanos);
        Self::add(&self.ingest_wall_nanos, traffic.wall_nanos);
    }

    pub fn add_ingest_nanos(&self, n: u64) {
        Self::add(&self.ingest_nanos, n);
    }
    pub fn add_series_nanos(&self, n: u64) {
        Self::add(&self.series_nanos, n);
    }
    pub fn add_aggregate_nanos(&self, n: u64) {
        Self::add(&self.aggregate_nanos, n);
    }
    pub fn add_detect_nanos(&self, n: u64) {
        Self::add(&self.detect_nanos, n);
    }

    /// Record the run's elapsed wall time (driver calls this once).
    pub fn set_wall(&self, timer: &StageTimer) {
        self.wall_nanos
            .store(timer.elapsed_nanos(), Ordering::Relaxed);
    }

    /// A plain-value copy of every counter, for reporting.
    pub fn snapshot(&self) -> RunMetricsSnapshot {
        let get = |f: &AtomicU64| f.load(Ordering::Relaxed);
        RunMetricsSnapshot {
            traceroutes_ingested: get(&self.traceroutes_ingested),
            traceroutes_out_of_period: get(&self.traceroutes_out_of_period),
            bins_discarded_sanity: get(&self.bins_discarded_sanity),
            bins_interpolated: get(&self.bins_interpolated),
            welch_segments: get(&self.welch_segments),
            populations_analyzed: get(&self.populations_analyzed),
            populations_with_detection: get(&self.populations_with_detection),
            tasks_failed: get(&self.tasks_failed),
            store: StoreStats {
                hits: get(&self.store_hits),
                misses: get(&self.store_misses),
                bypasses: get(&self.store_bypasses),
                inserts: get(&self.store_inserts),
                evictions: get(&self.store_evictions),
                snapshot_bytes_written: get(&self.store_bytes_written),
                snapshot_bytes_read: get(&self.store_bytes_read),
                snapshot_save_nanos: get(&self.store_save_nanos),
                snapshot_load_nanos: get(&self.store_load_nanos),
            },
            ingest: {
                let wall = get(&self.ingest_wall_nanos);
                let records = get(&self.ingest_records_decoded);
                IngestStats {
                    bytes_read: get(&self.ingest_bytes_read),
                    records_decoded: records,
                    records_per_sec: if wall > 0 {
                        records as f64 / (wall as f64 / 1e9)
                    } else {
                        0.0
                    },
                    quarantined: QuarantineStats {
                        framing: get(&self.ingest_quarantined_framing),
                        json: get(&self.ingest_quarantined_json),
                        model: get(&self.ingest_quarantined_model),
                        worker_panic: get(&self.ingest_quarantined_panic),
                    },
                    frame_nanos: get(&self.ingest_frame_nanos),
                    decode_nanos: get(&self.ingest_decode_nanos),
                    wall_nanos: wall,
                }
            },
            stage_nanos: StageNanos {
                ingest: get(&self.ingest_nanos),
                series: get(&self.series_nanos),
                aggregate: get(&self.aggregate_nanos),
                detect: get(&self.detect_nanos),
                wall: get(&self.wall_nanos),
            },
        }
    }
}

/// One batch of series-store counter deltas, as reported by a store's
/// counter diff between two points of a run. Plain data so `lastmile-obs`
/// needs no dependency on `lastmile-store`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreTraffic {
    pub hits: u64,
    pub misses: u64,
    pub bypasses: u64,
    pub inserts: u64,
    pub evictions: u64,
}

/// One file ingest's counter deltas, as reported by the decode layer.
/// Plain data so `lastmile-obs` needs no dependency on `lastmile-ingest`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestTraffic {
    pub bytes_read: u64,
    pub records_decoded: u64,
    pub quarantined_framing: u64,
    pub quarantined_json: u64,
    pub quarantined_model: u64,
    pub quarantined_panic: u64,
    /// Nanoseconds the framing reader spent splitting records (one
    /// thread).
    pub frame_nanos: u64,
    /// Nanoseconds parse workers spent decoding, summed across workers
    /// (may exceed the ingest wall time).
    pub decode_nanos: u64,
    /// Elapsed time of the ingest, start to drain.
    pub wall_nanos: u64,
}

/// Quarantined-record counts by error kind; the typed taxonomy of the
/// `--quarantine` triage dump.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct QuarantineStats {
    pub framing: u64,
    pub json: u64,
    pub model: u64,
    pub worker_panic: u64,
}

/// File-ingest traffic of one run; all zero when nothing was read from
/// disk. `records_per_sec` is derived from `records_decoded` over
/// `wall_nanos` at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct IngestStats {
    pub bytes_read: u64,
    pub records_decoded: u64,
    pub records_per_sec: f64,
    pub quarantined: QuarantineStats,
    pub frame_nanos: u64,
    pub decode_nanos: u64,
    pub wall_nanos: u64,
}

/// Series-store traffic of one run; all zero when no store was attached.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct StoreStats {
    pub hits: u64,
    pub misses: u64,
    pub bypasses: u64,
    pub inserts: u64,
    pub evictions: u64,
    pub snapshot_bytes_written: u64,
    pub snapshot_bytes_read: u64,
    pub snapshot_save_nanos: u64,
    pub snapshot_load_nanos: u64,
}

/// Per-stage wall-clock nanoseconds. Stage fields sum across worker
/// threads; `wall` is the driver's elapsed time.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct StageNanos {
    pub ingest: u64,
    pub series: u64,
    pub aggregate: u64,
    pub detect: u64,
    pub wall: u64,
}

/// Plain-value export of [`RunMetrics`]; serializes to the `--stats`
/// JSON document (see DESIGN.md for the schema).
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct RunMetricsSnapshot {
    pub traceroutes_ingested: u64,
    pub traceroutes_out_of_period: u64,
    pub bins_discarded_sanity: u64,
    pub bins_interpolated: u64,
    pub welch_segments: u64,
    pub populations_analyzed: u64,
    pub populations_with_detection: u64,
    pub tasks_failed: u64,
    pub store: StoreStats,
    pub ingest: IngestStats,
    pub stage_nanos: StageNanos,
}

impl RunMetricsSnapshot {
    /// The `--stats` JSON document (pretty-printed, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s =
            serde_json::to_string_pretty(self).expect("RunMetricsSnapshot serializes infallibly");
        s.push('\n');
        s
    }
}

/// Monotonic stopwatch for one stage of work.
///
/// ```
/// # use lastmile_obs::{RunMetrics, StageTimer};
/// let metrics = RunMetrics::new();
/// let t = StageTimer::start();
/// // ... stage work ...
/// metrics.add_detect_nanos(t.elapsed_nanos());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct StageTimer {
    started: Instant,
}

impl StageTimer {
    pub fn start() -> StageTimer {
        StageTimer {
            started: Instant::now(),
        }
    }

    /// Nanoseconds since `start()`, saturating at `u64::MAX` (584 years).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = RunMetrics::new();
        m.add_traceroutes_ingested(10);
        m.add_traceroutes_ingested(5);
        m.add_traceroutes_out_of_period(2);
        m.add_bins_discarded_sanity(3);
        m.add_bins_interpolated(4);
        m.add_welch_segments(7);
        m.add_population(true);
        m.add_population(false);
        m.add_task_failed();
        m.add_store_traffic(&StoreTraffic {
            hits: 6,
            misses: 2,
            bypasses: 1,
            inserts: 2,
            evictions: 1,
        });
        m.add_store_traffic(&StoreTraffic {
            hits: 1,
            ..StoreTraffic::default()
        });
        m.add_store_bytes_written(100);
        m.add_store_bytes_read(80);
        m.add_store_save_nanos(11);
        m.add_store_load_nanos(9);
        m.add_ingest_traffic(&IngestTraffic {
            bytes_read: 1000,
            records_decoded: 50,
            quarantined_framing: 1,
            quarantined_json: 2,
            quarantined_model: 3,
            quarantined_panic: 4,
            frame_nanos: 5,
            decode_nanos: 6,
            wall_nanos: 500_000_000, // 0.5 s
        });
        m.add_ingest_traffic(&IngestTraffic {
            records_decoded: 50,
            wall_nanos: 500_000_000,
            ..IngestTraffic::default()
        });
        let s = m.snapshot();
        assert_eq!(s.traceroutes_ingested, 15);
        assert_eq!(s.traceroutes_out_of_period, 2);
        assert_eq!(s.bins_discarded_sanity, 3);
        assert_eq!(s.bins_interpolated, 4);
        assert_eq!(s.welch_segments, 7);
        assert_eq!(s.populations_analyzed, 2);
        assert_eq!(s.populations_with_detection, 1);
        assert_eq!(s.tasks_failed, 1);
        assert_eq!(
            s.store,
            StoreStats {
                hits: 7,
                misses: 2,
                bypasses: 1,
                inserts: 2,
                evictions: 1,
                snapshot_bytes_written: 100,
                snapshot_bytes_read: 80,
                snapshot_save_nanos: 11,
                snapshot_load_nanos: 9,
            }
        );
        assert_eq!(
            s.ingest,
            IngestStats {
                bytes_read: 1000,
                records_decoded: 100,
                records_per_sec: 100.0, // 100 records over 1 s of ingest wall
                quarantined: QuarantineStats {
                    framing: 1,
                    json: 2,
                    model: 3,
                    worker_panic: 4,
                },
                frame_nanos: 5,
                decode_nanos: 6,
                wall_nanos: 1_000_000_000,
            }
        );
    }

    #[test]
    fn shared_across_threads() {
        let m = RunMetrics::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        m.add_traceroutes_ingested(1);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().traceroutes_ingested, 4000);
    }

    #[test]
    fn timer_is_monotonic_and_wall_recorded() {
        let m = RunMetrics::new();
        let t = StageTimer::start();
        let a = t.elapsed_nanos();
        let b = t.elapsed_nanos();
        assert!(b >= a);
        m.set_wall(&t);
        assert!(m.snapshot().stage_nanos.wall >= b);
    }

    #[test]
    fn snapshot_serializes_every_field() {
        let m = RunMetrics::new();
        m.add_traceroutes_ingested(1);
        let json = m.snapshot().to_json();
        for key in [
            "traceroutes_ingested",
            "traceroutes_out_of_period",
            "bins_discarded_sanity",
            "bins_interpolated",
            "welch_segments",
            "populations_analyzed",
            "populations_with_detection",
            "tasks_failed",
            "store",
            "hits",
            "misses",
            "bypasses",
            "inserts",
            "evictions",
            "snapshot_bytes_written",
            "snapshot_bytes_read",
            "snapshot_save_nanos",
            "snapshot_load_nanos",
            "ingest",
            "bytes_read",
            "records_decoded",
            "records_per_sec",
            "quarantined",
            "framing",
            "json",
            "model",
            "worker_panic",
            "frame_nanos",
            "decode_nanos",
            "wall_nanos",
            "stage_nanos",
            "wall",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.ends_with('\n'));
    }
}
