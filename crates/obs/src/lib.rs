//! Run observability for the survey pipeline.
//!
//! [`RunMetrics`] is a set of lock-free counters and stage-time
//! accumulators shared (by reference) between the survey workers.  Each
//! counter names one of the §2 pipeline filters or stages of the paper:
//!
//! * `traceroutes_ingested` — built-in measurements streamed into an
//!   [`AsPipeline`] (after probe selection).
//! * `traceroutes_out_of_period` — dropped because their timestamp fell
//!   outside the measurement period (§2's period cut).
//! * `bins_discarded_sanity` — 30-minute probe bins discarded by the
//!   "at least N traceroutes per bin" sanity filter (§2).
//! * `bins_interpolated` — gaps in the aggregated signal filled by
//!   linear interpolation before spectral analysis.
//! * `welch_segments` — segments averaged by the Welch periodogram
//!   across all detections.
//! * `populations_analyzed` / `populations_with_detection` — (AS,
//!   period) populations processed, and the subset that passed the
//!   probe-coverage gate and produced a [`Detection`].
//! * `tasks_failed` — survey tasks whose worker panicked; the executor
//!   isolates these per task instead of aborting the run.
//! * `store_*` — series-store traffic when a run is given a
//!   `lastmile-store` cache: lookup hits/misses/bypasses, entries
//!   inserted and evicted, snapshot bytes written/read and the
//!   nanoseconds spent saving/loading snapshots. A warm run over stored
//!   probes shows `store_hits > 0` and `traceroutes_ingested == 0`.
//! * `ingest_*` — file-ingest traffic when a run decodes traceroutes
//!   from disk through `lastmile-ingest`: bytes read, records decoded,
//!   quarantined records by error kind (framing / JSON / model
//!   conversion / worker panic), and per-stage decode timers (framing
//!   vs parse, plus the ingest wall clock the throughput is computed
//!   against).
//!
//! Stage timers accumulate wall-clock nanoseconds measured with the
//! monotonic [`std::time::Instant`] clock; under a multi-threaded
//! executor they sum *across* workers, so stage totals can exceed the
//! elapsed `wall_nanos`.
//!
//! Beyond the counters, the crate carries the rest of the observability
//! layer:
//!
//! * [`trace`] — a dependency-free span tracer (per-thread lock-free
//!   ring buffers, drained into Chrome trace-event JSON for
//!   Perfetto/`chrome://tracing`), installed by the CLI's `--trace`.
//! * [`hist`] — log-linear latency histograms; [`RunMetrics`] holds one
//!   each for per-record decode, per-probe series build, and
//!   per-population analyze, summarized as p50/p90/p99/max under the
//!   `latency` key of the `--stats` JSON.
//! * [`PopulationRow`] — the per-(ASN, period) metrics table
//!   (`populations` in `--stats`, optional CSV via the CLI).
//! * [`LiveProgress`] — live gauges (bytes, records, queue depth,
//!   populations done/total) feeding the CLI's `--progress` heartbeat.
//!
//! [`AsPipeline`]: ../lastmile_core/pipeline/struct.AsPipeline.html
//! [`Detection`]: ../lastmile_core/detect/struct.Detection.html

pub mod hist;
pub mod ops;
pub mod prom;
pub mod trace;

pub use hist::{AtomicHistogram, Histogram, HistogramSummary};
pub use ops::{EpochRecord, EpochTelemetry, OpsTimeline, TimelinePoint, TimelineSample};

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Lock-free counters for one survey / classification run.
///
/// All methods take `&self`; share between threads by reference.
/// Counters use relaxed ordering — they are statistics, not
/// synchronisation, and the executor's channel/join already orders the
/// final read after every write.
#[derive(Debug, Default)]
pub struct RunMetrics {
    traceroutes_ingested: AtomicU64,
    traceroutes_out_of_period: AtomicU64,
    bins_discarded_sanity: AtomicU64,
    bins_interpolated: AtomicU64,
    welch_segments: AtomicU64,
    populations_analyzed: AtomicU64,
    populations_with_detection: AtomicU64,
    tasks_failed: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_bypasses: AtomicU64,
    store_inserts: AtomicU64,
    store_evictions: AtomicU64,
    store_bytes_written: AtomicU64,
    store_bytes_read: AtomicU64,
    store_save_nanos: AtomicU64,
    store_load_nanos: AtomicU64,
    ingest_bytes_read: AtomicU64,
    ingest_records_decoded: AtomicU64,
    ingest_quarantined_framing: AtomicU64,
    ingest_quarantined_json: AtomicU64,
    ingest_quarantined_model: AtomicU64,
    ingest_quarantined_panic: AtomicU64,
    ingest_frame_nanos: AtomicU64,
    ingest_decode_nanos: AtomicU64,
    ingest_wall_nanos: AtomicU64,
    ingest_queue_max_depth: AtomicU64,
    /// Per-record decode latency (merged from ingest workers).
    decode_hist: AtomicHistogram,
    /// Per-probe series-build latency (merged from population stats).
    series_hist: AtomicHistogram,
    /// Per-population analyze latency (one sample per (ASN, period)).
    analyze_hist: AtomicHistogram,
    /// Per-population rows, pushed once per analyzed population. A
    /// Mutex, not an atomic — populations complete at most a few
    /// thousand times per run, far off any hot path.
    populations: Mutex<Vec<PopulationRow>>,
    /// Summed across workers (may exceed wall time).
    ingest_nanos: AtomicU64,
    series_nanos: AtomicU64,
    aggregate_nanos: AtomicU64,
    detect_nanos: AtomicU64,
    /// Elapsed time of the whole run (set once by the driver).
    wall_nanos: AtomicU64,
}

impl RunMetrics {
    pub fn new() -> RunMetrics {
        RunMetrics::default()
    }

    /// Add `n` to a counter. Used via the named helpers below.
    fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_traceroutes_ingested(&self, n: u64) {
        Self::add(&self.traceroutes_ingested, n);
    }
    pub fn add_traceroutes_out_of_period(&self, n: u64) {
        Self::add(&self.traceroutes_out_of_period, n);
    }
    pub fn add_bins_discarded_sanity(&self, n: u64) {
        Self::add(&self.bins_discarded_sanity, n);
    }
    pub fn add_bins_interpolated(&self, n: u64) {
        Self::add(&self.bins_interpolated, n);
    }
    pub fn add_welch_segments(&self, n: u64) {
        Self::add(&self.welch_segments, n);
    }
    pub fn add_population(&self, with_detection: bool) {
        Self::add(&self.populations_analyzed, 1);
        if with_detection {
            Self::add(&self.populations_with_detection, 1);
        }
    }
    pub fn add_task_failed(&self) {
        Self::add(&self.tasks_failed, 1);
    }

    /// Record one batch of series-store lookup/insert traffic.
    pub fn add_store_traffic(&self, traffic: &StoreTraffic) {
        Self::add(&self.store_hits, traffic.hits);
        Self::add(&self.store_misses, traffic.misses);
        Self::add(&self.store_bypasses, traffic.bypasses);
        Self::add(&self.store_inserts, traffic.inserts);
        Self::add(&self.store_evictions, traffic.evictions);
    }
    pub fn add_store_bytes_written(&self, n: u64) {
        Self::add(&self.store_bytes_written, n);
    }
    pub fn add_store_bytes_read(&self, n: u64) {
        Self::add(&self.store_bytes_read, n);
    }
    pub fn add_store_save_nanos(&self, n: u64) {
        Self::add(&self.store_save_nanos, n);
    }
    pub fn add_store_load_nanos(&self, n: u64) {
        Self::add(&self.store_load_nanos, n);
    }

    /// Record one file ingest's traffic (a classify run that streams the
    /// input twice calls this once per pass; quarantine counts should be
    /// reported for one pass only so they stay per-file exact).
    pub fn add_ingest_traffic(&self, traffic: &IngestTraffic) {
        Self::add(&self.ingest_bytes_read, traffic.bytes_read);
        Self::add(&self.ingest_records_decoded, traffic.records_decoded);
        Self::add(
            &self.ingest_quarantined_framing,
            traffic.quarantined_framing,
        );
        Self::add(&self.ingest_quarantined_json, traffic.quarantined_json);
        Self::add(&self.ingest_quarantined_model, traffic.quarantined_model);
        Self::add(&self.ingest_quarantined_panic, traffic.quarantined_panic);
        Self::add(&self.ingest_frame_nanos, traffic.frame_nanos);
        Self::add(&self.ingest_decode_nanos, traffic.decode_nanos);
        Self::add(&self.ingest_wall_nanos, traffic.wall_nanos);
        self.ingest_queue_max_depth
            .fetch_max(traffic.queue_max_depth, Ordering::Relaxed);
    }

    /// Merge per-record decode latencies collected by an ingest.
    pub fn merge_decode_hist(&self, hist: &Histogram) {
        self.decode_hist.merge(hist);
    }

    /// Merge per-probe series-build latencies from one population.
    pub fn merge_series_hist(&self, hist: &Histogram) {
        self.series_hist.merge(hist);
    }

    /// Record one population's end-to-end analyze latency and its row in
    /// the per-population table.
    pub fn record_population_row(&self, row: PopulationRow) {
        self.analyze_hist.record(row.nanos);
        self.populations
            .lock()
            .expect("population table lock")
            .push(row);
    }

    pub fn add_ingest_nanos(&self, n: u64) {
        Self::add(&self.ingest_nanos, n);
    }
    pub fn add_series_nanos(&self, n: u64) {
        Self::add(&self.series_nanos, n);
    }
    pub fn add_aggregate_nanos(&self, n: u64) {
        Self::add(&self.aggregate_nanos, n);
    }
    pub fn add_detect_nanos(&self, n: u64) {
        Self::add(&self.detect_nanos, n);
    }

    /// Record the run's elapsed wall time (driver calls this once).
    pub fn set_wall(&self, timer: &StageTimer) {
        self.wall_nanos
            .store(timer.elapsed_nanos(), Ordering::Relaxed);
    }

    /// A plain-value copy of every counter, for reporting. The
    /// per-population table is sorted by (asn, period) so the document
    /// is deterministic regardless of worker scheduling.
    pub fn snapshot(&self) -> RunMetricsSnapshot {
        let get = |f: &AtomicU64| f.load(Ordering::Relaxed);
        let mut populations = self
            .populations
            .lock()
            .expect("population table lock")
            .clone();
        populations.sort_by(|a, b| (a.asn, &a.period).cmp(&(b.asn, &b.period)));
        RunMetricsSnapshot {
            traceroutes_ingested: get(&self.traceroutes_ingested),
            traceroutes_out_of_period: get(&self.traceroutes_out_of_period),
            bins_discarded_sanity: get(&self.bins_discarded_sanity),
            bins_interpolated: get(&self.bins_interpolated),
            welch_segments: get(&self.welch_segments),
            populations_analyzed: get(&self.populations_analyzed),
            populations_with_detection: get(&self.populations_with_detection),
            tasks_failed: get(&self.tasks_failed),
            store: StoreStats {
                hits: get(&self.store_hits),
                misses: get(&self.store_misses),
                bypasses: get(&self.store_bypasses),
                inserts: get(&self.store_inserts),
                evictions: get(&self.store_evictions),
                snapshot_bytes_written: get(&self.store_bytes_written),
                snapshot_bytes_read: get(&self.store_bytes_read),
                snapshot_save_nanos: get(&self.store_save_nanos),
                snapshot_load_nanos: get(&self.store_load_nanos),
            },
            ingest: {
                let wall = get(&self.ingest_wall_nanos);
                let records = get(&self.ingest_records_decoded);
                IngestStats {
                    bytes_read: get(&self.ingest_bytes_read),
                    records_decoded: records,
                    records_per_sec: if wall > 0 {
                        records as f64 / (wall as f64 / 1e9)
                    } else {
                        0.0
                    },
                    quarantined: QuarantineStats {
                        framing: get(&self.ingest_quarantined_framing),
                        json: get(&self.ingest_quarantined_json),
                        model: get(&self.ingest_quarantined_model),
                        worker_panic: get(&self.ingest_quarantined_panic),
                    },
                    frame_nanos: get(&self.ingest_frame_nanos),
                    decode_nanos: get(&self.ingest_decode_nanos),
                    wall_nanos: wall,
                    queue_max_depth: get(&self.ingest_queue_max_depth),
                }
            },
            latency: LatencyStats {
                decode: self.decode_hist.summary(),
                series: self.series_hist.summary(),
                analyze: self.analyze_hist.summary(),
                bucket_count: hist::BUCKET_COUNT as u64,
            },
            stage_nanos: StageNanos {
                ingest: get(&self.ingest_nanos),
                series: get(&self.series_nanos),
                aggregate: get(&self.aggregate_nanos),
                detect: get(&self.detect_nanos),
                wall: get(&self.wall_nanos),
            },
            populations,
        }
    }
}

/// One batch of series-store counter deltas, as reported by a store's
/// counter diff between two points of a run. Plain data so `lastmile-obs`
/// needs no dependency on `lastmile-store`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreTraffic {
    pub hits: u64,
    pub misses: u64,
    pub bypasses: u64,
    pub inserts: u64,
    pub evictions: u64,
}

/// One file ingest's counter deltas, as reported by the decode layer.
/// Plain data so `lastmile-obs` needs no dependency on `lastmile-ingest`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestTraffic {
    pub bytes_read: u64,
    pub records_decoded: u64,
    pub quarantined_framing: u64,
    pub quarantined_json: u64,
    pub quarantined_model: u64,
    pub quarantined_panic: u64,
    /// Nanoseconds the framing reader spent splitting records (one
    /// thread).
    pub frame_nanos: u64,
    /// Nanoseconds parse workers spent decoding, summed across workers
    /// (may exceed the ingest wall time).
    pub decode_nanos: u64,
    /// Elapsed time of the ingest, start to drain.
    pub wall_nanos: u64,
    /// Deepest the bounded batch queue got (batches in flight); a queue
    /// pinned at its capacity means the parse workers are the
    /// bottleneck, a queue near zero means framing/IO is.
    pub queue_max_depth: u64,
}

/// Quarantined-record counts by error kind; the typed taxonomy of the
/// `--quarantine` triage dump.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct QuarantineStats {
    pub framing: u64,
    pub json: u64,
    pub model: u64,
    pub worker_panic: u64,
}

/// File-ingest traffic of one run; all zero when nothing was read from
/// disk. `records_per_sec` is derived from `records_decoded` over
/// `wall_nanos` at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct IngestStats {
    pub bytes_read: u64,
    pub records_decoded: u64,
    pub records_per_sec: f64,
    pub quarantined: QuarantineStats,
    pub frame_nanos: u64,
    pub decode_nanos: u64,
    pub wall_nanos: u64,
    pub queue_max_depth: u64,
}

/// Series-store traffic of one run; all zero when no store was attached.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct StoreStats {
    pub hits: u64,
    pub misses: u64,
    pub bypasses: u64,
    pub inserts: u64,
    pub evictions: u64,
    pub snapshot_bytes_written: u64,
    pub snapshot_bytes_read: u64,
    pub snapshot_save_nanos: u64,
    pub snapshot_load_nanos: u64,
}

/// One analyzed (ASN, period) population: the paper's funnel counters
/// at per-population resolution, so a slow or lossy population can be
/// localized instead of disappearing into run-global sums.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct PopulationRow {
    /// Origin AS of the population (0 = "all probes").
    pub asn: u32,
    /// Measurement period label (e.g. `2019-09`, or `START..END` unix
    /// seconds for ad-hoc windows).
    pub period: String,
    /// Traceroutes offered to the population's pipeline.
    pub traceroutes: u64,
    /// Probe-bins its sanity filter discarded.
    pub bins_discarded: u64,
    /// Probes contributing data after filtering.
    pub probes: u64,
    /// Detection class name (`none`/`low`/`mild`/`severe`).
    pub class: String,
    /// Nanoseconds spent analysing it (the task's wall time).
    pub nanos: u64,
}

impl PopulationRow {
    /// Header of [`RunMetricsSnapshot::populations_csv`].
    pub const CSV_HEADER: &'static str = "asn,period,traceroutes,bins_discarded,probes,class,nanos";

    fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.asn,
            self.period,
            self.traceroutes,
            self.bins_discarded,
            self.probes,
            self.class,
            self.nanos
        )
    }
}

/// Latency distributions of the three per-item hot loops, as
/// count/p50/p90/p99/max summaries (nanoseconds). All zero when the
/// corresponding path never ran or latency recording was off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct LatencyStats {
    /// Per-record traceroute decode (ingest workers).
    pub decode: HistogramSummary,
    /// Per-probe median-series build (pipeline series stage).
    pub series: HistogramSummary,
    /// Per-population end-to-end analyze (one sample per (ASN, period)).
    pub analyze: HistogramSummary,
    /// Fixed bucket-table size of every histogram above
    /// ([`hist::BUCKET_COUNT`]); together with the log-linear layout it
    /// states the quantile precision (`1 / 16` relative) the summaries
    /// carry. Zero never occurs — the table is a compile-time constant.
    pub bucket_count: u64,
}

/// Live counters for the `--progress` heartbeat: updated by the ingest
/// pipeline and the population drivers *while they run* (unlike
/// [`RunMetrics`], which several paths only fold into at stage ends).
/// All atomics; share by `Arc`.
#[derive(Debug, Default)]
pub struct LiveProgress {
    /// Bytes read from traceroute inputs so far.
    pub bytes_read: AtomicU64,
    /// Traceroute records decoded so far.
    pub records: AtomicU64,
    /// Ingest batch queue: batches currently in flight.
    pub queue_depth: AtomicU64,
    /// Populations fully analysed so far.
    pub populations_done: AtomicU64,
    /// Total populations, once known (0 until then).
    pub populations_total: AtomicU64,
}

impl LiveProgress {
    /// Enqueue accounting for the ingest batch queue.
    pub fn queue_push(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Dequeue accounting for the ingest batch queue (saturating: a
    /// racing reader can observe push/pop out of order).
    pub fn queue_pop(&self) {
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }
}

/// Per-stage wall-clock nanoseconds. Stage fields sum across worker
/// threads; `wall` is the driver's elapsed time.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct StageNanos {
    pub ingest: u64,
    pub series: u64,
    pub aggregate: u64,
    pub detect: u64,
    pub wall: u64,
}

/// Plain-value export of [`RunMetrics`]; serializes to the `--stats`
/// JSON document (see DESIGN.md for the schema).
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct RunMetricsSnapshot {
    pub traceroutes_ingested: u64,
    pub traceroutes_out_of_period: u64,
    pub bins_discarded_sanity: u64,
    pub bins_interpolated: u64,
    pub welch_segments: u64,
    pub populations_analyzed: u64,
    pub populations_with_detection: u64,
    pub tasks_failed: u64,
    pub store: StoreStats,
    pub ingest: IngestStats,
    pub latency: LatencyStats,
    pub stage_nanos: StageNanos,
    /// Per-population table, sorted by (asn, period).
    pub populations: Vec<PopulationRow>,
}

impl RunMetricsSnapshot {
    /// The `--stats` JSON document (pretty-printed, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s =
            serde_json::to_string_pretty(self).expect("RunMetricsSnapshot serializes infallibly");
        s.push('\n');
        s
    }

    /// The per-population table as CSV (header + one row per
    /// population, trailing newline).
    pub fn populations_csv(&self) -> String {
        let mut out = String::from(PopulationRow::CSV_HEADER);
        out.push('\n');
        for row in &self.populations {
            out.push_str(&row.to_csv());
            out.push('\n');
        }
        out
    }
}

/// Monotonic stopwatch for one stage of work.
///
/// ```
/// # use lastmile_obs::{RunMetrics, StageTimer};
/// let metrics = RunMetrics::new();
/// let t = StageTimer::start();
/// // ... stage work ...
/// metrics.add_detect_nanos(t.elapsed_nanos());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct StageTimer {
    started: Instant,
}

impl StageTimer {
    pub fn start() -> StageTimer {
        StageTimer {
            started: Instant::now(),
        }
    }

    /// Nanoseconds since `start()`, saturating at `u64::MAX` (584 years).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Request-side counters, gauges, and latency histograms for the
/// `lastmile serve` daemon. All atomics; the acceptor, every worker, and
/// the `/metrics` handler share one instance by `Arc`.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted and queued (or handled inline).
    pub accepted: AtomicU64,
    /// Connections refused with 503 because the accept queue was full.
    pub rejected_busy: AtomicU64,
    /// Requests fully answered (any status), across all workers.
    pub requests: AtomicU64,
    /// Worker iterations that panicked while handling a connection. The
    /// worker survives (the panic is caught); nonzero means a handler
    /// bug.
    pub worker_panics: AtomicU64,
    /// Requests being handled right now (gauge).
    pub in_flight: AtomicU64,
    /// Connections sitting in the accept queue right now (gauge).
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_max_depth: AtomicU64,
    /// Health/metrics probes served by the fast lane while the main
    /// accept queue was saturated.
    pub fastlane_hits: AtomicU64,
    /// Per-cost-class admission accounting (budgets, admitted, shed,
    /// in-flight); the probe class (`/healthz`, `/metrics`) is never
    /// budgeted, so only the three budgeted classes appear here.
    pub admission_cheap: AdmissionClassMetrics,
    pub admission_heavy: AdmissionClassMetrics,
    pub admission_intake: AdmissionClassMetrics,
    /// Per-endpoint request latency (accept-to-response-flushed), keyed
    /// like the `/metrics` document: classify / series / populations /
    /// ingest / healthz / metrics / other.
    pub latency_classify: AtomicHistogram,
    pub latency_series: AtomicHistogram,
    pub latency_populations: AtomicHistogram,
    pub latency_ingest: AtomicHistogram,
    pub latency_healthz: AtomicHistogram,
    pub latency_metrics: AtomicHistogram,
    pub latency_other: AtomicHistogram,
    /// Requests answered without reaching a handler: queue-full and
    /// over-budget 503 sheds. Kept separate from the per-endpoint
    /// histograms (which measure served work) so shed latency — how
    /// fast the daemon turns away traffic under overload — is visible
    /// instead of silently uncounted.
    pub latency_rejected: AtomicHistogram,
}

/// Admission accounting for one cost class: its configured concurrency
/// budget (a gauge, set once at bind), how many requests it admitted or
/// shed, and how many are in a handler right now.
#[derive(Debug, Default)]
pub struct AdmissionClassMetrics {
    /// Concurrency budget the server resolved for this class (gauge).
    pub budget: AtomicU64,
    /// Requests admitted under the budget (handler ran).
    pub admitted: AtomicU64,
    /// Requests shed with 503 because the budget was exhausted.
    pub shed: AtomicU64,
    /// Requests of this class in a handler right now (gauge; never
    /// exceeds `budget`).
    pub in_flight: AtomicU64,
}

impl AdmissionClassMetrics {
    /// Try to take one budget slot; `true` means admitted (the caller
    /// must release via [`AdmissionClassMetrics::release`]).
    pub fn try_acquire(&self) -> bool {
        let budget = self.budget.load(Ordering::Relaxed);
        let admitted = self
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < budget).then_some(n + 1)
            })
            .is_ok();
        if admitted {
            self.admitted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }

    /// Return a slot taken by a successful [`try_acquire`].
    ///
    /// [`try_acquire`]: AdmissionClassMetrics::try_acquire
    pub fn release(&self) {
        let _ = self
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
    }

    fn snapshot(&self) -> AdmissionClassSnapshot {
        AdmissionClassSnapshot {
            budget: self.budget.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
        }
    }
}

/// Endpoint families a served request is attributed to (one latency
/// histogram each in [`ServeMetrics`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeEndpoint {
    Classify,
    Series,
    Populations,
    /// `POST /v1/traceroutes` — the live intake path.
    Ingest,
    Healthz,
    Metrics,
    Other,
}

impl ServeEndpoint {
    /// Stable lowercase label used in `/metrics` keys, Prometheus
    /// `endpoint` labels, and access-log lines.
    pub fn label(self) -> &'static str {
        match self {
            ServeEndpoint::Classify => "classify",
            ServeEndpoint::Series => "series",
            ServeEndpoint::Populations => "populations",
            ServeEndpoint::Ingest => "ingest",
            ServeEndpoint::Healthz => "healthz",
            ServeEndpoint::Metrics => "metrics",
            ServeEndpoint::Other => "other",
        }
    }
}

impl ServeMetrics {
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Enqueue accounting for the accept queue (tracks the high-water
    /// mark).
    pub fn queue_push(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Dequeue accounting (saturating: a racing reader can observe
    /// push/pop out of order).
    pub fn queue_pop(&self) {
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Record one shed (queue-full or over-budget 503) answered without
    /// reaching a handler. Does not count toward `requests` — that
    /// counter means "handler-served".
    pub fn record_rejected(&self, nanos: u64) {
        self.latency_rejected.record(nanos);
    }

    /// Record one answered request against its endpoint's histogram.
    pub fn record_request(&self, endpoint: ServeEndpoint, nanos: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let hist = match endpoint {
            ServeEndpoint::Classify => &self.latency_classify,
            ServeEndpoint::Series => &self.latency_series,
            ServeEndpoint::Populations => &self.latency_populations,
            ServeEndpoint::Ingest => &self.latency_ingest,
            ServeEndpoint::Healthz => &self.latency_healthz,
            ServeEndpoint::Metrics => &self.latency_metrics,
            ServeEndpoint::Other => &self.latency_other,
        };
        hist.record(nanos);
    }

    /// Plain-value export for the `/metrics` JSON document.
    pub fn snapshot(&self) -> ServeMetricsSnapshot {
        ServeMetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_max_depth: self.queue_max_depth.load(Ordering::Relaxed),
            fastlane_hits: self.fastlane_hits.load(Ordering::Relaxed),
            admission: AdmissionSnapshot {
                cheap: self.admission_cheap.snapshot(),
                heavy: self.admission_heavy.snapshot(),
                intake: self.admission_intake.snapshot(),
            },
            latency: ServeLatencyStats {
                classify: self.latency_classify.summary(),
                series: self.latency_series.summary(),
                populations: self.latency_populations.summary(),
                ingest: self.latency_ingest.summary(),
                healthz: self.latency_healthz.summary(),
                metrics: self.latency_metrics.summary(),
                other: self.latency_other.summary(),
                rejected: self.latency_rejected.summary(),
            },
        }
    }
}

/// Plain-value export of one class's [`AdmissionClassMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct AdmissionClassSnapshot {
    pub budget: u64,
    pub admitted: u64,
    pub shed: u64,
    pub in_flight: u64,
}

/// The `serve.admission` key of the `/metrics` JSON: one entry per
/// budgeted cost class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct AdmissionSnapshot {
    pub cheap: AdmissionClassSnapshot,
    pub heavy: AdmissionClassSnapshot,
    pub intake: AdmissionClassSnapshot,
}

/// Per-endpoint latency summaries inside [`ServeMetricsSnapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct ServeLatencyStats {
    pub classify: HistogramSummary,
    pub series: HistogramSummary,
    pub populations: HistogramSummary,
    pub ingest: HistogramSummary,
    pub healthz: HistogramSummary,
    pub metrics: HistogramSummary,
    pub other: HistogramSummary,
    /// Shed 503s (queue-full and over-budget), answered without
    /// reaching a handler.
    pub rejected: HistogramSummary,
}

/// Plain-value export of [`ServeMetrics`]; the `serve` key of the
/// daemon's `/metrics` JSON.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ServeMetricsSnapshot {
    pub accepted: u64,
    pub rejected_busy: u64,
    pub requests: u64,
    pub worker_panics: u64,
    pub in_flight: u64,
    pub queue_depth: u64,
    pub queue_max_depth: u64,
    pub fastlane_hits: u64,
    pub admission: AdmissionSnapshot,
    pub latency: ServeLatencyStats,
}

/// Counters and gauges for the live re-ingest engine (`lastmile-live`):
/// intake volume on both paths (append watcher + `POST
/// /v1/traceroutes`), re-analysis cadence, and the current published
/// epoch. All atomics; the engine thread, the POST handler, and the
/// `/metrics` handler share one instance by `Arc`.
#[derive(Debug, Default)]
pub struct LiveMetrics {
    /// Records accepted through live intake (watch appends + POSTs).
    pub records_ingested: AtomicU64,
    /// Value of `records_ingested` covered by the most recently
    /// published epoch (`records_ingested - records_analyzed` is the
    /// ingest-lag gauge).
    pub records_analyzed: AtomicU64,
    /// Records accepted via `POST /v1/traceroutes`.
    pub posts_accepted: AtomicU64,
    /// Records rejected (quarantined) via `POST /v1/traceroutes`.
    pub posts_rejected: AtomicU64,
    /// Append deltas slurped by the corpus-file watcher.
    pub watch_appends: AtomicU64,
    /// Truncation/rotation events (each forces a full re-ingest).
    pub watch_truncations: AtomicU64,
    /// Records the watcher quarantined (malformed appended lines).
    pub watch_quarantined: AtomicU64,
    /// Re-analyses that published a new epoch.
    pub reanalyses: AtomicU64,
    /// Re-analyses that failed (logged, epoch unchanged).
    pub reanalysis_errors: AtomicU64,
    /// Generation of the currently published analysis snapshot.
    pub epoch: AtomicU64,
    /// Wall nanoseconds the last epoch swap (pointer publish) took.
    pub swap_nanos: AtomicU64,
    /// Wall nanoseconds the last full re-analysis took.
    pub reanalysis_nanos: AtomicU64,
}

impl LiveMetrics {
    pub fn new() -> LiveMetrics {
        LiveMetrics::default()
    }

    /// Plain-value export for the `live` key of the `/metrics` JSON.
    pub fn snapshot(&self) -> LiveMetricsSnapshot {
        let ingested = self.records_ingested.load(Ordering::Relaxed);
        let analyzed = self.records_analyzed.load(Ordering::Relaxed);
        LiveMetricsSnapshot {
            records_ingested: ingested,
            ingest_lag: ingested.saturating_sub(analyzed),
            posts_accepted: self.posts_accepted.load(Ordering::Relaxed),
            posts_rejected: self.posts_rejected.load(Ordering::Relaxed),
            watch_appends: self.watch_appends.load(Ordering::Relaxed),
            watch_truncations: self.watch_truncations.load(Ordering::Relaxed),
            watch_quarantined: self.watch_quarantined.load(Ordering::Relaxed),
            reanalyses: self.reanalyses.load(Ordering::Relaxed),
            reanalysis_errors: self.reanalysis_errors.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            swap_nanos: self.swap_nanos.load(Ordering::Relaxed),
            reanalysis_nanos: self.reanalysis_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value export of [`LiveMetrics`]; the `live` key of the
/// daemon's `/metrics` JSON.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct LiveMetricsSnapshot {
    pub records_ingested: u64,
    /// Records ingested but not yet covered by a published epoch.
    pub ingest_lag: u64,
    pub posts_accepted: u64,
    pub posts_rejected: u64,
    pub watch_appends: u64,
    pub watch_truncations: u64,
    pub watch_quarantined: u64,
    pub reanalyses: u64,
    pub reanalysis_errors: u64,
    pub epoch: u64,
    pub swap_nanos: u64,
    pub reanalysis_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = RunMetrics::new();
        m.add_traceroutes_ingested(10);
        m.add_traceroutes_ingested(5);
        m.add_traceroutes_out_of_period(2);
        m.add_bins_discarded_sanity(3);
        m.add_bins_interpolated(4);
        m.add_welch_segments(7);
        m.add_population(true);
        m.add_population(false);
        m.add_task_failed();
        m.add_store_traffic(&StoreTraffic {
            hits: 6,
            misses: 2,
            bypasses: 1,
            inserts: 2,
            evictions: 1,
        });
        m.add_store_traffic(&StoreTraffic {
            hits: 1,
            ..StoreTraffic::default()
        });
        m.add_store_bytes_written(100);
        m.add_store_bytes_read(80);
        m.add_store_save_nanos(11);
        m.add_store_load_nanos(9);
        m.add_ingest_traffic(&IngestTraffic {
            bytes_read: 1000,
            records_decoded: 50,
            quarantined_framing: 1,
            quarantined_json: 2,
            quarantined_model: 3,
            quarantined_panic: 4,
            frame_nanos: 5,
            decode_nanos: 6,
            wall_nanos: 500_000_000, // 0.5 s
            queue_max_depth: 3,
        });
        m.add_ingest_traffic(&IngestTraffic {
            records_decoded: 50,
            wall_nanos: 500_000_000,
            queue_max_depth: 2, // below the max already seen
            ..IngestTraffic::default()
        });
        let mut decode = Histogram::new();
        decode.record(1_000);
        decode.record(2_000);
        m.merge_decode_hist(&decode);
        let mut series = Histogram::new();
        series.record(5_000);
        m.merge_series_hist(&series);
        m.record_population_row(PopulationRow {
            asn: 64500,
            period: "2019-09".into(),
            traceroutes: 100,
            bins_discarded: 2,
            probes: 5,
            class: "mild".into(),
            nanos: 9_000,
        });
        m.record_population_row(PopulationRow {
            asn: 64496,
            period: "2019-09".into(),
            nanos: 4_000,
            ..PopulationRow::default()
        });
        let s = m.snapshot();
        assert_eq!(s.traceroutes_ingested, 15);
        assert_eq!(s.traceroutes_out_of_period, 2);
        assert_eq!(s.bins_discarded_sanity, 3);
        assert_eq!(s.bins_interpolated, 4);
        assert_eq!(s.welch_segments, 7);
        assert_eq!(s.populations_analyzed, 2);
        assert_eq!(s.populations_with_detection, 1);
        assert_eq!(s.tasks_failed, 1);
        assert_eq!(
            s.store,
            StoreStats {
                hits: 7,
                misses: 2,
                bypasses: 1,
                inserts: 2,
                evictions: 1,
                snapshot_bytes_written: 100,
                snapshot_bytes_read: 80,
                snapshot_save_nanos: 11,
                snapshot_load_nanos: 9,
            }
        );
        assert_eq!(
            s.ingest,
            IngestStats {
                bytes_read: 1000,
                records_decoded: 100,
                records_per_sec: 100.0, // 100 records over 1 s of ingest wall
                quarantined: QuarantineStats {
                    framing: 1,
                    json: 2,
                    model: 3,
                    worker_panic: 4,
                },
                frame_nanos: 5,
                decode_nanos: 6,
                wall_nanos: 1_000_000_000,
                queue_max_depth: 3, // fetch_max, not a sum
            }
        );
        assert_eq!(s.latency.decode.count, 2);
        assert_eq!(s.latency.decode.max_nanos, 2_000);
        assert_eq!(s.latency.series.count, 1);
        // One analyze sample per recorded population.
        assert_eq!(s.latency.analyze.count, 2);
        assert_eq!(s.latency.analyze.max_nanos, 9_000);
        // The table is sorted by (asn, period) whatever the push order.
        assert_eq!(s.populations.len(), 2);
        assert_eq!(s.populations[0].asn, 64496);
        assert_eq!(s.populations[1].class, "mild");
        let csv = s.populations_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(PopulationRow::CSV_HEADER));
        assert_eq!(lines.next(), Some("64496,2019-09,0,0,0,,4000"));
        assert_eq!(lines.next(), Some("64500,2019-09,100,2,5,mild,9000"));
    }

    #[test]
    fn shared_across_threads() {
        let m = RunMetrics::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        m.add_traceroutes_ingested(1);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().traceroutes_ingested, 4000);
    }

    #[test]
    fn timer_is_monotonic_and_wall_recorded() {
        let m = RunMetrics::new();
        let t = StageTimer::start();
        let a = t.elapsed_nanos();
        let b = t.elapsed_nanos();
        assert!(b >= a);
        m.set_wall(&t);
        assert!(m.snapshot().stage_nanos.wall >= b);
    }

    #[test]
    fn snapshot_serializes_every_field() {
        let m = RunMetrics::new();
        m.add_traceroutes_ingested(1);
        let json = m.snapshot().to_json();
        for key in [
            "traceroutes_ingested",
            "traceroutes_out_of_period",
            "bins_discarded_sanity",
            "bins_interpolated",
            "welch_segments",
            "populations_analyzed",
            "populations_with_detection",
            "tasks_failed",
            "store",
            "hits",
            "misses",
            "bypasses",
            "inserts",
            "evictions",
            "snapshot_bytes_written",
            "snapshot_bytes_read",
            "snapshot_save_nanos",
            "snapshot_load_nanos",
            "ingest",
            "bytes_read",
            "records_decoded",
            "records_per_sec",
            "quarantined",
            "framing",
            "json",
            "model",
            "worker_panic",
            "frame_nanos",
            "decode_nanos",
            "wall_nanos",
            "queue_max_depth",
            "latency",
            "decode",
            "series",
            "analyze",
            "p50_nanos",
            "p90_nanos",
            "p99_nanos",
            "max_nanos",
            "count",
            "bucket_count",
            "stage_nanos",
            "wall",
            "populations",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn serve_metrics_snapshot_and_queue_gauges() {
        let m = ServeMetrics::new();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.queue_push();
        m.queue_push();
        m.queue_pop();
        m.record_request(ServeEndpoint::Classify, 1_000);
        m.record_request(ServeEndpoint::Classify, 2_000);
        m.record_request(ServeEndpoint::Healthz, 500);
        m.rejected_busy.fetch_add(1, Ordering::Relaxed);
        m.record_rejected(4_000);
        let s = m.snapshot();
        assert_eq!(s.accepted, 3);
        assert_eq!(s.rejected_busy, 1);
        // Shed answers never count as handler-served requests…
        assert_eq!(s.requests, 3);
        assert_eq!(s.worker_panics, 0);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.queue_max_depth, 2);
        assert_eq!(s.latency.classify.count, 2);
        assert_eq!(s.latency.classify.max_nanos, 2_000);
        assert_eq!(s.latency.healthz.count, 1);
        assert_eq!(s.latency.series.count, 0);
        // …but their latency lands in the dedicated rejected histogram.
        assert_eq!(s.latency.rejected.count, 1);
        assert_eq!(s.latency.rejected.max_nanos, 4_000);
        // Pop below zero saturates.
        m.queue_pop();
        m.queue_pop();
        assert_eq!(m.snapshot().queue_depth, 0);
        // The document keeps its golden keys.
        let json = serde_json::to_string_pretty(&s).expect("serve snapshot serializes");
        for key in [
            "accepted",
            "rejected_busy",
            "requests",
            "worker_panics",
            "in_flight",
            "queue_depth",
            "queue_max_depth",
            "fastlane_hits",
            "latency",
            "classify",
            "series",
            "populations",
            "ingest",
            "healthz",
            "metrics",
            "other",
            "rejected",
            "admission",
            "cheap",
            "heavy",
            "intake",
            "budget",
            "admitted",
            "shed",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn admission_class_budget_acquire_release() {
        let class = AdmissionClassMetrics::default();
        class.budget.store(2, Ordering::Relaxed);
        assert!(class.try_acquire());
        assert!(class.try_acquire());
        // Budget exhausted: third acquire sheds.
        assert!(!class.try_acquire());
        class.release();
        assert!(class.try_acquire());
        let s = class.snapshot();
        assert_eq!(s.budget, 2);
        assert_eq!(s.admitted, 3);
        assert_eq!(s.shed, 1);
        assert_eq!(s.in_flight, 2);
        class.release();
        class.release();
        // Release below zero saturates.
        class.release();
        assert_eq!(class.snapshot().in_flight, 0);
    }

    #[test]
    fn live_metrics_snapshot_lag_and_golden_keys() {
        let m = LiveMetrics::new();
        m.records_ingested.fetch_add(12, Ordering::Relaxed);
        m.records_analyzed.store(9, Ordering::Relaxed);
        m.posts_accepted.fetch_add(4, Ordering::Relaxed);
        m.posts_rejected.fetch_add(1, Ordering::Relaxed);
        m.watch_appends.fetch_add(2, Ordering::Relaxed);
        m.reanalyses.fetch_add(3, Ordering::Relaxed);
        m.epoch.store(4, Ordering::Relaxed);
        m.swap_nanos.store(1_500, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.records_ingested, 12);
        assert_eq!(s.ingest_lag, 3);
        assert_eq!(s.posts_accepted, 4);
        assert_eq!(s.posts_rejected, 1);
        assert_eq!(s.watch_appends, 2);
        assert_eq!(s.reanalyses, 3);
        assert_eq!(s.epoch, 4);
        assert_eq!(s.swap_nanos, 1_500);
        // Lag saturates rather than underflowing if analyzed races ahead.
        m.records_analyzed.store(20, Ordering::Relaxed);
        assert_eq!(m.snapshot().ingest_lag, 0);
        let json = serde_json::to_string_pretty(&s).expect("live snapshot serializes");
        for key in [
            "records_ingested",
            "ingest_lag",
            "posts_accepted",
            "posts_rejected",
            "watch_appends",
            "watch_truncations",
            "watch_quarantined",
            "reanalyses",
            "reanalysis_errors",
            "epoch",
            "swap_nanos",
            "reanalysis_nanos",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
