//! Hand-rolled span tracing: per-thread lock-free ring buffers of
//! begin / end / instant events, drained at run end into Chrome
//! trace-event JSON (loadable in Perfetto or `chrome://tracing`).
//!
//! # Design
//!
//! A [`Tracer`] owns a registry of per-thread [`ThreadBuffer`]s. Each
//! buffer is a fixed-capacity single-producer ring: only its owning
//! thread writes events (an index cached in thread-local storage finds
//! the buffer without touching the registry lock after the first event),
//! so recording is one monotonic clock read plus a relaxed/release index
//! bump — no locks, no allocation beyond the event's args. When a ring
//! wraps, the *oldest* events are overwritten and counted as dropped;
//! the drain re-balances begin/end pairs so a wrapped trace still loads.
//!
//! # Zero cost when disabled
//!
//! Nothing here runs unless a tracer is installed. Call sites go through
//! the free functions ([`span`], [`span_with`], [`instant_with`]), which
//! check one relaxed atomic and return `None` when tracing is off — the
//! argument-building closures are never invoked. The `disabled-path`
//! test below pins this to nanoseconds per call.
//!
//! # Drain contract
//!
//! [`Tracer::drain_chrome_json`] must run after worker threads have
//! quiesced (the CLI drains after its subcommand returns; every worker
//! pool in this workspace is scoped, so joining is structural). The
//! caller's own thread may keep recording up to the drain call itself.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events each thread's ring can hold before the oldest are overwritten.
pub const DEFAULT_THREAD_CAPACITY: usize = 64 * 1024;

/// A typed span/instant argument (rendered into the trace's `args`).
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

/// Arguments attached to an event, built only when tracing is enabled.
#[derive(Debug, Default)]
pub struct ArgSet(Vec<(&'static str, ArgValue)>);

impl ArgSet {
    pub fn u64(&mut self, key: &'static str, v: u64) -> &mut Self {
        self.0.push((key, ArgValue::U64(v)));
        self
    }
    pub fn i64(&mut self, key: &'static str, v: i64) -> &mut Self {
        self.0.push((key, ArgValue::I64(v)));
        self
    }
    pub fn f64(&mut self, key: &'static str, v: f64) -> &mut Self {
        self.0.push((key, ArgValue::F64(v)));
        self
    }
    pub fn str(&mut self, key: &'static str, v: impl Into<String>) -> &mut Self {
        self.0.push((key, ArgValue::Str(v.into())));
        self
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EventKind {
    Begin,
    End,
    Instant,
}

#[derive(Clone, Debug)]
struct Event {
    kind: EventKind,
    name: &'static str,
    nanos: u64,
    args: Vec<(&'static str, ArgValue)>,
}

/// One thread's event ring. Single producer (the owning thread); drained
/// by [`Tracer::drain_chrome_json`] after the thread has quiesced.
struct ThreadBuffer {
    tid: u64,
    name: String,
    slots: Box<[RefCell<Option<Event>>]>,
    /// Total events ever written; `head > capacity` means the ring
    /// wrapped and `head - capacity` oldest events were dropped.
    head: AtomicU64,
}

// SAFETY: `slots` is written only by the owning thread and read by the
// drainer strictly after that thread has quiesced (the drain contract
// above); `head`'s release store / acquire load orders the slot write
// before the drain's read.
unsafe impl Sync for ThreadBuffer {}
unsafe impl Send for ThreadBuffer {}

impl ThreadBuffer {
    fn new(tid: u64, name: String, capacity: usize) -> ThreadBuffer {
        ThreadBuffer {
            tid,
            name,
            slots: (0..capacity.max(1)).map(|_| RefCell::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Owning thread only.
    fn push(&self, event: Event) {
        let head = self.head.load(Ordering::Relaxed);
        *self.slots[(head % self.slots.len() as u64) as usize].borrow_mut() = Some(event);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Events in write order (oldest surviving first), plus the dropped
    /// count. Drain-side only.
    fn drain(&self) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let dropped = head.saturating_sub(cap);
        let mut events = Vec::with_capacity(head.min(cap) as usize);
        for i in dropped..head {
            if let Some(e) = self.slots[(i % cap) as usize].borrow().as_ref() {
                events.push(e.clone());
            }
        }
        (events, dropped)
    }
}

/// Distinguishes tracers in the thread-local buffer cache, so unit tests
/// with private tracers never cross wires with the installed global one.
static TRACER_IDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// (tracer id, this thread's buffer in that tracer). A thread rarely
    /// records into more than one tracer; the Vec handles tests that do.
    static THREAD_BUFFERS: RefCell<Vec<(usize, Arc<ThreadBuffer>)>> = const { RefCell::new(Vec::new()) };
}

/// The span tracer: thread-buffer registry plus the run's epoch.
pub struct Tracer {
    id: usize,
    epoch: Instant,
    capacity: usize,
    threads: Mutex<Vec<Arc<ThreadBuffer>>>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::with_capacity(DEFAULT_THREAD_CAPACITY)
    }
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// A tracer whose per-thread rings hold `capacity` events.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            capacity,
            threads: Mutex::new(Vec::new()),
        }
    }

    fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// This thread's buffer, registering (under the registry lock) on
    /// first use and serving from thread-local storage after.
    fn buffer(&self) -> Arc<ThreadBuffer> {
        THREAD_BUFFERS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, buf)) = cache.iter().find(|(id, _)| *id == self.id) {
                return buf.clone();
            }
            let mut threads = self.threads.lock().expect("tracer registry lock");
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{}", threads.len()));
            let buf = Arc::new(ThreadBuffer::new(threads.len() as u64, name, self.capacity));
            threads.push(buf.clone());
            cache.push((self.id, buf.clone()));
            buf
        })
    }

    fn push(&self, kind: EventKind, name: &'static str, args: Vec<(&'static str, ArgValue)>) {
        let nanos = self.now_nanos();
        self.buffer().push(Event {
            kind,
            name,
            nanos,
            args,
        });
    }

    /// Open a span; the returned guard records the end event on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_args(name, Vec::new())
    }

    /// Open a span with arguments on its begin event.
    pub fn span_with(&self, name: &'static str, build: impl FnOnce(&mut ArgSet)) -> SpanGuard<'_> {
        let mut args = ArgSet::default();
        build(&mut args);
        self.span_args(name, args.0)
    }

    fn span_args(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) -> SpanGuard<'_> {
        self.push(EventKind::Begin, name, args);
        SpanGuard { tracer: self, name }
    }

    /// Record a point-in-time event.
    pub fn instant_with(&self, name: &'static str, build: impl FnOnce(&mut ArgSet)) {
        let mut args = ArgSet::default();
        build(&mut args);
        self.push(EventKind::Instant, name, args.0);
    }

    /// Drain every thread's ring into Chrome trace-event JSON.
    ///
    /// Must run after worker threads have quiesced (see the module docs).
    /// Wrapped rings are re-balanced: end events whose begin was
    /// overwritten are skipped, and spans still open at the buffer's end
    /// are closed at their thread's last timestamp, so the output always
    /// has matched begin/end pairs per thread.
    pub fn drain_chrome_json(&self, mut w: impl Write) -> std::io::Result<()> {
        use serde_json::{to_value, Value};
        // The vendored serde_json has no `Map` type and its `json!`
        // macro takes flat literals only, so event objects are built as
        // pair-vecs directly.
        fn obj(pairs: Vec<(&str, Value)>) -> Value {
            Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        }
        fn metadata(which: &str, tid: u64, name: &str) -> Value {
            obj(vec![
                ("ph", to_value("M")),
                ("name", to_value(which)),
                ("pid", to_value(&1u32)),
                ("tid", to_value(&tid)),
                ("args", obj(vec![("name", to_value(name))])),
            ])
        }
        let threads = self.threads.lock().expect("tracer registry lock");
        writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        let mut first = true;
        let mut emit = |doc: Value, w: &mut dyn Write| -> std::io::Result<()> {
            if !std::mem::take(&mut first) {
                writeln!(w, ",")?;
            }
            write!(w, "{doc}")
        };
        emit(metadata("process_name", 0, "lastmile"), &mut w)?;
        for buf in threads.iter() {
            let (events, dropped) = buf.drain();
            emit(metadata("thread_name", buf.tid, &buf.name), &mut w)?;
            if dropped > 0 {
                emit(
                    obj(vec![
                        ("ph", to_value("i")),
                        ("name", to_value("events_dropped")),
                        ("pid", to_value(&1u32)),
                        ("tid", to_value(&buf.tid)),
                        ("ts", to_value(&0.0f64)),
                        ("s", to_value("t")),
                        ("args", obj(vec![("dropped", to_value(&dropped))])),
                    ]),
                    &mut w,
                )?;
            }
            let mut depth = 0u64;
            let last_nanos = events.last().map(|e| e.nanos).unwrap_or(0);
            for event in &events {
                let ph = match event.kind {
                    EventKind::Begin => {
                        depth += 1;
                        "B"
                    }
                    EventKind::End => {
                        if depth == 0 {
                            // Its begin was overwritten by a ring wrap.
                            continue;
                        }
                        depth -= 1;
                        "E"
                    }
                    EventKind::Instant => "i",
                };
                let mut pairs = vec![
                    ("ph", to_value(ph)),
                    ("name", to_value(event.name)),
                    ("pid", to_value(&1u32)),
                    ("tid", to_value(&buf.tid)),
                    ("ts", to_value(&(event.nanos as f64 / 1_000.0))),
                ];
                if event.kind == EventKind::Instant {
                    pairs.push(("s", to_value("t")));
                }
                if !event.args.is_empty() {
                    let args = event
                        .args
                        .iter()
                        .map(|(k, v)| {
                            let v = match v {
                                ArgValue::U64(n) => to_value(n),
                                ArgValue::I64(n) => to_value(n),
                                ArgValue::F64(n) => to_value(n),
                                ArgValue::Str(s) => to_value(s),
                            };
                            ((*k).to_string(), v)
                        })
                        .collect();
                    pairs.push(("args", Value::Object(args)));
                }
                emit(obj(pairs), &mut w)?;
            }
            // Close spans still open at the end of the buffer (a guard
            // alive at drain time, or an end lost to a ring wrap).
            for _ in 0..depth {
                emit(
                    obj(vec![
                        ("ph", to_value("E")),
                        ("name", to_value("unclosed")),
                        ("pid", to_value(&1u32)),
                        ("tid", to_value(&buf.tid)),
                        ("ts", to_value(&(last_nanos as f64 / 1_000.0))),
                    ]),
                    &mut w,
                )?;
            }
        }
        writeln!(w, "\n]}}")?;
        Ok(())
    }
}

/// An open span; records its end event when dropped. Must be dropped on
/// the thread that opened it (guards are neither `Send` nor stored).
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.push(EventKind::End, self.name, Vec::new());
    }
}

/// The process-global tracer, installed once by `--trace`.
static GLOBAL: OnceLock<Tracer> = OnceLock::new();
/// One relaxed load gates every call site; false means `span()` et al.
/// return `None` without touching `GLOBAL`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Install the process-global tracer (idempotent) and return it.
pub fn install() -> &'static Tracer {
    let t = GLOBAL.get_or_init(Tracer::new);
    ENABLED.store(true, Ordering::Release);
    t
}

/// Whether a global tracer is installed — the disabled-path fast check.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed tracer, if any.
#[inline]
pub fn installed() -> Option<&'static Tracer> {
    if enabled() {
        GLOBAL.get()
    } else {
        None
    }
}

/// Open a span on the global tracer; `None` (and no work) when tracing
/// is off. Bind the result: `let _s = trace::span("aggregate");`.
#[inline]
pub fn span(name: &'static str) -> Option<SpanGuard<'static>> {
    installed().map(|t| t.span(name))
}

/// [`span`] with arguments; the closure only runs when tracing is on.
#[inline]
pub fn span_with(
    name: &'static str,
    build: impl FnOnce(&mut ArgSet),
) -> Option<SpanGuard<'static>> {
    installed().map(|t| t.span_with(name, build))
}

/// A point-in-time event on the global tracer; no-op when tracing is off.
#[inline]
pub fn instant_with(name: &'static str, build: impl FnOnce(&mut ArgSet)) {
    if let Some(t) = installed() {
        t.instant_with(name, build);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_events(json: &str) -> Vec<serde_json::Value> {
        let doc: serde_json::Value = serde_json::from_str(json).expect("trace JSON parses");
        doc["traceEvents"]
            .as_array()
            .expect("traceEvents array")
            .clone()
    }

    fn drain_to_string(tracer: &Tracer) -> String {
        let mut out = Vec::new();
        tracer.drain_chrome_json(&mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn spans_nest_and_balance_per_thread() {
        let tracer = Tracer::new();
        {
            let _outer = tracer.span_with("outer", |a| {
                a.u64("asn", 64500).str("period", "2019-09");
            });
            let _inner = tracer.span("inner");
            tracer.instant_with("tick", |a| {
                a.i64("delta", -3).f64("ratio", 0.5);
            });
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _s = tracer.span("worker");
            });
        });
        let events = parse_events(&drain_to_string(&tracer));
        // Balanced begin/end per tid, and timestamps never regress
        // within a thread.
        let mut depth: std::collections::BTreeMap<u64, i64> = Default::default();
        let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
        for e in &events {
            let tid = e["tid"].as_u64().unwrap();
            match e["ph"].as_str().unwrap() {
                "B" => *depth.entry(tid).or_default() += 1,
                "E" => *depth.entry(tid).or_default() -= 1,
                _ => {}
            }
            if let Some(ts) = e["ts"].as_f64() {
                let prev = last_ts.entry(tid).or_insert(ts);
                assert!(ts >= *prev, "timestamps regressed on tid {tid}");
                *prev = ts;
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unbalanced: {depth:?}");
        // Args made it through typed.
        let outer = events
            .iter()
            .find(|e| e["name"] == "outer" && e["ph"] == "B")
            .expect("outer begin");
        assert_eq!(outer["args"]["asn"], 64500);
        assert_eq!(outer["args"]["period"], "2019-09");
        let tick = events.iter().find(|e| e["name"] == "tick").unwrap();
        assert_eq!(tick["ph"], "i");
        assert_eq!(tick["args"]["delta"], -3);
        // Two threads recorded, each named.
        let names: Vec<_> = events
            .iter()
            .filter(|e| e["name"] == "thread_name")
            .collect();
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn wrapped_ring_still_balances() {
        let tracer = Tracer::with_capacity(8);
        for _ in 0..100 {
            let _s = tracer.span("tight");
        }
        let _open = tracer.span("open-at-drain");
        let json = drain_to_string(&tracer);
        let events = parse_events(&json);
        let begins = events.iter().filter(|e| e["ph"] == "B").count();
        let ends = events.iter().filter(|e| e["ph"] == "E").count();
        assert_eq!(begins, ends, "wrapped trace unbalanced");
        assert!(
            events.iter().any(
                |e| e["name"] == "events_dropped" && e["args"]["dropped"].as_u64().unwrap() > 0
            ),
            "dropped count missing"
        );
        drop(_open);
    }

    #[test]
    fn global_disabled_path_is_fast_and_inert() {
        // Not installed (tests in this binary never call install()):
        // span() must return None without side effects, fast. The bound
        // is generous — the real cost is ~1 ns; this only catches an
        // accidental lock or allocation on the disabled path.
        assert!(!enabled());
        let start = Instant::now();
        const N: u32 = 1_000_000;
        for _ in 0..N {
            let s = span("never");
            assert!(s.is_none());
            instant_with("never", |_| panic!("args built while disabled"));
        }
        let per_call = start.elapsed().as_nanos() / u128::from(N);
        assert!(per_call < 1_000, "disabled span() cost {per_call} ns/call");
    }

    #[test]
    fn empty_tracer_produces_valid_json() {
        let json = drain_to_string(&Tracer::new());
        let events = parse_events(&json);
        assert_eq!(events.len(), 1, "process_name metadata only");
    }
}
