//! Hand-rolled span tracing: per-thread ring buffers of begin / end /
//! instant events, drained — incrementally while the process runs, and
//! once more at exit — into Chrome trace-event JSON (loadable in
//! Perfetto or `chrome://tracing`).
//!
//! # Design
//!
//! A [`Tracer`] owns a registry of per-thread [`ThreadBuffer`]s. Each
//! buffer is a fixed-capacity single-producer ring: only its owning
//! thread writes events (an index cached in thread-local storage finds
//! the buffer without touching the registry lock after the first event),
//! so recording is one monotonic clock read, one uncontended slot lock,
//! and a relaxed/release index bump — no allocation beyond the event's
//! args. When a ring wraps, the *oldest* undrained events are
//! overwritten and counted as dropped; the drain re-balances begin/end
//! pairs so a wrapped trace still loads.
//!
//! # Zero cost when disabled
//!
//! Nothing here runs unless a tracer is installed. Call sites go through
//! the free functions ([`span`], [`span_with`], [`instant_with`]), which
//! check one relaxed atomic and return `None` when tracing is off — the
//! argument-building closures are never invoked. The `disabled-path`
//! test below pins this to nanoseconds per call.
//!
//! # Incremental drain
//!
//! Each buffer carries a drain cursor; [`TraceSink`] consumes the events
//! recorded since the previous drain and appends them to its writer,
//! keeping per-thread begin/end depth across chunks so the finished file
//! always has matched pairs. [`TraceStream`] runs that drain on a
//! background thread every few hundred milliseconds, so a long-running
//! process (the `serve` daemon, a survey over a big corpus) persists its
//! spans as it goes instead of losing the oldest to ring wrap-around at
//! exit. Slot-level locks make the drain safe against threads that are
//! still recording; [`Tracer::drain_chrome_json`] remains the one-shot
//! form (header + everything undrained + footer) for short runs and
//! tests.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Events each thread's ring can hold before the oldest are overwritten.
pub const DEFAULT_THREAD_CAPACITY: usize = 64 * 1024;

/// A typed span/instant argument (rendered into the trace's `args`).
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

/// Arguments attached to an event, built only when tracing is enabled.
#[derive(Debug, Default)]
pub struct ArgSet(Vec<(&'static str, ArgValue)>);

impl ArgSet {
    pub fn u64(&mut self, key: &'static str, v: u64) -> &mut Self {
        self.0.push((key, ArgValue::U64(v)));
        self
    }
    pub fn i64(&mut self, key: &'static str, v: i64) -> &mut Self {
        self.0.push((key, ArgValue::I64(v)));
        self
    }
    pub fn f64(&mut self, key: &'static str, v: f64) -> &mut Self {
        self.0.push((key, ArgValue::F64(v)));
        self
    }
    pub fn str(&mut self, key: &'static str, v: impl Into<String>) -> &mut Self {
        self.0.push((key, ArgValue::Str(v.into())));
        self
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EventKind {
    Begin,
    End,
    Instant,
}

#[derive(Clone, Debug)]
struct Event {
    kind: EventKind,
    name: &'static str,
    nanos: u64,
    args: Vec<(&'static str, ArgValue)>,
}

/// One thread's event ring. Single producer (the owning thread);
/// drained by a [`TraceSink`] — possibly while the owner still records,
/// which the per-slot locks make safe.
struct ThreadBuffer {
    tid: u64,
    name: String,
    /// Slot locks are uncontended except in the instant a drain passes
    /// the owner's write position, so a push pays one CAS.
    slots: Box<[Mutex<Option<Event>>]>,
    /// Total events ever written; `head - drained > capacity` means the
    /// ring wrapped over undrained events, which are lost.
    head: AtomicU64,
    /// Total events consumed by drains. Written only under the tracer's
    /// registry lock (one drainer at a time).
    drained: AtomicU64,
}

impl ThreadBuffer {
    fn new(tid: u64, name: String, capacity: usize) -> ThreadBuffer {
        ThreadBuffer {
            tid,
            name,
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Owning thread only.
    fn push(&self, event: Event) {
        let head = self.head.load(Ordering::Relaxed);
        *self.slots[(head % self.slots.len() as u64) as usize]
            .lock()
            .expect("trace slot lock") = Some(event);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Events recorded since the last drain, in write order, plus how
    /// many were lost to ring wrap-around since then. Advances the drain
    /// cursor. One drainer at a time (the registry lock serializes).
    fn drain_new(&self) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let drained = self.drained.load(Ordering::Relaxed);
        let start = drained.max(head.saturating_sub(cap));
        let newly_dropped = start - drained;
        let mut events = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            if let Some(e) = self.slots[(i % cap) as usize]
                .lock()
                .expect("trace slot lock")
                .as_ref()
            {
                events.push(e.clone());
            }
        }
        self.drained.store(head, Ordering::Relaxed);
        (events, newly_dropped)
    }
}

/// Distinguishes tracers in the thread-local buffer cache, so unit tests
/// with private tracers never cross wires with the installed global one.
static TRACER_IDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// (tracer id, this thread's buffer in that tracer). A thread rarely
    /// records into more than one tracer; the Vec handles tests that do.
    static THREAD_BUFFERS: RefCell<Vec<(usize, Arc<ThreadBuffer>)>> = const { RefCell::new(Vec::new()) };
}

/// The span tracer: thread-buffer registry plus the run's epoch.
pub struct Tracer {
    id: usize,
    epoch: Instant,
    capacity: usize,
    threads: Mutex<Vec<Arc<ThreadBuffer>>>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::with_capacity(DEFAULT_THREAD_CAPACITY)
    }
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// A tracer whose per-thread rings hold `capacity` events.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            capacity,
            threads: Mutex::new(Vec::new()),
        }
    }

    fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// This thread's buffer, registering (under the registry lock) on
    /// first use and serving from thread-local storage after.
    fn buffer(&self) -> Arc<ThreadBuffer> {
        THREAD_BUFFERS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, buf)) = cache.iter().find(|(id, _)| *id == self.id) {
                return buf.clone();
            }
            let mut threads = self.threads.lock().expect("tracer registry lock");
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{}", threads.len()));
            let buf = Arc::new(ThreadBuffer::new(threads.len() as u64, name, self.capacity));
            threads.push(buf.clone());
            cache.push((self.id, buf.clone()));
            buf
        })
    }

    fn push(&self, kind: EventKind, name: &'static str, args: Vec<(&'static str, ArgValue)>) {
        let nanos = self.now_nanos();
        self.buffer().push(Event {
            kind,
            name,
            nanos,
            args,
        });
    }

    /// Open a span; the returned guard records the end event on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_args(name, Vec::new())
    }

    /// Open a span with arguments on its begin event.
    pub fn span_with(&self, name: &'static str, build: impl FnOnce(&mut ArgSet)) -> SpanGuard<'_> {
        let mut args = ArgSet::default();
        build(&mut args);
        self.span_args(name, args.0)
    }

    fn span_args(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) -> SpanGuard<'_> {
        self.push(EventKind::Begin, name, args);
        SpanGuard { tracer: self, name }
    }

    /// Record a point-in-time event.
    pub fn instant_with(&self, name: &'static str, build: impl FnOnce(&mut ArgSet)) {
        let mut args = ArgSet::default();
        build(&mut args);
        self.push(EventKind::Instant, name, args.0);
    }

    /// Drain every thread's new events into `sink`. Safe while worker
    /// threads are still recording (they lose at most the events they
    /// push mid-drain to the *next* drain). The registry lock serializes
    /// concurrent drainers and briefly blocks first-event registration.
    pub fn drain_into<W: Write>(&self, sink: &mut TraceSink<W>) -> std::io::Result<()> {
        let threads = self.threads.lock().expect("tracer registry lock");
        for buf in threads.iter() {
            let (events, newly_dropped) = buf.drain_new();
            sink.consume(buf.tid, &buf.name, &events, newly_dropped)?;
        }
        Ok(())
    }

    /// One-shot drain of everything not yet drained, as a complete
    /// Chrome trace-event document (header + events + footer).
    ///
    /// Wrapped rings are re-balanced: end events whose begin was
    /// overwritten are skipped, and spans still open at the buffer's end
    /// are closed at their thread's last timestamp, so the output always
    /// has matched begin/end pairs per thread.
    pub fn drain_chrome_json(&self, w: impl Write) -> std::io::Result<()> {
        let mut sink = TraceSink::new(w)?;
        self.drain_into(&mut sink)?;
        sink.finish()?;
        Ok(())
    }
}

/// Per-thread emission state a [`TraceSink`] keeps across drains.
#[derive(Debug, Default)]
struct SinkThread {
    /// Open-span depth, so end events whose begin was lost to a ring
    /// wrap are skipped and spans still open at finish can be closed.
    depth: u64,
    /// Last timestamp emitted (µs). Incremental drains clamp to it, so
    /// the file stays monotonic per thread even if a drain races a ring
    /// wrap.
    last_ts_us: f64,
    /// Events lost to wrap-around, summed across drains.
    dropped: u64,
}

/// An incremental Chrome trace-event writer: the header goes out at
/// construction, each [`Tracer::drain_into`] appends the new events, and
/// [`TraceSink::finish`] balances still-open spans and writes the
/// footer. Between drains the file is a truncated-but-parseable-so-far
/// prefix; after `finish` it is a complete document.
pub struct TraceSink<W: Write> {
    w: W,
    first: bool,
    threads: std::collections::BTreeMap<u64, SinkThread>,
}

impl<W: Write> TraceSink<W> {
    /// Start a trace document: writes the header and process metadata.
    pub fn new(mut w: W) -> std::io::Result<TraceSink<W>> {
        writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        let mut sink = TraceSink {
            w,
            first: true,
            threads: std::collections::BTreeMap::new(),
        };
        let doc = obj(vec![
            ("ph", json("M")),
            ("name", json("process_name")),
            ("pid", json(&1u32)),
            ("tid", json(&0u64)),
            ("args", obj(vec![("name", json("lastmile"))])),
        ]);
        sink.emit(doc)?;
        Ok(sink)
    }

    fn emit(&mut self, doc: serde_json::Value) -> std::io::Result<()> {
        if !std::mem::take(&mut self.first) {
            writeln!(self.w, ",")?;
        }
        write!(self.w, "{doc}")
    }

    /// Append one buffer's chunk of events.
    fn consume(
        &mut self,
        tid: u64,
        name: &str,
        events: &[Event],
        newly_dropped: u64,
    ) -> std::io::Result<()> {
        if let std::collections::btree_map::Entry::Vacant(slot) = self.threads.entry(tid) {
            slot.insert(SinkThread::default());
            let doc = obj(vec![
                ("ph", json("M")),
                ("name", json("thread_name")),
                ("pid", json(&1u32)),
                ("tid", json(&tid)),
                ("args", obj(vec![("name", json(name))])),
            ]);
            self.emit(doc)?;
        }
        if newly_dropped > 0 {
            let state = self.threads.get_mut(&tid).expect("tid just inserted");
            state.dropped += newly_dropped;
            let ts = state.last_ts_us;
            self.emit(obj(vec![
                ("ph", json("i")),
                ("name", json("events_dropped")),
                ("pid", json(&1u32)),
                ("tid", json(&tid)),
                ("ts", json(&ts)),
                ("s", json("t")),
                ("args", obj(vec![("dropped", json(&newly_dropped))])),
            ]))?;
        }
        for event in events {
            let state = self.threads.get_mut(&tid).expect("tid just inserted");
            let ph = match event.kind {
                EventKind::Begin => {
                    state.depth += 1;
                    "B"
                }
                EventKind::End => {
                    if state.depth == 0 {
                        // Its begin was overwritten by a ring wrap.
                        continue;
                    }
                    state.depth -= 1;
                    "E"
                }
                EventKind::Instant => "i",
            };
            let ts = (event.nanos as f64 / 1_000.0).max(state.last_ts_us);
            state.last_ts_us = ts;
            let mut pairs = vec![
                ("ph", json(ph)),
                ("name", json(event.name)),
                ("pid", json(&1u32)),
                ("tid", json(&tid)),
                ("ts", json(&ts)),
            ];
            if event.kind == EventKind::Instant {
                pairs.push(("s", json("t")));
            }
            if !event.args.is_empty() {
                let args = event
                    .args
                    .iter()
                    .map(|(k, v)| {
                        let v = match v {
                            ArgValue::U64(n) => json(n),
                            ArgValue::I64(n) => json(n),
                            ArgValue::F64(n) => json(n),
                            ArgValue::Str(s) => json(s),
                        };
                        ((*k).to_string(), v)
                    })
                    .collect();
                pairs.push(("args", serde_json::Value::Object(args)));
            }
            self.emit(obj(pairs))?;
        }
        self.w.flush()
    }

    /// Close spans still open (a guard alive at drain time, or an end
    /// lost to a ring wrap), write the footer, and flush.
    pub fn finish(mut self) -> std::io::Result<W> {
        let unclosed: Vec<(u64, u64, f64)> = self
            .threads
            .iter()
            .map(|(tid, s)| (*tid, s.depth, s.last_ts_us))
            .collect();
        for (tid, depth, ts) in unclosed {
            for _ in 0..depth {
                self.emit(obj(vec![
                    ("ph", json("E")),
                    ("name", json("unclosed")),
                    ("pid", json(&1u32)),
                    ("tid", json(&tid)),
                    ("ts", json(&ts)),
                ]))?;
            }
        }
        writeln!(self.w, "\n]}}")?;
        self.w.flush()?;
        Ok(self.w)
    }
}

// The vendored serde_json has no `Map` type alias and its `json!` macro
// takes flat literals only, so event objects are built as pair-vecs.
fn obj(pairs: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
    serde_json::Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn json<T: serde::Serialize + ?Sized>(v: &T) -> serde_json::Value {
    serde_json::to_value(v)
}

/// A background thread that drains the installed global tracer to a file
/// every `every`, so long-running processes persist spans incrementally
/// instead of losing the oldest to ring wrap-around at exit.
///
/// [`TraceStream::finish`] stops the thread, drains whatever the caller
/// recorded since the last tick, and completes the document — call it
/// after worker pools have quiesced for a loss-free tail.
pub struct TraceStream {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

impl TraceStream {
    /// Create `path` (truncating) and start the periodic drain of the
    /// installed global tracer. Requires [`install`] to have run.
    pub fn start(path: &str, every: Duration) -> std::io::Result<TraceStream> {
        let tracer = installed().ok_or_else(|| std::io::Error::other("no tracer installed"))?;
        TraceStream::start_with(tracer, path, every)
    }

    /// [`TraceStream::start`] against an explicit tracer (tests, or a
    /// process with more than one tracer).
    pub fn start_with(
        tracer: &'static Tracer,
        path: &str,
        every: Duration,
    ) -> std::io::Result<TraceStream> {
        let file = std::fs::File::create(path)?;
        let mut sink = TraceSink::new(std::io::BufWriter::new(file))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("trace-stream".into())
            .spawn(move || {
                // Wake every 25 ms to notice `stop` promptly; drain on
                // the `every` cadence.
                let tick = Duration::from_millis(25).min(every);
                let mut since_drain = Duration::ZERO;
                while !stop_flag.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    since_drain += tick;
                    if since_drain >= every {
                        since_drain = Duration::ZERO;
                        tracer.drain_into(&mut sink)?;
                    }
                }
                // Final drain after the caller quiesced, then the footer.
                tracer.drain_into(&mut sink)?;
                sink.finish()?;
                Ok(())
            })
            .expect("spawn trace-stream thread");
        Ok(TraceStream { stop, handle })
    }

    /// Stop the periodic drain, flush everything recorded so far, and
    /// complete the trace document.
    pub fn finish(self) -> std::io::Result<()> {
        self.stop.store(true, Ordering::Release);
        match self.handle.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("trace-stream thread panicked")),
        }
    }
}

/// An open span; records its end event when dropped. Must be dropped on
/// the thread that opened it (guards are neither `Send` nor stored).
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.push(EventKind::End, self.name, Vec::new());
    }
}

/// The process-global tracer, installed once by `--trace`.
static GLOBAL: OnceLock<Tracer> = OnceLock::new();
/// One relaxed load gates every call site; false means `span()` et al.
/// return `None` without touching `GLOBAL`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Install the process-global tracer (idempotent) and return it.
pub fn install() -> &'static Tracer {
    let t = GLOBAL.get_or_init(Tracer::new);
    ENABLED.store(true, Ordering::Release);
    t
}

/// Whether a global tracer is installed — the disabled-path fast check.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed tracer, if any.
#[inline]
pub fn installed() -> Option<&'static Tracer> {
    if enabled() {
        GLOBAL.get()
    } else {
        None
    }
}

/// Open a span on the global tracer; `None` (and no work) when tracing
/// is off. Bind the result: `let _s = trace::span("aggregate");`.
#[inline]
pub fn span(name: &'static str) -> Option<SpanGuard<'static>> {
    installed().map(|t| t.span(name))
}

/// [`span`] with arguments; the closure only runs when tracing is on.
#[inline]
pub fn span_with(
    name: &'static str,
    build: impl FnOnce(&mut ArgSet),
) -> Option<SpanGuard<'static>> {
    installed().map(|t| t.span_with(name, build))
}

/// A point-in-time event on the global tracer; no-op when tracing is off.
#[inline]
pub fn instant_with(name: &'static str, build: impl FnOnce(&mut ArgSet)) {
    if let Some(t) = installed() {
        t.instant_with(name, build);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_events(json: &str) -> Vec<serde_json::Value> {
        let doc: serde_json::Value = serde_json::from_str(json).expect("trace JSON parses");
        doc["traceEvents"]
            .as_array()
            .expect("traceEvents array")
            .clone()
    }

    fn drain_to_string(tracer: &Tracer) -> String {
        let mut out = Vec::new();
        tracer.drain_chrome_json(&mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn spans_nest_and_balance_per_thread() {
        let tracer = Tracer::new();
        {
            let _outer = tracer.span_with("outer", |a| {
                a.u64("asn", 64500).str("period", "2019-09");
            });
            let _inner = tracer.span("inner");
            tracer.instant_with("tick", |a| {
                a.i64("delta", -3).f64("ratio", 0.5);
            });
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _s = tracer.span("worker");
            });
        });
        let events = parse_events(&drain_to_string(&tracer));
        // Balanced begin/end per tid, and timestamps never regress
        // within a thread.
        let mut depth: std::collections::BTreeMap<u64, i64> = Default::default();
        let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
        for e in &events {
            let tid = e["tid"].as_u64().unwrap();
            match e["ph"].as_str().unwrap() {
                "B" => *depth.entry(tid).or_default() += 1,
                "E" => *depth.entry(tid).or_default() -= 1,
                _ => {}
            }
            if let Some(ts) = e["ts"].as_f64() {
                let prev = last_ts.entry(tid).or_insert(ts);
                assert!(ts >= *prev, "timestamps regressed on tid {tid}");
                *prev = ts;
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unbalanced: {depth:?}");
        // Args made it through typed.
        let outer = events
            .iter()
            .find(|e| e["name"] == "outer" && e["ph"] == "B")
            .expect("outer begin");
        assert_eq!(outer["args"]["asn"], 64500);
        assert_eq!(outer["args"]["period"], "2019-09");
        let tick = events.iter().find(|e| e["name"] == "tick").unwrap();
        assert_eq!(tick["ph"], "i");
        assert_eq!(tick["args"]["delta"], -3);
        // Two threads recorded, each named.
        let names: Vec<_> = events
            .iter()
            .filter(|e| e["name"] == "thread_name")
            .collect();
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn wrapped_ring_still_balances() {
        let tracer = Tracer::with_capacity(8);
        for _ in 0..100 {
            let _s = tracer.span("tight");
        }
        let _open = tracer.span("open-at-drain");
        let json = drain_to_string(&tracer);
        let events = parse_events(&json);
        let begins = events.iter().filter(|e| e["ph"] == "B").count();
        let ends = events.iter().filter(|e| e["ph"] == "E").count();
        assert_eq!(begins, ends, "wrapped trace unbalanced");
        assert!(
            events.iter().any(
                |e| e["name"] == "events_dropped" && e["args"]["dropped"].as_u64().unwrap() > 0
            ),
            "dropped count missing"
        );
        drop(_open);
    }

    #[test]
    fn global_disabled_path_is_fast_and_inert() {
        // Not installed (tests in this binary never call install()):
        // span() must return None without side effects, fast. The bound
        // is generous — the real cost is ~1 ns; this only catches an
        // accidental lock or allocation on the disabled path.
        assert!(!enabled());
        let start = Instant::now();
        const N: u32 = 1_000_000;
        for _ in 0..N {
            let s = span("never");
            assert!(s.is_none());
            instant_with("never", |_| panic!("args built while disabled"));
        }
        let per_call = start.elapsed().as_nanos() / u128::from(N);
        assert!(per_call < 1_000, "disabled span() cost {per_call} ns/call");
    }

    #[test]
    fn empty_tracer_produces_valid_json() {
        let json = drain_to_string(&Tracer::new());
        let events = parse_events(&json);
        assert_eq!(events.len(), 1, "process_name metadata only");
    }

    #[test]
    fn incremental_drain_matches_one_shot_semantics() {
        let tracer = Tracer::new();
        let mut sink = TraceSink::new(Vec::new()).unwrap();
        {
            let _a = tracer.span("first");
        }
        tracer.drain_into(&mut sink).unwrap();
        // Events recorded after a drain land in the next chunk, spans
        // left open across a chunk boundary still balance at finish.
        let _open = tracer.span_with("second", |a| {
            a.u64("chunk", 2);
        });
        tracer.instant_with("mid", |_| {});
        tracer.drain_into(&mut sink).unwrap();
        let json = String::from_utf8(sink.finish().unwrap()).unwrap();
        let events = parse_events(&json);
        let begins = events.iter().filter(|e| e["ph"] == "B").count();
        let ends = events.iter().filter(|e| e["ph"] == "E").count();
        assert_eq!(begins, 2, "both chunks' begins present");
        assert_eq!(begins, ends, "open span closed at finish");
        assert!(events.iter().any(|e| e["name"] == "mid"));
        assert_eq!(
            events.iter().filter(|e| e["name"] == "thread_name").count(),
            1,
            "thread metadata emitted once across chunks"
        );
        // Nothing double-drained: "first" appears exactly once as a B.
        assert_eq!(
            events
                .iter()
                .filter(|e| e["ph"] == "B" && e["name"] == "first")
                .count(),
            1
        );
    }

    #[test]
    fn drain_races_recorder_without_duplication() {
        // A writer thread records continuously while the main thread
        // drains repeatedly; every event must appear at most once and
        // the final document must balance.
        let tracer = Tracer::new();
        let stop = AtomicBool::new(false);
        let mut sink = TraceSink::new(Vec::new()).unwrap();
        let total = 5_000u64;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..total {
                    tracer.instant_with("evt", |a| {
                        a.u64("i", i);
                    });
                }
                stop.store(true, Ordering::Release);
            });
            while !stop.load(Ordering::Acquire) {
                tracer.drain_into(&mut sink).unwrap();
            }
        });
        tracer.drain_into(&mut sink).unwrap();
        let json = String::from_utf8(sink.finish().unwrap()).unwrap();
        let events = parse_events(&json);
        let mut seen = std::collections::BTreeSet::new();
        for e in events.iter().filter(|e| e["name"] == "evt") {
            let i = e["args"]["i"].as_u64().unwrap();
            assert!(seen.insert(i), "event {i} drained twice");
        }
        assert_eq!(
            seen.len() as u64,
            total,
            "events lost without a drop marker"
        );
    }

    #[test]
    fn trace_stream_persists_incrementally_and_finishes() {
        let dir =
            std::env::temp_dir().join(format!("lastmile-trace-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.json");
        // Leaked rather than install()ed: the disabled-path test in this
        // binary asserts the global stays uninstalled.
        let tracer: &'static Tracer = Box::leak(Box::new(Tracer::new()));
        let stream =
            TraceStream::start_with(tracer, path.to_str().unwrap(), Duration::from_millis(10))
                .unwrap();
        {
            let _s = tracer.span_with("streamed", |a| {
                a.u64("n", 1);
            });
        }
        // Give the background thread at least one tick to drain.
        std::thread::sleep(Duration::from_millis(60));
        let partial = std::fs::read_to_string(&path).unwrap();
        assert!(
            partial.contains("\"streamed\""),
            "span not on disk before finish: {partial}"
        );
        stream.finish().unwrap();
        let events = parse_events(&std::fs::read_to_string(&path).unwrap());
        assert!(events
            .iter()
            .any(|e| e["name"] == "streamed" && e["ph"] == "B"));
        let begins = events.iter().filter(|e| e["ph"] == "B").count();
        let ends = events.iter().filter(|e| e["ph"] == "E").count();
        assert_eq!(begins, ends);
        std::fs::remove_dir_all(&dir).ok();
    }
}
