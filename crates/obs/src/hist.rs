//! Log-linear (HDR-style) latency histograms.
//!
//! A bare nanosecond sum says where time went in total; a histogram says
//! how it was distributed — the difference between "decode took 480 ms"
//! and "p99 decode is 40× the median, something stalls". Values are
//! bucketed log-linearly: each power-of-two octave is split into
//! [`SUB_BUCKETS`] linear sub-buckets, so relative error is bounded by
//! `1 / SUB_BUCKETS` (~6%) across the full `u64` nanosecond range with a
//! fixed, small table — no preallocation per expected range, no
//! unbounded memory for outliers.
//!
//! Two flavours share the bucketing:
//!
//! * [`Histogram`] — plain counters, single-threaded recording. Built
//!   per population / per worker, then merged.
//! * [`AtomicHistogram`] — relaxed atomic counters for the shared
//!   [`RunMetrics`](crate::RunMetrics) sinks; merging a thread-local
//!   [`Histogram`] in bulk is one `fetch_add` per non-empty bucket.
//!
//! Summaries report count / p50 / p90 / p99 / max, where percentiles are
//! the upper bound of the bucket containing that rank (a conservative
//! estimate: the true value is never above the reported one by more than
//! one sub-bucket width).
//!
//! # Quantile error bound
//!
//! A reported quantile is the **inclusive upper bound** of the bucket
//! holding the rank, clamped to the exact recorded max. Within one
//! octave `[2^k, 2^(k+1))` the [`SUB_BUCKETS`] linear sub-buckets are
//! each `2^k / SUB_BUCKETS` wide, so the reported value `r` and the true
//! rank value `t` satisfy `t <= r <= t * (1 + 1/SUB_BUCKETS)` — the
//! estimate never undershoots and overshoots by at most
//! [`MAX_RELATIVE_ERROR`] (1/16 ≈ 6.25%) relative, plus one unit of
//! rounding in the linear region `[0, SUB_BUCKETS)` where buckets are
//! exact. The oracle test `quantile_error_stays_within_documented_bound`
//! pins this against exact rank statistics across several distributions.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave. 16 bounds the relative
/// quantile error to 1/16 ≈ 6%.
const SUB_BITS: u32 = 4;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total bucket count: the linear region `[0, SUB_BUCKETS)` plus one
/// sub-divided octave per remaining bit of a `u64`.
const BUCKETS: usize = ((64 - SUB_BITS) as u64 * SUB_BUCKETS) as usize + SUB_BUCKETS as usize;

/// The fixed number of buckets every histogram carries (exposed so
/// `--stats` and the ops docs can state the memory/precision trade-off).
pub const BUCKET_COUNT: usize = BUCKETS;

/// Worst-case relative overestimate of a reported quantile versus the
/// true rank value: one sub-bucket width, `1 / SUB_BUCKETS`.
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// Bucket index of a value: identity in the linear region, then
/// `(octave, sub-bucket)` above it.
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    // Highest set bit is >= SUB_BITS here.
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) & (SUB_BUCKETS - 1);
    ((u64::from(msb - SUB_BITS + 1) * SUB_BUCKETS) + sub) as usize
}

/// Inclusive upper bound of a bucket — what percentiles report.
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let octave = (index / SUB_BUCKETS) - 1;
    let sub = index % SUB_BUCKETS;
    // The top octave's upper bound is exactly 2^64 - 1; go through u128
    // so the shift doesn't lose bits.
    let upper = ((u128::from(SUB_BUCKETS + sub + 1)) << octave) - 1;
    upper.min(u128::from(u64::MAX)) as u64
}

/// Plain log-linear histogram: single-writer counters, cheap to create
/// (the bucket table allocates on first record), cheap to merge.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// Empty until the first record — a `Default` histogram costs one
    /// pointer, so carrying one in every `PopulationStats` is free for
    /// runs that never look at it.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating; exact, not bucketed). This is
    /// what a Prometheus `_sum` series reports.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The non-empty `(inclusive upper bound, count)` buckets, in
    /// ascending order — the raw material for cumulative Prometheus
    /// `_bucket` series.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding that rank, clamped to the exact max. `None` when
    /// empty.
    ///
    /// Error bound: never below the true rank value, above it by at most
    /// [`MAX_RELATIVE_ERROR`] relative (see the module docs).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// The count / p50 / p90 / p99 / max report.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            p50_nanos: self.quantile(0.50).unwrap_or(0),
            p90_nanos: self.quantile(0.90).unwrap_or(0),
            p99_nanos: self.quantile(0.99).unwrap_or(0),
            max_nanos: self.max,
        }
    }
}

/// Shared-sink variant: relaxed atomic buckets, recorded into from any
/// thread. Allocated eagerly (it lives once per run, inside
/// [`RunMetrics`](crate::RunMetrics), not once per population).
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold a thread-local [`Histogram`] in: one `fetch_add` per
    /// non-empty bucket.
    pub fn merge(&self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (mine, &theirs) in self.buckets.iter().zip(&other.buckets) {
            if theirs > 0 {
                mine.fetch_add(theirs, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
        self.max.fetch_max(other.max, Ordering::Relaxed);
    }

    /// A plain-value copy for reporting.
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// The count / p50 / p90 / p99 / max report.
    pub fn summary(&self) -> HistogramSummary {
        self.snapshot().summary()
    }
}

/// The exported percentile report of one histogram; all zero when
/// nothing was recorded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub p50_nanos: u64,
    pub p90_nanos: u64,
    pub p99_nanos: u64,
    pub max_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_cover_u64() {
        let mut prev = 0;
        for i in 1..BUCKETS {
            let upper = bucket_upper(i);
            assert!(upper > prev, "bucket {i}: {upper} <= {prev}");
            prev = upper;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value lands in a bucket whose bounds contain it.
        for v in [1u64, 15, 16, 17, 1000, 123_456_789, u64::MAX / 3] {
            let b = bucket_of(v);
            assert!(bucket_upper(b) >= v, "{v} above its bucket upper");
            if b > 0 {
                assert!(bucket_upper(b - 1) < v, "{v} below its bucket lower");
            }
        }
    }

    #[test]
    fn quantiles_are_close_and_max_exact() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max_nanos, 10_000);
        // Bucketed quantiles overestimate by at most one sub-bucket
        // (1/16), never underestimate.
        for (q, exact) in [(s.p50_nanos, 5_000.0), (s.p90_nanos, 9_000.0)] {
            let q = q as f64;
            assert!(q >= exact * 0.999, "{q} under {exact}");
            assert!(q <= exact * (1.0 + 1.0 / 16.0) + 1.0, "{q} over {exact}");
        }
        assert!(s.p99_nanos >= s.p90_nanos && s.p90_nanos >= s.p50_nanos);
    }

    #[test]
    fn quantile_error_stays_within_documented_bound() {
        // The oracle: exact rank statistics over the recorded values.
        // Across distributions with very different shapes, the bucketed
        // quantile must never undershoot the true value and never
        // overshoot it by more than MAX_RELATIVE_ERROR relative (plus
        // one unit of rounding in the exact linear region).
        let distributions: Vec<(&str, Vec<u64>)> = vec![
            ("uniform", (1..=50_000u64).collect()),
            ("tiny_linear_region", (0..SUB_BUCKETS).collect()),
            (
                "exponentialish",
                (0..40u32).flat_map(|k| [1u64 << k; 7]).collect(),
            ),
            (
                "bimodal",
                (1..=1000u64)
                    .chain((1..=1000).map(|v| v * 1_000_000))
                    .collect(),
            ),
            ("heavy_tail", (1..=3000u64).map(|v| v * v * v).collect()),
        ];
        for (name, mut values) in distributions {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            for q in [0.01, 0.10, 0.50, 0.90, 0.99, 1.0] {
                let rank = ((q * values.len() as f64).ceil() as usize).max(1);
                let exact = values[rank - 1];
                let got = h.quantile(q).expect("non-empty");
                assert!(
                    got >= exact,
                    "{name} q={q}: {got} undershoots exact {exact}"
                );
                let bound = exact as f64 * (1.0 + MAX_RELATIVE_ERROR) + 1.0;
                assert!(
                    (got as f64) <= bound,
                    "{name} q={q}: {got} overshoots exact {exact} beyond {bound}"
                );
            }
        }
    }

    #[test]
    fn sum_is_exact_across_record_merge_and_atomic_paths() {
        let mut h = Histogram::new();
        for v in [5u64, 10, 100, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.sum(), 1_000_115);
        let mut other = Histogram::new();
        other.record(7);
        h.merge(&other);
        assert_eq!(h.sum(), 1_000_122);
        let a = AtomicHistogram::default();
        a.record(3);
        a.merge(&h);
        assert_eq!(a.snapshot().sum(), 1_000_125);
        // Saturating rather than wrapping on overflow.
        let mut top = Histogram::new();
        top.record(u64::MAX);
        top.record(1);
        assert_eq!(top.sum(), u64::MAX);
    }

    #[test]
    fn nonzero_buckets_reconstruct_count_and_cover_values() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 17, 123_456] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), h.count());
        // Ascending upper bounds, every one a real bucket boundary.
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (3, 2));
        assert_eq!(Histogram::new().nonzero_buckets().count(), 0);
        assert_eq!(BUCKET_COUNT, BUCKETS);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        assert_eq!(h.quantile(0.5), None);
        let a = AtomicHistogram::default();
        assert_eq!(a.summary(), HistogramSummary::default());
    }

    #[test]
    fn merge_matches_direct_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut direct = Histogram::new();
        for v in [3u64, 99, 1_000_000, 42] {
            a.record(v);
            direct.record(v);
        }
        for v in [7u64, 123_456, 8] {
            b.record(v);
            direct.record(v);
        }
        a.merge(&b);
        assert_eq!(a, direct);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new());
        assert_eq!(a, direct);
    }

    #[test]
    fn atomic_histogram_agrees_across_threads() {
        let a = AtomicHistogram::default();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let a = &a;
                scope.spawn(move || {
                    let mut local = Histogram::new();
                    for i in 0..1000u64 {
                        a.record(t * 1000 + i);
                        local.record(t * 1000 + i);
                    }
                    a.merge(&local);
                });
            }
        });
        let s = a.summary();
        assert_eq!(s.count, 8000);
        assert_eq!(s.max_nanos, 3999);
    }
}
