//! Property-based tests: the trie must agree with a brute-force scan.

use lastmile_prefix::{special, Prefix, PrefixTrie};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::v4(Ipv4Addr::from(bits), len))
}

fn arb_v6_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Prefix::v6(Ipv6Addr::from(bits), len))
}

/// Reference longest-prefix match: linear scan over all prefixes.
fn linear_lpm(prefixes: &[(Prefix, usize)], ip: IpAddr) -> Option<usize> {
    prefixes
        .iter()
        .filter(|(p, _)| p.contains(ip))
        .max_by_key(|(p, _)| p.len())
        .map(|&(_, v)| v)
}

proptest! {
    /// Trie lookup equals linear-scan longest match for random v4 tables.
    #[test]
    fn trie_matches_linear_scan_v4(
        prefixes in prop::collection::vec(arb_v4_prefix(), 1..40),
        addrs in prop::collection::vec(any::<u32>(), 1..40),
    ) {
        // Deduplicate identical prefixes (insert replaces, linear scan
        // would see both entries; keep the last as insert does).
        let mut tagged: Vec<(Prefix, usize)> = Vec::new();
        for (i, p) in prefixes.iter().enumerate() {
            tagged.retain(|(q, _)| q != p);
            tagged.push((*p, i));
        }
        let mut trie = PrefixTrie::new();
        for (p, i) in &tagged {
            trie.insert(*p, *i);
        }
        for a in addrs {
            let ip = IpAddr::V4(Ipv4Addr::from(a));
            let got = trie.lookup(ip).map(|(_, &v)| v);
            let want = linear_lpm(&tagged, ip);
            // Longest length is unique per length; but two same-length
            // prefixes can't both contain ip, so values must agree.
            prop_assert_eq!(got, want, "ip {}", ip);
        }
    }

    /// Same equivalence for IPv6.
    #[test]
    fn trie_matches_linear_scan_v6(
        prefixes in prop::collection::vec(arb_v6_prefix(), 1..25),
        addrs in prop::collection::vec(any::<u128>(), 1..25),
    ) {
        let mut tagged: Vec<(Prefix, usize)> = Vec::new();
        for (i, p) in prefixes.iter().enumerate() {
            tagged.retain(|(q, _)| q != p);
            tagged.push((*p, i));
        }
        let mut trie = PrefixTrie::new();
        for (p, i) in &tagged {
            trie.insert(*p, *i);
        }
        for a in addrs {
            let ip = IpAddr::V6(Ipv6Addr::from(a));
            prop_assert_eq!(trie.lookup(ip).map(|(_, &v)| v), linear_lpm(&tagged, ip));
        }
    }

    /// A prefix always contains its own nth addresses, and parsing its
    /// display round-trips.
    #[test]
    fn prefix_self_consistency(p in arb_v4_prefix(), i in 0u128..1u128 << 16) {
        let parsed: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
        if let Some(a) = p.nth_address(i) {
            prop_assert!(p.contains(a), "{} not in {}", a, p);
        }
        prop_assert!(p.contains(p.network()));
        prop_assert!(p.overlaps(&p));
    }

    /// Subnets stay within the parent and don't overlap each other.
    #[test]
    fn subnets_partition_parent(idx_a in 0u128..256, idx_b in 0u128..256) {
        let parent: Prefix = "20.0.0.0/8".parse().unwrap();
        let a = parent.subnet(16, idx_a).unwrap();
        let b = parent.subnet(16, idx_b).unwrap();
        prop_assert!(parent.overlaps(&a));
        prop_assert!(a.contains(a.network()));
        prop_assert!(parent.contains(a.network()));
        if idx_a != idx_b {
            prop_assert!(!a.overlaps(&b), "{} overlaps {}", a, b);
        } else {
            prop_assert_eq!(a, b);
        }
    }

    /// RFC1918 implies not public, for arbitrary addresses.
    #[test]
    fn rfc1918_never_public(a in any::<u32>()) {
        let ip = IpAddr::V4(Ipv4Addr::from(a));
        if special::is_rfc1918(ip) {
            prop_assert!(!special::is_public(ip));
        }
        if special::is_cgn(ip) {
            prop_assert!(!special::is_public(ip));
        }
    }
}
