//! AS-level prefix registry — the workspace's stand-in for BGP data.
//!
//! The paper needs three address-to-meaning mappings:
//!
//! 1. probe public address → **ASN** ("longest prefix match with BGP
//!    data", §2.1);
//! 2. CDN client address → **mobile or broadband** service (Appendix A:
//!    Japanese MNOs publish their mobile prefixes so web services can
//!    adapt; §4.2 filters those out of the broadband series);
//! 3. CDN client address → **IPv4 vs IPv6** (Appendix C compares the two).
//!
//! [`AsRegistry`] holds announced prefixes tagged with an owning ASN and a
//! [`PrefixRole`], answers longest-prefix-match queries through a
//! [`PrefixTrie`], and deterministically allocates non-special IPv4/IPv6
//! space so the simulator can dealt out addresses without colliding with
//! RFC1918/special-use ranges (which would confuse the hop classifier —
//! by design, since that is what the real Internet must avoid too).

use crate::prefix::Prefix;
use crate::special;
use crate::trie::PrefixTrie;
use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// An Autonomous System number.
pub type Asn = u32;

/// What service a prefix carries, as advertised by its operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PrefixRole {
    /// Fixed broadband customers (FTTH/DSL/cable).
    Broadband,
    /// Mobile (cellular) customers — the prefixes Appendix A filters out.
    Mobile,
    /// Network infrastructure (router interfaces, ISP edge).
    Infrastructure,
}

/// A registry of announced prefixes with ASN ownership and roles.
#[derive(Clone, Debug, Default)]
pub struct AsRegistry {
    trie: PrefixTrie<(Asn, PrefixRole)>,
    by_asn: BTreeMap<Asn, Vec<(Prefix, PrefixRole)>>,
}

impl AsRegistry {
    /// An empty registry.
    pub fn new() -> AsRegistry {
        AsRegistry::default()
    }

    /// Announce `prefix` as originated by `asn` with the given role.
    /// Re-announcing the same prefix replaces the previous origin.
    pub fn announce(&mut self, asn: Asn, prefix: Prefix, role: PrefixRole) {
        if let Some((old_asn, old_role)) = self.trie.insert(prefix, (asn, role)) {
            if let Some(list) = self.by_asn.get_mut(&old_asn) {
                list.retain(|(p, r)| !(p == &prefix && *r == old_role));
            }
        }
        self.by_asn.entry(asn).or_default().push((prefix, role));
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Longest-prefix match: the origin ASN of `ip`, if covered.
    pub fn asn_of(&self, ip: IpAddr) -> Option<Asn> {
        self.trie.lookup(ip).map(|(_, &(asn, _))| asn)
    }

    /// Longest-prefix match with the full origin information.
    pub fn origin_of(&self, ip: IpAddr) -> Option<(Prefix, Asn, PrefixRole)> {
        self.trie
            .lookup(ip)
            .map(|(p, &(asn, role))| (*p, asn, role))
    }

    /// Whether `ip` belongs to an announced *mobile* prefix — the
    /// Appendix A filter.
    pub fn is_mobile(&self, ip: IpAddr) -> bool {
        matches!(self.origin_of(ip), Some((_, _, PrefixRole::Mobile)))
    }

    /// All prefixes announced by `asn`.
    pub fn prefixes_of(&self, asn: Asn) -> &[(Prefix, PrefixRole)] {
        self.by_asn.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All ASNs with at least one announcement, ascending.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.by_asn.keys().copied()
    }
}

/// Deterministic allocator of globally-routable address space for the
/// simulator: hands out the `i`-th public IPv4 /16 or IPv6 /32, skipping
/// every special-use range so simulated edges and clients always pass the
/// [`special::is_public`] test.
#[derive(Clone, Debug, Default)]
pub struct SpaceAllocator {
    next_v4: usize,
    next_v6: u32,
}

impl SpaceAllocator {
    /// Fresh allocator starting at the first public block.
    pub fn new() -> SpaceAllocator {
        SpaceAllocator::default()
    }

    /// Allocate the next public IPv4 /16.
    pub fn next_v4_slash16(&mut self) -> Prefix {
        loop {
            let i = self.next_v4;
            self.next_v4 += 1;
            let first_octet = (i / 256) as u32;
            let second_octet = (i % 256) as u32;
            assert!(first_octet < 224, "IPv4 allocation space exhausted");
            let addr = Ipv4Addr::from((first_octet << 24) | (second_octet << 16));
            let prefix = Prefix::v4(addr, 16);
            // Accept only blocks whose first address is public; since all
            // special-use v4 ranges are /10 or coarser within an octet
            // boundary except the /24 documentation nets, also check a
            // mid-block address.
            let probe_mid = Ipv4Addr::from(u32::from(addr) | 0x0000_FF00);
            if special::is_public(IpAddr::V4(addr)) && special::is_public(IpAddr::V4(probe_mid)) {
                // Documentation /24s (192.0.2.0, 198.51.100.0, 203.0.113.0)
                // sit inside otherwise-public /16s; skip those /16s whole.
                let o = addr.octets();
                let poisoned = (o[0] == 192 && o[1] == 0)
                    || (o[0] == 198 && o[1] == 51)
                    || (o[0] == 203 && o[1] == 0);
                if !poisoned {
                    return prefix;
                }
            }
        }
    }

    /// Allocate the next public IPv6 /32 (carved from `2400::/12`).
    pub fn next_v6_slash32(&mut self) -> Prefix {
        let i = self.next_v6;
        self.next_v6 += 1;
        assert!(i < 1 << 20, "IPv6 allocation space exhausted");
        let bits: u128 = (0x2400u128 << 112) | ((i as u128) << 96);
        Prefix::v6(Ipv6Addr::from(bits), 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn asn_lookup_uses_longest_match() {
        let mut r = AsRegistry::new();
        r.announce(100, p("20.0.0.0/8"), PrefixRole::Broadband);
        r.announce(200, p("20.5.0.0/16"), PrefixRole::Broadband);
        assert_eq!(r.asn_of(ip("20.5.1.1")), Some(200));
        assert_eq!(r.asn_of(ip("20.6.1.1")), Some(100));
        assert_eq!(r.asn_of(ip("21.0.0.1")), None);
    }

    #[test]
    fn mobile_filtering() {
        let mut r = AsRegistry::new();
        r.announce(100, p("20.0.0.0/16"), PrefixRole::Broadband);
        r.announce(100, p("20.1.0.0/16"), PrefixRole::Mobile);
        assert!(!r.is_mobile(ip("20.0.0.1")));
        assert!(r.is_mobile(ip("20.1.0.1")));
        assert!(!r.is_mobile(ip("99.0.0.1"))); // unknown is not mobile
    }

    #[test]
    fn prefixes_of_accumulates() {
        let mut r = AsRegistry::new();
        r.announce(7, p("20.0.0.0/16"), PrefixRole::Broadband);
        r.announce(7, p("2400:cb00::/32"), PrefixRole::Broadband);
        assert_eq!(r.prefixes_of(7).len(), 2);
        assert!(r.prefixes_of(8).is_empty());
        assert_eq!(r.asns().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn reannouncement_moves_ownership() {
        let mut r = AsRegistry::new();
        r.announce(1, p("20.0.0.0/16"), PrefixRole::Broadband);
        r.announce(2, p("20.0.0.0/16"), PrefixRole::Broadband);
        assert_eq!(r.asn_of(ip("20.0.0.1")), Some(2));
        assert!(r.prefixes_of(1).is_empty());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn allocator_yields_distinct_public_blocks() {
        let mut alloc = SpaceAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let pfx = alloc.next_v4_slash16();
            assert!(seen.insert(pfx), "duplicate allocation {pfx}");
            // Every address sampled from the block must be public.
            for i in [0u128, 1, 0xFFFF, 0x1234] {
                let a = pfx.nth_address(i).unwrap();
                assert!(special::is_public(a), "{a} in {pfx} not public");
            }
        }
    }

    #[test]
    fn allocator_skips_documentation_nets() {
        let mut alloc = SpaceAllocator::new();
        for _ in 0..60000 {
            let pfx = alloc.next_v4_slash16();
            assert!(!pfx.contains(ip("192.0.2.1")), "allocated {pfx}");
            assert!(!pfx.contains(ip("198.51.100.1")));
            assert!(!pfx.contains(ip("203.0.113.1")));
            assert!(!pfx.contains(ip("100.64.0.1")));
            assert!(!pfx.contains(ip("10.0.0.1")));
            if pfx.contains(ip("223.255.0.0")) {
                break; // reached the top of unicast space
            }
        }
    }

    #[test]
    fn v6_allocator() {
        let mut alloc = SpaceAllocator::new();
        let a = alloc.next_v6_slash32();
        let b = alloc.next_v6_slash32();
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "2400::/32");
        assert_eq!(b.to_string(), "2400:1::/32");
        for i in [0u128, 99] {
            assert!(special::is_public(a.nth_address(i).unwrap()));
        }
    }
}
