//! Special-use address classification.
//!
//! The paper's hop-splitting rule is "first public IP address [...] (i.e.
//! not a RFC1918 private address)". In practice a home + access path can
//! also traverse carrier-grade NAT space (RFC 6598 `100.64.0.0/10`),
//! link-local and loopback addresses, so [`is_public`] treats every
//! IANA special-use range that can appear on a last-mile path as
//! non-public. The stricter [`is_rfc1918`] is kept for tests and for
//! callers that want the paper's literal wording.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Whether `ip` is in RFC 1918 private space (`10/8`, `172.16/12`,
/// `192.168/16`). IPv6 addresses are never RFC 1918.
pub fn is_rfc1918(ip: IpAddr) -> bool {
    match ip {
        IpAddr::V4(v4) => v4.is_private(),
        IpAddr::V6(_) => false,
    }
}

/// Whether `ip` is in RFC 6598 shared CGN space (`100.64.0.0/10`).
pub fn is_cgn(ip: IpAddr) -> bool {
    match ip {
        IpAddr::V4(v4) => {
            let o = v4.octets();
            o[0] == 100 && (o[1] & 0xC0) == 64
        }
        IpAddr::V6(_) => false,
    }
}

/// Whether an IPv4 address is publicly routable (not special-use).
fn is_public_v4(v4: Ipv4Addr) -> bool {
    let o = v4.octets();
    !(v4.is_private()
        || v4.is_loopback()
        || v4.is_link_local()
        || v4.is_unspecified()
        || v4.is_broadcast()
        || v4.is_documentation()
        || o[0] == 0
        || (o[0] == 100 && (o[1] & 0xC0) == 64) // CGN, RFC 6598
        || (o[0] == 192 && o[1] == 0 && o[2] == 0) // IETF protocol, RFC 6890
        || (o[0] == 198 && (o[1] & 0xFE) == 18) // benchmarking, RFC 2544
        || o[0] >= 224) // multicast + reserved
}

/// Whether an IPv6 address is publicly routable (global unicast).
fn is_public_v6(v6: Ipv6Addr) -> bool {
    let seg = v6.segments();
    !(v6.is_loopback()
        || v6.is_unspecified()
        || (seg[0] & 0xFE00) == 0xFC00 // unique local fc00::/7
        || (seg[0] & 0xFFC0) == 0xFE80 // link local fe80::/10
        || (seg[0] == 0x2001 && seg[1] == 0x0DB8) // documentation
        || seg[0] == 0xFF00 // multicast ff00::/8 lower bound
        || (seg[0] & 0xFF00) == 0xFF00) // multicast
}

/// The paper's hop test: is this the "first **public** IP"?
///
/// True for globally routable unicast addresses; false for every
/// special-use range a traceroute can plausibly show before the ISP edge.
pub fn is_public(ip: IpAddr) -> bool {
    match ip {
        IpAddr::V4(v4) => is_public_v4(v4),
        IpAddr::V6(v6) => is_public_v6(v6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn rfc1918_ranges() {
        assert!(is_rfc1918(ip("10.0.0.1")));
        assert!(is_rfc1918(ip("172.16.0.1")));
        assert!(is_rfc1918(ip("172.31.255.255")));
        assert!(is_rfc1918(ip("192.168.1.1")));
        assert!(!is_rfc1918(ip("172.32.0.1")));
        assert!(!is_rfc1918(ip("11.0.0.1")));
        assert!(!is_rfc1918(ip("2001:db8::1")));
    }

    #[test]
    fn cgn_range() {
        assert!(is_cgn(ip("100.64.0.1")));
        assert!(is_cgn(ip("100.127.255.255")));
        assert!(!is_cgn(ip("100.63.255.255")));
        assert!(!is_cgn(ip("100.128.0.0")));
    }

    #[test]
    fn public_v4() {
        for s in [
            "8.8.8.8",
            "203.0.112.1",
            "1.1.1.1",
            "100.63.0.1",
            "100.128.0.1",
        ] {
            assert!(is_public(ip(s)), "{s} should be public");
        }
        for s in [
            "10.1.2.3",
            "192.168.0.1",
            "172.20.0.1",
            "127.0.0.1",
            "169.254.1.1",
            "100.64.0.1",
            "0.1.2.3",
            "255.255.255.255",
            "224.0.0.1",
            "240.0.0.1",
            "192.0.2.1",    // TEST-NET-1
            "198.51.100.1", // TEST-NET-2
            "203.0.113.77", // TEST-NET-3
            "198.18.0.1",   // benchmarking
            "192.0.0.1",    // IETF protocol assignments
        ] {
            assert!(!is_public(ip(s)), "{s} should not be public");
        }
    }

    #[test]
    fn public_v6() {
        for s in ["2400:cb00::1", "2a00:1450::1", "2001:4860::8888"] {
            assert!(is_public(ip(s)), "{s} should be public");
        }
        for s in [
            "::1",
            "::",
            "fe80::1",
            "fc00::1",
            "fd12::1",
            "ff02::1",
            "2001:db8::1",
        ] {
            assert!(!is_public(ip(s)), "{s} should not be public");
        }
    }

    #[test]
    fn rfc1918_is_subset_of_non_public() {
        for s in ["10.0.0.1", "172.16.5.5", "192.168.99.99"] {
            assert!(is_rfc1918(ip(s)) && !is_public(ip(s)));
        }
    }
}
