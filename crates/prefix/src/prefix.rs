//! CIDR prefixes.
//!
//! A [`Prefix`] is an address family, a bit pattern and a mask length, with
//! the usual CIDR semantics: `contains`, `overlaps`, subnet enumeration.
//! Host bits below the mask are canonicalised to zero on construction so
//! two spellings of the same prefix compare equal.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// A CIDR prefix, IPv4 or IPv6.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prefix {
    /// An IPv4 prefix: network bits (host bits zeroed) and mask length 0–32.
    V4 { bits: u32, len: u8 },
    /// An IPv6 prefix: network bits (host bits zeroed) and mask length 0–128.
    V6 { bits: u128, len: u8 },
}

impl Prefix {
    /// Build an IPv4 prefix from an address and mask length, canonicalising
    /// host bits. Panics if `len > 32` (a malformed constant, not input
    /// data — parsing returns errors instead).
    pub fn v4(addr: Ipv4Addr, len: u8) -> Prefix {
        assert!(len <= 32, "IPv4 prefix length out of range: {len}");
        let bits = u32::from(addr) & mask32(len);
        Prefix::V4 { bits, len }
    }

    /// Build an IPv6 prefix from an address and mask length.
    /// Panics if `len > 128`.
    pub fn v6(addr: Ipv6Addr, len: u8) -> Prefix {
        assert!(len <= 128, "IPv6 prefix length out of range: {len}");
        let bits = u128::from(addr) & mask128(len);
        Prefix::V6 { bits, len }
    }

    /// Build from a generic address.
    pub fn from_ip(addr: IpAddr, len: u8) -> Prefix {
        match addr {
            IpAddr::V4(a) => Prefix::v4(a, len),
            IpAddr::V6(a) => Prefix::v6(a, len),
        }
    }

    /// The host prefix covering exactly `addr` (/32 or /128).
    pub fn host(addr: IpAddr) -> Prefix {
        match addr {
            IpAddr::V4(a) => Prefix::v4(a, 32),
            IpAddr::V6(a) => Prefix::v6(a, 128),
        }
    }

    /// Mask length.
    #[allow(clippy::len_without_is_empty)] // a prefix has no emptiness notion
    pub fn len(&self) -> u8 {
        match *self {
            Prefix::V4 { len, .. } | Prefix::V6 { len, .. } => len,
        }
    }

    /// Whether this is an IPv4 prefix.
    pub fn is_v4(&self) -> bool {
        matches!(self, Prefix::V4 { .. })
    }

    /// The network address (lowest address in the prefix).
    pub fn network(&self) -> IpAddr {
        match *self {
            Prefix::V4 { bits, .. } => IpAddr::V4(Ipv4Addr::from(bits)),
            Prefix::V6 { bits, .. } => IpAddr::V6(Ipv6Addr::from(bits)),
        }
    }

    /// Whether `ip` falls inside this prefix. Cross-family lookups are
    /// always false.
    pub fn contains(&self, ip: IpAddr) -> bool {
        match (*self, ip) {
            (Prefix::V4 { bits, len }, IpAddr::V4(a)) => (u32::from(a) & mask32(len)) == bits,
            (Prefix::V6 { bits, len }, IpAddr::V6(a)) => (u128::from(a) & mask128(len)) == bits,
            _ => false,
        }
    }

    /// Whether two prefixes share any address (one contains the other).
    pub fn overlaps(&self, other: &Prefix) -> bool {
        match (*self, *other) {
            (Prefix::V4 { bits: a, len: la }, Prefix::V4 { bits: b, len: lb }) => {
                let l = la.min(lb);
                (a & mask32(l)) == (b & mask32(l))
            }
            (Prefix::V6 { bits: a, len: la }, Prefix::V6 { bits: b, len: lb }) => {
                let l = la.min(lb);
                (a & mask128(l)) == (b & mask128(l))
            }
            _ => false,
        }
    }

    /// The `i`-th address within the prefix (offset from the network
    /// address), or `None` past the prefix size. Used by the simulator to
    /// deal out client/edge addresses deterministically.
    pub fn nth_address(&self, i: u128) -> Option<IpAddr> {
        match *self {
            Prefix::V4 { bits, len } => {
                let size = 1u64 << (32 - len);
                if i as u64 >= size {
                    return None;
                }
                Some(IpAddr::V4(Ipv4Addr::from(bits + i as u32)))
            }
            Prefix::V6 { bits, len } => {
                if len < 128 {
                    let host_bits = 128 - len;
                    if host_bits < 128 && i >> host_bits != 0 {
                        return None;
                    }
                }
                if len == 128 && i > 0 {
                    return None;
                }
                Some(IpAddr::V6(Ipv6Addr::from(bits + i)))
            }
        }
    }

    /// The `i`-th child subnet of the given longer mask length, e.g.
    /// `10.0.0.0/8` → subnet(16, 3) = `10.3.0.0/16`.
    ///
    /// Returns `None` if `new_len` is shorter than this prefix or `i`
    /// exceeds the number of children.
    pub fn subnet(&self, new_len: u8, i: u128) -> Option<Prefix> {
        match *self {
            Prefix::V4 { bits, len } => {
                if new_len < len || new_len > 32 {
                    return None;
                }
                let extra = new_len - len;
                if extra < 64 && i >= (1u128 << extra) {
                    return None;
                }
                let child = bits | ((i as u32) << (32 - new_len));
                Some(Prefix::V4 {
                    bits: child,
                    len: new_len,
                })
            }
            Prefix::V6 { bits, len } => {
                if new_len < len || new_len > 128 {
                    return None;
                }
                let extra = new_len - len;
                if extra < 128 && i >= (1u128 << extra) {
                    return None;
                }
                let child = bits | (i << (128 - new_len));
                Some(Prefix::V6 {
                    bits: child,
                    len: new_len,
                })
            }
        }
    }

    /// Most-significant-bit-first bit accessor, for the trie: bit 0 is the
    /// top bit of the address.
    pub(crate) fn bit(&self, idx: u8) -> bool {
        match *self {
            Prefix::V4 { bits, .. } => (bits >> (31 - idx)) & 1 == 1,
            Prefix::V6 { bits, .. } => (bits >> (127 - idx)) & 1 == 1,
        }
    }
}

fn mask32(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

fn mask128(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len)
    }
}

/// Error parsing a textual prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsePrefixError {
    /// Missing `/` separator.
    MissingSlash,
    /// The address part is not a valid IP address.
    BadAddress,
    /// The length part is not a number or exceeds the family's maximum.
    BadLength,
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePrefixError::MissingSlash => write!(f, "prefix must be written addr/len"),
            ParsePrefixError::BadAddress => write!(f, "invalid IP address in prefix"),
            ParsePrefixError::BadLength => write!(f, "invalid prefix length"),
        }
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Prefix, ParsePrefixError> {
        let (addr, len) = s.split_once('/').ok_or(ParsePrefixError::MissingSlash)?;
        let ip: IpAddr = addr.parse().map_err(|_| ParsePrefixError::BadAddress)?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError::BadLength)?;
        let max = if ip.is_ipv4() { 32 } else { 128 };
        if len > max {
            return Err(ParsePrefixError::BadLength);
        }
        Ok(Prefix::from_ip(ip, len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len())
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "10.0.0.0/8",
            "192.168.1.0/24",
            "0.0.0.0/0",
            "1.2.3.4/32",
            "2400:cb00::/32",
            "::/0",
        ] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn host_bits_are_canonicalised() {
        assert_eq!(p("10.1.2.3/8"), p("10.0.0.0/8"));
        assert_eq!(p("10.1.2.3/8").to_string(), "10.0.0.0/8");
        assert_eq!(p("2400:cb00::dead:beef/32"), p("2400:cb00::/32"));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "10.0.0.0".parse::<Prefix>(),
            Err(ParsePrefixError::MissingSlash)
        );
        assert_eq!(
            "banana/8".parse::<Prefix>(),
            Err(ParsePrefixError::BadAddress)
        );
        assert_eq!(
            "10.0.0.0/33".parse::<Prefix>(),
            Err(ParsePrefixError::BadLength)
        );
        assert_eq!("::/129".parse::<Prefix>(), Err(ParsePrefixError::BadLength));
        assert_eq!(
            "10.0.0.0/x".parse::<Prefix>(),
            Err(ParsePrefixError::BadLength)
        );
    }

    #[test]
    fn contains() {
        let net = p("192.168.0.0/16");
        assert!(net.contains("192.168.255.1".parse().unwrap()));
        assert!(!net.contains("192.169.0.1".parse().unwrap()));
        // Cross family is never contained.
        assert!(!net.contains("::1".parse().unwrap()));
        assert!(p("0.0.0.0/0").contains("8.8.8.8".parse().unwrap()));
        let v6 = p("2400:cb00::/32");
        assert!(v6.contains("2400:cb00:1::1".parse().unwrap()));
        assert!(!v6.contains("2400:cb01::1".parse().unwrap()));
    }

    #[test]
    fn overlaps() {
        assert!(p("10.0.0.0/8").overlaps(&p("10.1.0.0/16")));
        assert!(p("10.1.0.0/16").overlaps(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").overlaps(&p("11.0.0.0/8")));
        assert!(!p("10.0.0.0/8").overlaps(&p("::/0")));
        assert!(p("0.0.0.0/0").overlaps(&p("203.0.112.0/24")));
    }

    #[test]
    fn nth_address() {
        let net = p("10.0.0.0/30");
        assert_eq!(net.nth_address(0).unwrap().to_string(), "10.0.0.0");
        assert_eq!(net.nth_address(3).unwrap().to_string(), "10.0.0.3");
        assert_eq!(net.nth_address(4), None);
        let host = p("1.2.3.4/32");
        assert_eq!(host.nth_address(0).unwrap().to_string(), "1.2.3.4");
        assert_eq!(host.nth_address(1), None);
        let v6 = p("2400:cb00::/64");
        assert_eq!(v6.nth_address(5).unwrap().to_string(), "2400:cb00::5");
    }

    #[test]
    fn subnets() {
        let net = p("10.0.0.0/8");
        assert_eq!(net.subnet(16, 0).unwrap(), p("10.0.0.0/16"));
        assert_eq!(net.subnet(16, 255).unwrap(), p("10.255.0.0/16"));
        assert_eq!(net.subnet(16, 256), None);
        assert_eq!(net.subnet(4, 0), None); // shorter than parent
        let v6 = p("2400::/16");
        assert_eq!(v6.subnet(32, 1).unwrap(), p("2400:1::/32"));
    }

    #[test]
    fn bit_access_is_msb_first() {
        let net = p("128.0.0.0/1");
        assert!(net.bit(0));
        let net = p("64.0.0.0/2");
        assert!(!net.bit(0));
        assert!(net.bit(1));
    }

    #[test]
    fn host_prefix() {
        let h = Prefix::host("9.9.9.9".parse().unwrap());
        assert_eq!(h.len(), 32);
        assert!(h.contains("9.9.9.9".parse().unwrap()));
        assert!(!h.contains("9.9.9.8".parse().unwrap()));
    }
}
