//! Longest-prefix-match binary trie.
//!
//! The BGP-table substitute: §2.1 resolves the ASN of a probe's public
//! address by "longest prefix match with BGP data". A binary (unibit) trie
//! is the textbook structure: insert each announced prefix along its bit
//! path; a lookup walks the address bits and remembers the deepest node
//! holding a value. Lookups are O(address length) and the structure is
//! simple enough to verify against a linear scan (see the property tests).
//!
//! IPv4 and IPv6 live in separate sub-tries so cross-family matches are
//! impossible by construction.

use crate::prefix::Prefix;
use std::net::IpAddr;

#[derive(Clone, Debug)]
struct Node<V> {
    value: Option<(Prefix, V)>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn new() -> Node<V> {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A longest-prefix-match table mapping [`Prefix`]es to values.
#[derive(Clone, Debug)]
pub struct PrefixTrie<V> {
    v4: Node<V>,
    v6: Node<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// An empty table.
    pub fn new() -> PrefixTrie<V> {
        PrefixTrie {
            v4: Node::new(),
            v6: Node::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a prefix, returning the previous value if the exact prefix
    /// was already present (it is replaced).
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let root = if prefix.is_v4() {
            &mut self.v4
        } else {
            &mut self.v6
        };
        let mut node = root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.take().map(|(_, v)| v);
        node.value = Some((prefix, value));
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `ip`, with its value.
    pub fn lookup(&self, ip: IpAddr) -> Option<(&Prefix, &V)> {
        let (root, bits): (&Node<V>, u8) = match ip {
            IpAddr::V4(_) => (&self.v4, 32),
            IpAddr::V6(_) => (&self.v6, 128),
        };
        let bit_at = |i: u8| -> usize {
            match ip {
                IpAddr::V4(a) => ((u32::from(a) >> (31 - i)) & 1) as usize,
                IpAddr::V6(a) => ((u128::from(a) >> (127 - i)) & 1) as usize,
            }
        };
        let mut best: Option<(&Prefix, &V)> = None;
        let mut node = root;
        if let Some((p, v)) = &node.value {
            best = Some((p, v));
        }
        for i in 0..bits {
            match &node.children[bit_at(i)] {
                Some(child) => {
                    node = child;
                    if let Some((p, v)) = &node.value {
                        best = Some((p, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-match retrieval of a stored prefix's value.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let mut node = if prefix.is_v4() { &self.v4 } else { &self.v6 };
        for i in 0..prefix.len() {
            node = node.children[prefix.bit(i) as usize].as_deref()?;
        }
        match &node.value {
            Some((p, v)) if p == prefix => Some(v),
            _ => None,
        }
    }

    /// Iterate all stored `(prefix, value)` pairs in depth-first order.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &V)> {
        let mut stack: Vec<&Node<V>> = vec![&self.v4, &self.v6];
        std::iter::from_fn(move || {
            while let Some(node) = stack.pop() {
                for child in node.children.iter().flatten() {
                    stack.push(child);
                }
                if let Some((p, v)) = &node.value {
                    return Some((p, v));
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_wins() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");
        assert_eq!(
            t.lookup(ip("10.1.2.3")).map(|(_, v)| *v),
            Some("twentyfour")
        );
        assert_eq!(t.lookup(ip("10.1.9.9")).map(|(_, v)| *v), Some("sixteen"));
        assert_eq!(t.lookup(ip("10.9.9.9")).map(|(_, v)| *v), Some("eight"));
        assert_eq!(t.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn default_route_matches_everything_v4() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0u32);
        t.insert(p("203.0.112.0/24"), 1u32);
        assert_eq!(t.lookup(ip("8.8.8.8")).map(|(_, v)| *v), Some(0));
        assert_eq!(t.lookup(ip("203.0.112.9")).map(|(_, v)| *v), Some(1));
        // But not across families.
        assert_eq!(t.lookup(ip("2400::1")), None);
    }

    #[test]
    fn families_are_isolated() {
        let mut t = PrefixTrie::new();
        t.insert(p("::/0"), "v6");
        t.insert(p("0.0.0.0/0"), "v4");
        assert_eq!(t.lookup(ip("1.2.3.4")).map(|(_, v)| *v), Some("v4"));
        assert_eq!(t.lookup(ip("2400::1")).map(|(_, v)| *v), Some("v6"));
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip("10.0.0.1")).map(|(_, v)| *v), Some(2));
    }

    #[test]
    fn exact_get() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.0.0.0/16"), 16);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&8));
        assert_eq!(t.get(&p("10.0.0.0/16")), Some(&16));
        assert_eq!(t.get(&p("10.0.0.0/24")), None);
    }

    #[test]
    fn lookup_returns_matched_prefix() {
        let mut t = PrefixTrie::new();
        t.insert(p("100.100.0.0/16"), ());
        let (matched, _) = t.lookup(ip("100.100.5.5")).unwrap();
        assert_eq!(*matched, p("100.100.0.0/16"));
    }

    #[test]
    fn v6_longest_match() {
        let mut t = PrefixTrie::new();
        t.insert(p("2400::/16"), 16);
        t.insert(p("2400:cb00::/32"), 32);
        t.insert(p("2400:cb00:aaaa::/48"), 48);
        assert_eq!(t.lookup(ip("2400:cb00:aaaa::1")).map(|(_, v)| *v), Some(48));
        assert_eq!(t.lookup(ip("2400:cb00:bbbb::1")).map(|(_, v)| *v), Some(32));
        assert_eq!(t.lookup(ip("2400:dddd::1")).map(|(_, v)| *v), Some(16));
        assert_eq!(t.lookup(ip("2401::1")), None);
    }

    #[test]
    fn iter_visits_everything_once() {
        let mut t = PrefixTrie::new();
        let prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16", "2400::/16"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let mut seen: Vec<String> = t.iter().map(|(p, _)| p.to_string()).collect();
        seen.sort();
        let mut expect: Vec<String> = prefixes.iter().map(|s| s.to_string()).collect();
        expect.sort();
        assert_eq!(seen, expect);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn empty_trie() {
        let t: PrefixTrie<()> = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("1.2.3.4")), None);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(p("9.9.9.9/32"), "host");
        t.insert(p("9.9.9.0/24"), "net");
        assert_eq!(t.lookup(ip("9.9.9.9")).map(|(_, v)| *v), Some("host"));
        assert_eq!(t.lookup(ip("9.9.9.8")).map(|(_, v)| *v), Some("net"));
    }
}
