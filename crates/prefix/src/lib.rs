//! # lastmile-prefix
//!
//! IP prefix machinery: special-use address classification, CIDR prefixes,
//! a longest-prefix-match trie, and an AS registry that stands in for the
//! BGP table used by the paper.
//!
//! §2.1 of the IMC 2020 paper identifies the ISP edge as "the first public
//! IP address seen in the traceroute (i.e. not a RFC1918 private address)",
//! and resolves the last-mile ASN by "longest prefix match with BGP data"
//! on the probe's public address. Appendix A filters CDN log entries whose
//! client address falls in an ISP's published *mobile* prefixes.
//!
//! This crate provides those three functions:
//!
//! * [`special::is_public`] — the public/private split for traceroute hops
//!   (RFC1918, plus the other non-routable ranges a home/CGN path can
//!   legitimately show: loopback, link-local, CGN 100.64/10, …).
//! * [`PrefixTrie`] — longest-prefix match over arbitrary values, the BGP
//!   table substitute.
//! * [`AsRegistry`] — per-AS prefix ownership with broadband/mobile/IPv6
//!   roles, plus deterministic prefix allocation for the simulator.
//!
//! ## Example
//!
//! ```
//! use std::net::IpAddr;
//! use lastmile_prefix::{special, Prefix, PrefixTrie};
//!
//! // The paper's hop classification:
//! let lan: IpAddr = "192.168.1.1".parse().unwrap();
//! let edge: IpAddr = "203.0.112.1".parse().unwrap();
//! assert!(!special::is_public(lan));
//! assert!(special::is_public(edge));
//!
//! // Longest prefix match, as used to map a probe address to its ASN:
//! let mut table: PrefixTrie<u32> = PrefixTrie::new();
//! table.insert("203.0.0.0/8".parse::<Prefix>().unwrap(), 64500);
//! table.insert("203.0.112.0/24".parse::<Prefix>().unwrap(), 64501);
//! assert_eq!(table.lookup(edge).map(|(_, &asn)| asn), Some(64501));
//! ```

pub mod prefix;
pub mod registry;
pub mod special;
pub mod trie;

pub use prefix::{ParsePrefixError, Prefix};
pub use registry::{AsRegistry, Asn, PrefixRole};
pub use trie::PrefixTrie;
