//! Property-based tests for the statistics toolkit.

use lastmile_stats::{average_ranks, mean, median, pearson, quantile, spearman, Ecdf};
use proptest::prelude::*;

/// Finite, reasonably sized floats: the domain of all pipeline statistics.
fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, min_len..64)
}

proptest! {
    /// The median is bracketed by min and max and at least half the sample
    /// lies on each side.
    #[test]
    fn median_is_a_middle_value(v in finite_vec(1)) {
        let m = median(&v).unwrap();
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
        let below = v.iter().filter(|&&x| x <= m).count();
        let above = v.iter().filter(|&&x| x >= m).count();
        prop_assert!(below * 2 >= v.len());
        prop_assert!(above * 2 >= v.len());
    }

    /// Median is invariant under permutation.
    #[test]
    fn median_permutation_invariant(mut v in finite_vec(1)) {
        let m1 = median(&v).unwrap();
        v.reverse();
        let m2 = median(&v).unwrap();
        prop_assert_eq!(m1, m2);
    }

    /// Median is translation-equivariant: median(x + c) = median(x) + c.
    #[test]
    fn median_translation(v in finite_vec(1), c in -1e3f64..1e3) {
        let m = median(&v).unwrap();
        let shifted: Vec<f64> = v.iter().map(|x| x + c).collect();
        let ms = median(&shifted).unwrap();
        prop_assert!((ms - (m + c)).abs() < 1e-6);
    }

    /// Quantile endpoints are min and max; quantile is monotone in q.
    #[test]
    fn quantile_monotone(v in finite_vec(1), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&v, qa).unwrap();
        let b = quantile(&v, qb).unwrap();
        prop_assert!(a <= b + 1e-12);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(quantile(&v, 0.0).unwrap(), lo);
        prop_assert_eq!(quantile(&v, 1.0).unwrap(), hi);
    }

    /// Mean lies between min and max.
    #[test]
    fn mean_is_bracketed(v in finite_vec(1)) {
        let m = mean(&v).unwrap();
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    /// Rank sum identity: sum of average ranks is n(n+1)/2.
    #[test]
    fn rank_sum_identity(v in finite_vec(0)) {
        let r = average_ranks(&v);
        let n = v.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// Correlations are bounded in [-1, 1] whenever defined.
    #[test]
    fn correlations_bounded(v in finite_vec(2), w in finite_vec(2)) {
        let n = v.len().min(w.len());
        let (x, y) = (&v[..n], &w[..n]);
        if let Some(r) = pearson(x, y) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
        if let Some(rho) = spearman(x, y) {
            prop_assert!((-1.0..=1.0).contains(&rho));
        }
    }

    /// Spearman is invariant under strictly monotone transforms of either
    /// variable — the property that makes it the right tool for the
    /// non-linear delay/throughput relationship.
    #[test]
    fn spearman_monotone_invariance(v in finite_vec(3), w in finite_vec(3)) {
        let n = v.len().min(w.len());
        let (x, y) = (&v[..n], &w[..n]);
        if let Some(rho) = spearman(x, y) {
            // exp is strictly increasing; x/1000 keeps exp finite.
            let tx: Vec<f64> = x.iter().map(|a| (a / 1e6).exp()).collect();
            if let Some(rho_t) = spearman(&tx, y) {
                prop_assert!((rho - rho_t).abs() < 1e-6, "{} vs {}", rho, rho_t);
            }
        }
    }

    /// Spearman of a sample with itself is exactly 1 (when non-constant).
    #[test]
    fn spearman_self_is_one(v in finite_vec(2)) {
        if let Some(rho) = spearman(&v, &v) {
            prop_assert!((rho - 1.0).abs() < 1e-9);
        }
    }

    /// The ECDF evaluated at the q-quantile is at least q, and the CDF is
    /// monotone non-decreasing.
    #[test]
    fn ecdf_quantile_consistency(v in finite_vec(1), q in 0.01f64..=1.0) {
        let cdf = Ecdf::new(v.clone());
        let x = cdf.quantile(q).unwrap();
        prop_assert!(cdf.fraction_at_or_below(x) + 1e-12 >= q);
        let pts = cdf.points();
        for w in pts.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// ECDF bucket fractions over a partition sum to one.
    #[test]
    fn ecdf_partition_sums_to_one(v in finite_vec(1)) {
        let cdf = Ecdf::new(v);
        let a = cdf.fraction_at_or_below(-10.0);
        let b = cdf.fraction_in(-10.0, 10.0);
        let c = 1.0 - cdf.fraction_at_or_below(10.0);
        prop_assert!((a + b + c - 1.0).abs() < 1e-12);
    }
}
