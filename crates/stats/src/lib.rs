//! # lastmile-stats
//!
//! Small, dependency-free statistics toolkit backing the last-mile
//! congestion pipeline.
//!
//! The IMC 2020 paper leans on a handful of robust statistics:
//!
//! * **medians everywhere** — per-probe median RTT per 30-minute bin, the
//!   median across a probe population, median CDN throughput per 15-minute
//!   bin ("our metrics are designed to be robust to outliers");
//! * **empirical CDFs** — Figure 3 plots CDFs of prominent frequencies and
//!   daily peak-to-peak amplitudes over all monitored ASes;
//! * **Spearman's rank correlation** — §4.3 reports ρ = −0.6 between
//!   aggregated delay and throughput for ISP A and ρ = 0.0 for ISP C,
//!   chosen over Pearson because the relationship is "clearly non-linear".
//!
//! Everything here operates on `f64` slices. Aggregations over empty input
//! return `None` rather than NaN so callers must make missing data
//! explicit; helpers that *accept* NaN say so in their docs.
//!
//! ## Example
//!
//! ```
//! use lastmile_stats::{median, spearman, Ecdf};
//!
//! let delays = [0.1, 0.4, 5.0, 0.2];
//! // Robust to the 5.0 outlier: the median is (0.2 + 0.4) / 2.
//! assert!((median(&delays).unwrap() - 0.3).abs() < 1e-12);
//!
//! let thr = [50.0, 40.0, 10.0, 45.0];
//! // Higher delay, lower throughput: strong negative rank correlation.
//! assert!(spearman(&delays, &thr).unwrap() < -0.7);
//!
//! let cdf = Ecdf::new(delays.to_vec());
//! assert_eq!(cdf.fraction_at_or_below(0.4), 0.75);
//! ```

pub mod cdf;
pub mod corr;
pub mod hist;
pub mod rank;
pub mod summary;

pub use cdf::Ecdf;
pub use corr::{pearson, spearman};
pub use hist::Histogram;
pub use rank::average_ranks;
pub use summary::{max, mean, median, median_in_place, min, quantile, stddev, Summary};
