//! Empirical cumulative distribution functions.
//!
//! Figure 3 of the paper plots two CDFs over all monitored ASes: the
//! prominent-frequency distribution (showing the daily component dominates)
//! and the daily peak-to-peak amplitude distribution (whose tail defines
//! the Low/Mild/Severe classification thresholds: ~83% of ASes fall below
//! 0.5 ms, ~7% in 0.5–1 ms, ~6% in 1–3 ms, ~4% above 3 ms).
//!
//! [`Ecdf`] stores the sorted sample and answers both directions:
//! `F(x)` via [`Ecdf::fraction_at_or_below`] and `F⁻¹(q)` via
//! [`Ecdf::quantile`], plus the plotted point series.

/// An empirical CDF over a finite sample.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (consumed and sorted). NaN values are removed —
    /// an AS with an undefined amplitude simply does not appear in the CDF,
    /// mirroring how the paper plots only ASes with a measured component.
    pub fn new(mut values: Vec<f64>) -> Ecdf {
        values.retain(|v| !v.is_nan());
        values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        Ecdf { sorted: values }
    }

    /// Number of points in the sample.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// `F(x)`: fraction of the sample with value ≤ `x`.
    ///
    /// Returns 0 for an empty sample.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.count_at_or_below(x) as f64 / self.sorted.len() as f64
    }

    /// Number of sample points ≤ `x` (binary search on the sorted sample).
    pub fn count_at_or_below(&self, x: f64) -> usize {
        self.sorted.partition_point(|&v| v <= x)
    }

    /// Fraction of the sample strictly inside `(lo, hi]` — the bucket
    /// arithmetic used when reading class shares off the amplitude CDF.
    pub fn fraction_in(&self, lo: f64, hi: f64) -> f64 {
        if self.sorted.is_empty() || hi <= lo {
            return 0.0;
        }
        (self.count_at_or_below(hi) - self.count_at_or_below(lo)) as f64 / self.sorted.len() as f64
    }

    /// `F⁻¹(q)`: smallest sample value `v` with `F(v) ≥ q`.
    ///
    /// `q` must be in `(0, 1]`. Returns `None` on an empty sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile out of range: {q}");
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// The CDF as a plottable `(value, fraction)` step series, one point
    /// per sample element (fraction is `(i+1)/n`).
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_fractions() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.25);
        assert_eq!(cdf.fraction_at_or_below(2.5), 0.5);
        assert_eq!(cdf.fraction_at_or_below(4.0), 1.0);
        assert_eq!(cdf.fraction_at_or_below(99.0), 1.0);
    }

    #[test]
    fn bucket_fractions_partition() {
        // Emulates reading the paper's amplitude classes off the CDF:
        // buckets (-inf,0.5], (0.5,1], (1,3], (3,inf) must sum to 1.
        let amp = vec![0.1, 0.2, 0.3, 0.4, 0.45, 0.7, 1.5, 2.0, 5.0, 9.0];
        let cdf = Ecdf::new(amp);
        let none = cdf.fraction_at_or_below(0.5);
        let low = cdf.fraction_in(0.5, 1.0);
        let mild = cdf.fraction_in(1.0, 3.0);
        let severe = 1.0 - cdf.fraction_at_or_below(3.0);
        assert!((none + low + mild + severe - 1.0).abs() < 1e-12);
        assert_eq!(none, 0.5);
        assert!((low - 0.1).abs() < 1e-12);
        assert!((mild - 0.2).abs() < 1e-12);
        assert!((severe - 0.2).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let cdf = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.quantile(0.25), Some(10.0));
        assert_eq!(cdf.quantile(0.5), Some(20.0));
        assert_eq!(cdf.quantile(1.0), Some(40.0));
        assert_eq!(cdf.quantile(0.51), Some(30.0));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_zero() {
        let _ = Ecdf::new(vec![1.0]).quantile(0.0);
    }

    #[test]
    fn nan_values_are_dropped() {
        let cdf = Ecdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.fraction_at_or_below(1.5), 0.5);
    }

    #[test]
    fn empty_cdf() {
        let cdf = Ecdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert!(cdf.points().is_empty());
    }

    #[test]
    fn points_are_monotone_and_end_at_one() {
        let cdf = Ecdf::new(vec![5.0, 1.0, 3.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn duplicates_step_together() {
        let cdf = Ecdf::new(vec![2.0, 2.0, 2.0, 7.0]);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(1.999), 0.0);
    }
}
