//! Histograms with explicit bin edges.
//!
//! Figure 4 of the paper is a grouped bar chart: for each APNIC eyeball
//! rank bucket, the percentage of ASes in each congestion class. That is a
//! histogram over explicit, human-chosen edges (1–10, 11–100, 101–1k,
//! 1k–10k, >10k). [`Histogram`] supports exactly that: arbitrary ascending
//! edges with an implicit overflow bucket, counts, and percentage views.

/// A histogram over explicit ascending bin edges.
///
/// A value `v` lands in bucket `i` if `edges[i] <= v < edges[i+1]`; values
/// at or above the last edge land in the final (overflow) bucket, values
/// below the first edge are counted separately as underflow.
#[derive(Clone, Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
}

impl Histogram {
    /// Create with the given ascending edges. There are `edges.len()`
    /// buckets: `edges.len() - 1` bounded ones plus the overflow bucket.
    ///
    /// Panics if fewer than one edge is given or edges are not strictly
    /// ascending.
    pub fn new(edges: Vec<f64>) -> Histogram {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        let n = edges.len();
        Histogram {
            edges,
            counts: vec![0; n],
            underflow: 0,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, v: f64) {
        debug_assert!(!v.is_nan(), "NaN reached a histogram");
        if v < self.edges[0] {
            self.underflow += 1;
            return;
        }
        // partition_point returns the index of the first edge > v, so
        // bucket = that index - 1.
        let idx = self.edges.partition_point(|&e| e <= v) - 1;
        self.counts[idx] += 1;
    }

    /// Add many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Per-bucket counts (last bucket is overflow: `>= last edge`).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Total observations including underflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.counts.iter().sum::<u64>()
    }

    /// Bucket shares as fractions of the in-range total (underflow
    /// excluded). Empty histogram yields all zeros.
    pub fn fractions(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Human-readable bucket labels, e.g. `"1-10"`, `">= 10000"`.
    pub fn labels(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.edges.len());
        for w in self.edges.windows(2) {
            out.push(format!("[{}, {})", w[0], w[1]));
        }
        out.push(format!(
            ">= {}",
            self.edges.last().expect("non-empty edges")
        ));
        out
    }

    /// The edges this histogram was built with.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_left_closed_right_open() {
        let mut h = Histogram::new(vec![0.0, 10.0, 100.0]);
        h.extend([0.0, 5.0, 9.999, 10.0, 99.0, 100.0, 1e9]);
        assert_eq!(h.counts(), &[3, 2, 2]);
        assert_eq!(h.underflow(), 0);
    }

    #[test]
    fn underflow_is_separate() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.extend([0.5, 1.5, 3.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(vec![0.0, 1.0, 2.0, 3.0]);
        h.extend([0.5, 0.6, 1.5, 2.5, 2.6, 3.5]);
        let f = h.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f[0], 2.0 / 6.0);
    }

    #[test]
    fn apnic_rank_buckets() {
        // The Figure 4 bucketing: ranks 1-10, 11-100, 101-1k, 1k-10k, >10k.
        let mut h = Histogram::new(vec![1.0, 11.0, 101.0, 1001.0, 10001.0]);
        h.extend([
            1.0, 10.0, 11.0, 100.0, 101.0, 1000.0, 1001.0, 10000.0, 10001.0, 50000.0,
        ]);
        assert_eq!(h.counts(), &[2, 2, 2, 2, 2]);
        assert_eq!(h.labels().len(), 5);
        assert_eq!(h.labels()[4], ">= 10001");
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = Histogram::new(vec![0.0, 1.0]);
        assert_eq!(h.fractions(), vec![0.0, 0.0]);
        assert_eq!(h.total(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_edges() {
        let _ = Histogram::new(vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn rejects_no_edges() {
        let _ = Histogram::new(vec![]);
    }
}
