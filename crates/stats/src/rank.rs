//! Ranking with tie handling.
//!
//! Spearman's ρ is Pearson's r computed on *ranks*. With real measurement
//! data ties are common (e.g. CDN throughput quantised by object sizes), so
//! tied values must receive their *average* rank — otherwise ρ becomes
//! order-dependent. [`average_ranks`] implements fractional ("mid-rank")
//! ranking, the same convention as `scipy.stats.rankdata(method="average")`.

/// Assign 1-based fractional ranks, averaging ranks over ties.
///
/// NaN inputs are unsupported (they have no meaningful rank); callers must
/// filter them beforehand.
///
/// ```
/// use lastmile_stats::average_ranks;
/// // 10 and 10 tie for ranks 2 and 3, both get 2.5.
/// assert_eq!(average_ranks(&[5.0, 10.0, 10.0, 20.0]), vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        debug_assert!(
            !values[a].is_nan() && !values[b].is_nan(),
            "NaN reached ranking"
        );
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(core::cmp::Ordering::Equal)
    });

    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the run of tied values [i, j).
        let mut j = i + 1;
        while j < n && values[order[j]] == values[order[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_values_get_integer_ranks() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_get_average_ranks() {
        // Three-way tie for ranks 1,2,3 -> all get 2.
        assert_eq!(
            average_ranks(&[7.0, 7.0, 7.0, 9.0]),
            vec![2.0, 2.0, 2.0, 4.0]
        );
    }

    #[test]
    fn multiple_tie_groups() {
        let r = average_ranks(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn empty_and_single() {
        assert!(average_ranks(&[]).is_empty());
        assert_eq!(average_ranks(&[42.0]), vec![1.0]);
    }

    #[test]
    fn rank_sum_is_invariant() {
        // Sum of ranks must always be n(n+1)/2 regardless of ties.
        let v = [5.0, 5.0, 1.0, 3.0, 3.0, 3.0, 9.0];
        let sum: f64 = average_ranks(&v).iter().sum();
        let n = v.len() as f64;
        assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_preserve_order() {
        let v = [0.3, 0.1, 0.2, 0.4];
        let r = average_ranks(&v);
        // Larger value => larger rank, for distinct values.
        for i in 0..v.len() {
            for j in 0..v.len() {
                if v[i] < v[j] {
                    assert!(r[i] < r[j]);
                }
            }
        }
    }
}
