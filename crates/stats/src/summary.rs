//! Order statistics and moments.
//!
//! The pipeline's workhorse is [`median`]: the paper computes a median RTT
//! per probe per 30-minute bin ("to filter out noise", following Fontugne et al. IMC 2017), then the
//! median across probes per bin, then subtracts the per-period *minimum*
//! of those medians to turn RTT into queuing delay. All of those reduce to
//! the functions in this module.
//!
//! Inputs containing NaN are a programming error for the ordering-based
//! functions (`median`, `quantile`, `min`, `max`); they panic in debug
//! builds via the total-order comparator assertion and are documented as
//! unsupported. Use [`Summary::from_finite`] to drop non-finite values
//! explicitly when ingesting raw data.

/// Arithmetic mean, or `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population standard deviation, or `None` for empty input.
pub fn stddev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Minimum, or `None` for empty input. NaN inputs are unsupported.
pub fn min(values: &[f64]) -> Option<f64> {
    values.iter().copied().reduce(f64::min)
}

/// Maximum, or `None` for empty input. NaN inputs are unsupported.
pub fn max(values: &[f64]) -> Option<f64> {
    values.iter().copied().reduce(f64::max)
}

fn total_cmp(a: &f64, b: &f64) -> core::cmp::Ordering {
    debug_assert!(!a.is_nan() && !b.is_nan(), "NaN reached an order statistic");
    a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal)
}

/// Median of a slice, copying it first. `None` for empty input.
///
/// Even-length inputs return the mean of the two central elements, matching
/// `numpy.median` (the paper's reference implementation is numpy-based
/// `raclette`).
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut buf = values.to_vec();
    median_in_place(&mut buf)
}

/// Median that reorders the given buffer instead of allocating.
///
/// Uses `select_nth_unstable` so the cost is O(n) rather than a full sort —
/// this runs once per probe per bin across millions of bins.
pub fn median_in_place(values: &mut [f64]) -> Option<f64> {
    let n = values.len();
    if n == 0 {
        return None;
    }
    let mid = n / 2;
    let (_, upper_mid, _) = values.select_nth_unstable_by(mid, total_cmp);
    let upper_mid = *upper_mid;
    if n % 2 == 1 {
        Some(upper_mid)
    } else {
        // Lower-middle element: the maximum of the left partition.
        let lower_mid = values[..mid]
            .iter()
            .copied()
            .reduce(f64::max)
            .expect("mid >= 1");
        Some((lower_mid + upper_mid) / 2.0)
    }
}

/// Linear-interpolation quantile (numpy's default `linear` method).
///
/// `q` must be within `[0, 1]`. Returns `None` for empty input.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if values.is_empty() {
        return None;
    }
    let mut buf = values.to_vec();
    buf.sort_unstable_by(total_cmp);
    let pos = q * (buf.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(buf[lo])
    } else {
        let frac = pos - lo as f64;
        Some(buf[lo] * (1.0 - frac) + buf[hi] * frac)
    }
}

/// A one-pass numeric summary of a data set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of (finite) values summarised.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
}

impl Summary {
    /// Summarise a slice; `None` if empty. NaN inputs are unsupported.
    pub fn from_slice(values: &[f64]) -> Option<Summary> {
        Some(Summary {
            count: values.len(),
            min: min(values)?,
            max: max(values)?,
            mean: mean(values)?,
            median: median(values)?,
        })
    }

    /// Summarise after dropping non-finite values (NaN, ±inf). `None` if
    /// nothing finite remains. This is the entry point for raw measurement
    /// data, where missing RTTs may surface as NaN upstream.
    pub fn from_finite(values: &[f64]) -> Option<Summary> {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        Summary::from_slice(&finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_robust_to_outliers() {
        // One wild outlier must not move the median: this is the property
        // the paper relies on for noise filtering.
        let clean = [1.0, 1.1, 0.9, 1.05, 0.95];
        let mut dirty = clean.to_vec();
        dirty.push(1000.0);
        dirty.push(-1000.0);
        assert_eq!(median(&dirty), median(&clean));
    }

    #[test]
    fn median_in_place_matches_sorting_median() {
        let data = [9.0, 2.0, 7.0, 7.0, 3.0, 5.0, 1.0, 8.0];
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect = (sorted[3] + sorted[4]) / 2.0;
        let mut buf = data.to_vec();
        assert_eq!(median_in_place(&mut buf), Some(expect));
    }

    #[test]
    fn median_with_duplicates() {
        assert_eq!(median(&[2.0, 2.0, 2.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 2.0, 9.0]), Some(2.0));
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert!((quantile(&v, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        assert_eq!(min(&[3.0, -1.0, 2.0]), Some(-1.0));
        assert_eq!(max(&[3.0, -1.0, 2.0]), Some(3.0));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn summary_from_finite_drops_nans() {
        let s = Summary::from_finite(&[1.0, f64::NAN, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!(Summary::from_finite(&[f64::NAN]).is_none());
    }
}
