//! Correlation coefficients.
//!
//! §4.3 of the paper: "we find that there is clear non-linear correlations
//! between delay and throughput, hence we report correlation using
//! Spearman's rank correlation coefficient" — ρ = −0.6 for ISP A (delay up,
//! throughput down) and ρ = 0.0 for ISP C (unrelated fluctuations).
//!
//! [`spearman`] is implemented as Pearson's r over average ranks, which is
//! the definition that remains correct in the presence of ties (the popular
//! `1 − 6Σd²/n(n²−1)` shortcut is only valid without ties).

use crate::rank::average_ranks;

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` when the inputs are shorter than 2 or either sample has
/// zero variance (the coefficient is undefined; the paper's "ρ = 0.0" for
/// ISP C is a *defined* zero from non-degenerate data).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(
        x.len(),
        y.len(),
        "correlation inputs must be the same length"
    );
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    // Clamp to [-1, 1] against floating-point drift.
    Some((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Spearman's rank correlation coefficient ρ, with average-rank ties.
///
/// `None` under the same degenerate conditions as [`pearson`] (fewer than
/// two points, or a constant sample).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(
        x.len(),
        y.len(),
        "correlation inputs must be the same length"
    );
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_lines() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_up = [2.0, 4.0, 6.0, 8.0];
        let y_down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[], &[]), None);
        // Zero variance.
        assert_eq!(pearson(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn pearson_rejects_length_mismatch() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn spearman_is_one_for_any_monotone_relation() {
        // Non-linear but monotone: Pearson < 1 but Spearman == 1. This is
        // exactly why the paper uses Spearman for delay-vs-throughput.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|&v: &f64| v.exp()).collect();
        let rho = spearman(&x, &y).unwrap();
        assert!((rho - 1.0).abs() < 1e-12);
        let r = pearson(&x, &y).unwrap();
        assert!(r < 1.0 - 1e-6);
    }

    #[test]
    fn spearman_inverse_monotone_is_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 1.0 / v).collect();
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        // With ties, the rank-Pearson definition must agree with a direct
        // computation on average ranks.
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_of_independent_signals_is_small() {
        // A deterministic "unrelated" pair: x ascending, y alternating.
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 2.0 })
            .collect();
        let rho = spearman(&x, &y).unwrap().abs();
        assert!(rho < 0.05, "expected near-zero, got {rho}");
    }

    #[test]
    fn correlation_is_symmetric() {
        let x = [0.5, 1.5, 0.25, 2.0, 3.5];
        let y = [3.0, 2.0, 4.0, 1.0, 0.5];
        assert!((pearson(&x, &y).unwrap() - pearson(&y, &x).unwrap()).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap() - spearman(&y, &x).unwrap()).abs() < 1e-12);
    }
}
