//! Proleptic Gregorian calendar conversions.
//!
//! Implements Howard Hinnant's `days_from_civil` / `civil_from_days`
//! algorithms, which are exact over the full `i64` day range used here.
//! This keeps the workspace free of calendar dependencies while still
//! letting us write measurement periods as human dates ("1st to the 15th of
//! March 2018") and label weekly figures with weekday names, as the paper
//! does.

use crate::unix::{UnixTime, SECS_PER_DAY, SECS_PER_HOUR, SECS_PER_MIN};
use core::fmt;

/// Month of year, 1-based like `CivilDate`'s textual form.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Month {
    January = 1,
    February = 2,
    March = 3,
    April = 4,
    May = 5,
    June = 6,
    July = 7,
    August = 8,
    September = 9,
    October = 10,
    November = 11,
    December = 12,
}

impl Month {
    /// Convert a 1-based month number.
    pub fn from_number(n: u8) -> Option<Month> {
        use Month::*;
        Some(match n {
            1 => January,
            2 => February,
            3 => March,
            4 => April,
            5 => May,
            6 => June,
            7 => July,
            8 => August,
            9 => September,
            10 => October,
            11 => November,
            12 => December,
            _ => return None,
        })
    }

    /// 1-based month number.
    #[inline]
    pub fn number(self) -> u8 {
        self as u8
    }
}

/// Day of week. The numeric values follow ISO 8601 (Monday = 1).
///
/// The paper's weekly figures run Monday through Sunday, so [`Weekday`]
/// ordering matches the x-axis of Figures 1 and 8.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Weekday {
    Monday = 1,
    Tuesday = 2,
    Wednesday = 3,
    Thursday = 4,
    Friday = 5,
    Saturday = 6,
    Sunday = 7,
}

impl Weekday {
    /// All weekdays in Monday-first order.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Zero-based index with Monday = 0, matching the weekly-overlay x-axis.
    #[inline]
    pub fn monday_index(self) -> usize {
        self as usize - 1
    }

    /// Whether this is Saturday or Sunday. Demand models use this to damp
    /// or shift the diurnal peak on weekends.
    #[inline]
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// English name, as used in figure axes.
    pub fn name(self) -> &'static str {
        match self {
            Weekday::Monday => "Monday",
            Weekday::Tuesday => "Tuesday",
            Weekday::Wednesday => "Wednesday",
            Weekday::Thursday => "Thursday",
            Weekday::Friday => "Friday",
            Weekday::Saturday => "Saturday",
            Weekday::Sunday => "Sunday",
        }
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A calendar date in the proleptic Gregorian calendar (UTC).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    /// Year (astronomical numbering; 2018 means AD 2018).
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
    /// Day of month 1..=31.
    pub day: u8,
}

impl CivilDate {
    /// Construct a date. Panics if the month/day are out of range for the
    /// given year (invalid dates indicate a programming error in scenario
    /// definitions, not bad input data).
    pub fn new(year: i32, month: u8, day: u8) -> CivilDate {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range: {year:04}-{month:02}-{day:02}"
        );
        CivilDate { year, month, day }
    }

    /// Days since the Unix epoch (1970-01-01 = day 0). Negative before 1970.
    ///
    /// This is Hinnant's `days_from_civil`, restated for Rust integer
    /// division semantics.
    pub fn days_since_epoch(&self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = y.div_euclid(400);
        let yoe = y.rem_euclid(400); // [0, 399]
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe - 719468
    }

    /// Inverse of [`CivilDate::days_since_epoch`] (Hinnant's `civil_from_days`).
    pub fn from_days_since_epoch(days: i64) -> CivilDate {
        let z = days + 719468;
        let era = z.div_euclid(146097);
        let doe = z.rem_euclid(146097); // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        CivilDate {
            year: (y + i64::from(m <= 2)) as i32,
            month: m as u8,
            day: d as u8,
        }
    }

    /// Midnight UTC at the start of this date.
    pub fn midnight(&self) -> UnixTime {
        UnixTime::from_secs(self.days_since_epoch() * SECS_PER_DAY)
    }

    /// Day of week of this date.
    pub fn weekday(&self) -> Weekday {
        // 1970-01-01 was a Thursday (ISO weekday 4).
        let wd = (self.days_since_epoch() + 3).rem_euclid(7) + 1;
        match wd {
            1 => Weekday::Monday,
            2 => Weekday::Tuesday,
            3 => Weekday::Wednesday,
            4 => Weekday::Thursday,
            5 => Weekday::Friday,
            6 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }

    /// The date `n` days later (or earlier when negative).
    pub fn add_days(&self, n: i64) -> CivilDate {
        CivilDate::from_days_since_epoch(self.days_since_epoch() + n)
    }
}

impl fmt::Debug for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A calendar date plus time of day (UTC).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDateTime {
    pub date: CivilDate,
    /// Hour 0..=23.
    pub hour: u8,
    /// Minute 0..=59.
    pub minute: u8,
    /// Second 0..=59.
    pub second: u8,
}

impl CivilDateTime {
    /// Construct; panics on out-of-range time fields.
    pub fn new(date: CivilDate, hour: u8, minute: u8, second: u8) -> CivilDateTime {
        assert!(
            hour < 24 && minute < 60 && second < 60,
            "time out of range: {hour:02}:{minute:02}:{second:02}"
        );
        CivilDateTime {
            date,
            hour,
            minute,
            second,
        }
    }

    /// Convert a Unix timestamp to civil UTC time.
    pub fn from_unix(t: UnixTime) -> CivilDateTime {
        let days = t.days_since_epoch();
        let sod = t.seconds_of_day();
        CivilDateTime {
            date: CivilDate::from_days_since_epoch(days),
            hour: (sod / SECS_PER_HOUR) as u8,
            minute: ((sod % SECS_PER_HOUR) / SECS_PER_MIN) as u8,
            second: (sod % SECS_PER_MIN) as u8,
        }
    }

    /// Convert back to a Unix timestamp.
    pub fn to_unix(&self) -> UnixTime {
        self.date.midnight()
            + i64::from(self.hour) * SECS_PER_HOUR
            + i64::from(self.minute) * SECS_PER_MIN
            + i64::from(self.second)
    }
}

impl fmt::Debug for CivilDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.date, self.hour, self.minute, self.second
        )
    }
}

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month out of range: {month}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero_and_thursday() {
        let d = CivilDate::new(1970, 1, 1);
        assert_eq!(d.days_since_epoch(), 0);
        assert_eq!(d.weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_dates_round_trip() {
        // Dates relevant to the paper.
        let cases = [
            ((2018, 3, 1), Weekday::Thursday),
            ((2018, 6, 1), Weekday::Friday),
            ((2018, 9, 1), Weekday::Saturday),
            ((2019, 3, 1), Weekday::Friday),
            ((2019, 9, 19), Weekday::Thursday), // CDN dataset starts Thu Sep 19
            ((2019, 9, 26), Weekday::Thursday),
            ((2020, 4, 1), Weekday::Wednesday),
            ((2000, 2, 29), Weekday::Tuesday), // leap day in a century leap year
        ];
        for ((y, m, d), wd) in cases {
            let date = CivilDate::new(y, m, d);
            assert_eq!(date.weekday(), wd, "{date}");
            let back = CivilDate::from_days_since_epoch(date.days_since_epoch());
            assert_eq!(back, date);
        }
    }

    #[test]
    fn civil_from_days_round_trips_across_a_wide_span() {
        // Cover century and 400-year boundaries exhaustively by day count.
        let start = CivilDate::new(1899, 12, 25).days_since_epoch();
        let end = CivilDate::new(2101, 1, 7).days_since_epoch();
        let mut prev = CivilDate::from_days_since_epoch(start - 1);
        for day in start..=end {
            let d = CivilDate::from_days_since_epoch(day);
            assert_eq!(d.days_since_epoch(), day, "{d}");
            // Dates are strictly increasing day by day.
            assert!(prev < d, "{prev} !< {d}");
            prev = d;
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2020));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2019));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2019, 2), 28);
        assert_eq!(days_in_month(2019, 9), 30);
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn rejects_invalid_date() {
        let _ = CivilDate::new(2019, 2, 29);
    }

    #[test]
    fn datetime_round_trip() {
        let dt = CivilDateTime::new(CivilDate::new(2019, 9, 19), 13, 45, 7);
        let t = dt.to_unix();
        assert_eq!(CivilDateTime::from_unix(t), dt);
        assert_eq!(dt.to_string(), "2019-09-19 13:45:07");
    }

    #[test]
    fn datetime_from_known_timestamp() {
        // 2020-04-01T00:00:00Z == 1585699200.
        let t = UnixTime::from_secs(1_585_699_200);
        let dt = CivilDateTime::from_unix(t);
        assert_eq!(dt.to_string(), "2020-04-01 00:00:00");
        assert_eq!(dt.to_unix(), t);
    }

    #[test]
    fn weekday_helpers() {
        assert!(Weekday::Saturday.is_weekend());
        assert!(!Weekday::Friday.is_weekend());
        assert_eq!(Weekday::Monday.monday_index(), 0);
        assert_eq!(Weekday::Sunday.monday_index(), 6);
        assert_eq!(Weekday::ALL.len(), 7);
    }

    #[test]
    fn add_days_crosses_month_and_year() {
        let d = CivilDate::new(2019, 12, 31).add_days(1);
        assert_eq!(d, CivilDate::new(2020, 1, 1));
        let d = CivilDate::new(2020, 3, 1).add_days(-1);
        assert_eq!(d, CivilDate::new(2020, 2, 29));
    }

    #[test]
    fn month_enum_round_trips() {
        for n in 1..=12u8 {
            assert_eq!(Month::from_number(n).unwrap().number(), n);
        }
        assert!(Month::from_number(0).is_none());
        assert!(Month::from_number(13).is_none());
    }
}
