//! Unix timestamps and half-open time ranges.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// Seconds in a minute.
pub const SECS_PER_MIN: i64 = 60;
/// Seconds in an hour.
pub const SECS_PER_HOUR: i64 = 60 * SECS_PER_MIN;
/// Seconds in a day.
pub const SECS_PER_DAY: i64 = 24 * SECS_PER_HOUR;
/// Seconds in a week.
pub const SECS_PER_WEEK: i64 = 7 * SECS_PER_DAY;

/// A timestamp in whole seconds since `1970-01-01T00:00:00Z`.
///
/// RIPE Atlas reports measurement timestamps as integral Unix seconds, and
/// every time bin used in the paper is an integral number of seconds wide,
/// so second granularity is exact for the entire pipeline.
///
/// The representation is a signed 64-bit count, so pre-1970 instants are
/// representable (useful in property tests) and overflow is out of reach
/// for any realistic input.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UnixTime(pub i64);

impl UnixTime {
    /// The Unix epoch itself.
    pub const EPOCH: UnixTime = UnixTime(0);

    /// Construct from raw seconds.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        UnixTime(secs)
    }

    /// Raw seconds since the epoch.
    #[inline]
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Seconds elapsed since midnight UTC of the same day (`0..86400`).
    #[inline]
    pub fn seconds_of_day(self) -> i64 {
        self.0.rem_euclid(SECS_PER_DAY)
    }

    /// The hour of day in UTC (`0..24`).
    #[inline]
    pub fn hour_of_day(self) -> u8 {
        (self.seconds_of_day() / SECS_PER_HOUR) as u8
    }

    /// Fractional hour of day in UTC (`0.0..24.0`), convenient for demand
    /// curves evaluated at arbitrary instants.
    #[inline]
    pub fn fractional_hour_of_day(self) -> f64 {
        self.seconds_of_day() as f64 / SECS_PER_HOUR as f64
    }

    /// Number of whole days since the epoch (floor division, so negative
    /// timestamps land on the preceding day).
    #[inline]
    pub fn days_since_epoch(self) -> i64 {
        self.0.div_euclid(SECS_PER_DAY)
    }

    /// Midnight UTC of the day containing this instant.
    #[inline]
    pub fn start_of_day(self) -> UnixTime {
        UnixTime(self.days_since_epoch() * SECS_PER_DAY)
    }

    /// Saturating addition of a number of seconds.
    #[inline]
    pub fn saturating_add_secs(self, secs: i64) -> UnixTime {
        UnixTime(self.0.saturating_add(secs))
    }
}

impl Add<i64> for UnixTime {
    type Output = UnixTime;
    #[inline]
    fn add(self, rhs: i64) -> UnixTime {
        UnixTime(self.0 + rhs)
    }
}

impl AddAssign<i64> for UnixTime {
    #[inline]
    fn add_assign(&mut self, rhs: i64) {
        self.0 += rhs;
    }
}

impl Sub<i64> for UnixTime {
    type Output = UnixTime;
    #[inline]
    fn sub(self, rhs: i64) -> UnixTime {
        UnixTime(self.0 - rhs)
    }
}

impl SubAssign<i64> for UnixTime {
    #[inline]
    fn sub_assign(&mut self, rhs: i64) {
        self.0 -= rhs;
    }
}

impl Sub<UnixTime> for UnixTime {
    type Output = i64;
    /// Difference in seconds (`self - rhs`).
    #[inline]
    fn sub(self, rhs: UnixTime) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for UnixTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as civil time for readable assertion failures.
        write!(
            f,
            "UnixTime({} = {})",
            self.0,
            crate::civil::CivilDateTime::from_unix(*self)
        )
    }
}

impl fmt::Display for UnixTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A half-open interval of time `[start, end)`.
///
/// Half-open ranges compose without overlap: the paper's 15-day measurement
/// periods are `[Mar 1 00:00, Mar 16 00:00)` and a 30-minute bin starting at
/// `t` covers `[t, t+1800)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimeRange {
    start: UnixTime,
    end: UnixTime,
}

impl TimeRange {
    /// Create a range; `end` is clamped up to `start` so the range is never
    /// negative (an empty range has `start == end`).
    pub fn new(start: UnixTime, end: UnixTime) -> Self {
        TimeRange {
            start,
            end: end.max(start),
        }
    }

    /// Start (inclusive).
    #[inline]
    pub fn start(&self) -> UnixTime {
        self.start
    }

    /// End (exclusive).
    #[inline]
    pub fn end(&self) -> UnixTime {
        self.end
    }

    /// Length in seconds.
    #[inline]
    pub fn duration_secs(&self) -> i64 {
        self.end - self.start
    }

    /// Whether the range contains no instant.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `t` lies within `[start, end)`.
    #[inline]
    pub fn contains(&self, t: UnixTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Intersection of two ranges (empty if they do not overlap).
    pub fn intersect(&self, other: &TimeRange) -> TimeRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        TimeRange::new(start, end)
    }

    /// Iterate instants `start, start+step, ...` strictly below `end`.
    ///
    /// `step` must be positive.
    pub fn iter_step(&self, step: i64) -> StepIter {
        assert!(step > 0, "step must be positive, got {step}");
        StepIter {
            next: self.start,
            end: self.end,
            step,
        }
    }
}

/// Iterator over evenly spaced instants in a [`TimeRange`].
#[derive(Clone, Debug)]
pub struct StepIter {
    next: UnixTime,
    end: UnixTime,
    step: i64,
}

impl Iterator for StepIter {
    type Item = UnixTime;

    fn next(&mut self) -> Option<UnixTime> {
        if self.next < self.end {
            let t = self.next;
            self.next += self.step;
            Some(t)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = if self.next < self.end {
            ((self.end - self.next + self.step - 1) / self.step) as usize
        } else {
            0
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for StepIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_of_day_wraps() {
        assert_eq!(UnixTime(0).seconds_of_day(), 0);
        assert_eq!(UnixTime(SECS_PER_DAY + 5).seconds_of_day(), 5);
        assert_eq!(UnixTime(-1).seconds_of_day(), SECS_PER_DAY - 1);
    }

    #[test]
    fn hour_of_day() {
        assert_eq!(UnixTime(0).hour_of_day(), 0);
        assert_eq!(UnixTime(SECS_PER_HOUR * 23 + 59 * 60).hour_of_day(), 23);
        assert!((UnixTime(SECS_PER_HOUR / 2).fractional_hour_of_day() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn start_of_day_is_midnight() {
        let t = UnixTime(3 * SECS_PER_DAY + 12345);
        assert_eq!(t.start_of_day(), UnixTime(3 * SECS_PER_DAY));
        // Negative timestamps floor toward the previous midnight.
        let t = UnixTime(-1);
        assert_eq!(t.start_of_day(), UnixTime(-SECS_PER_DAY));
    }

    #[test]
    fn arithmetic_ops() {
        let t = UnixTime(100);
        assert_eq!(t + 50, UnixTime(150));
        assert_eq!(t - 50, UnixTime(50));
        assert_eq!(UnixTime(150) - UnixTime(100), 50);
        let mut u = t;
        u += 10;
        u -= 5;
        assert_eq!(u, UnixTime(105));
    }

    #[test]
    fn range_contains_is_half_open() {
        let r = TimeRange::new(UnixTime(10), UnixTime(20));
        assert!(r.contains(UnixTime(10)));
        assert!(r.contains(UnixTime(19)));
        assert!(!r.contains(UnixTime(20)));
        assert!(!r.contains(UnixTime(9)));
        assert_eq!(r.duration_secs(), 10);
    }

    #[test]
    fn range_clamps_inverted_bounds() {
        let r = TimeRange::new(UnixTime(20), UnixTime(10));
        assert!(r.is_empty());
        assert_eq!(r.duration_secs(), 0);
    }

    #[test]
    fn range_intersection() {
        let a = TimeRange::new(UnixTime(0), UnixTime(100));
        let b = TimeRange::new(UnixTime(50), UnixTime(150));
        let i = a.intersect(&b);
        assert_eq!(i, TimeRange::new(UnixTime(50), UnixTime(100)));
        let disjoint = TimeRange::new(UnixTime(200), UnixTime(300));
        assert!(a.intersect(&disjoint).is_empty());
    }

    #[test]
    fn step_iter_covers_range_exclusively() {
        let r = TimeRange::new(UnixTime(0), UnixTime(100));
        let pts: Vec<_> = r.iter_step(30).collect();
        assert_eq!(
            pts,
            vec![UnixTime(0), UnixTime(30), UnixTime(60), UnixTime(90)]
        );
        assert_eq!(r.iter_step(30).len(), 4);
        // Exact fit: the end point is excluded.
        let r = TimeRange::new(UnixTime(0), UnixTime(90));
        assert_eq!(r.iter_step(30).count(), 3);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn step_iter_rejects_zero_step() {
        let r = TimeRange::new(UnixTime(0), UnixTime(10));
        let _ = r.iter_step(0);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let r = TimeRange::new(UnixTime(5), UnixTime(5));
        assert_eq!(r.iter_step(1).count(), 0);
    }
}
