//! Fixed UTC offsets.
//!
//! All analysis in the paper (and in this workspace) is done in UTC, but
//! the *simulated* traffic must peak in the evening of each ISP's local
//! time — Japanese broadband peaks around 21:00 JST, which is 12:00 UTC.
//! [`TzOffset`] converts a UTC instant to local fractional hours for the
//! demand models. Daylight saving time is deliberately not modeled: over a
//! 15-day measurement window an hour of DST shift does not change whether a
//! diurnal component exists, and the paper itself ignores it.

use crate::unix::{UnixTime, SECS_PER_HOUR};

/// A fixed offset from UTC in seconds (positive = east of Greenwich).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct TzOffset {
    secs: i32,
}

impl TzOffset {
    /// UTC itself.
    pub const UTC: TzOffset = TzOffset { secs: 0 };

    /// Build from whole hours east of UTC, e.g. `TzOffset::hours(9)` for
    /// Japan Standard Time.
    pub const fn hours(h: i32) -> TzOffset {
        TzOffset {
            secs: h * SECS_PER_HOUR as i32,
        }
    }

    /// Build from seconds east of UTC.
    pub const fn seconds(secs: i32) -> TzOffset {
        TzOffset { secs }
    }

    /// Japan Standard Time (UTC+9) — used by the Tokyo case study.
    pub const JST: TzOffset = TzOffset::hours(9);
    /// Central European Time (UTC+1) — ISP_DE.
    pub const CET: TzOffset = TzOffset::hours(1);
    /// US Eastern Standard Time (UTC−5) — ISP_US.
    pub const US_EASTERN: TzOffset = TzOffset::hours(-5);
    /// US Central Standard Time (UTC−6).
    pub const US_CENTRAL: TzOffset = TzOffset::hours(-6);

    /// Offset in seconds east of UTC.
    #[inline]
    pub const fn offset_secs(self) -> i32 {
        self.secs
    }

    /// Shift a UTC instant into local wall-clock time.
    #[inline]
    pub fn to_local(self, t: UnixTime) -> UnixTime {
        t + i64::from(self.secs)
    }

    /// Local fractional hour of day (`0.0..24.0`) of a UTC instant.
    ///
    /// This is the argument demand curves are evaluated at.
    #[inline]
    pub fn local_hour(self, t: UnixTime) -> f64 {
        self.to_local(t).fractional_hour_of_day()
    }

    /// Local weekday of a UTC instant.
    pub fn local_weekday(self, t: UnixTime) -> crate::civil::Weekday {
        crate::civil::CivilDate::from_days_since_epoch(self.to_local(t).days_since_epoch())
            .weekday()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::civil::{CivilDate, CivilDateTime, Weekday};

    #[test]
    fn jst_evening_is_utc_noon() {
        // 2019-09-19 12:00 UTC == 21:00 JST.
        let t = CivilDateTime::new(CivilDate::new(2019, 9, 19), 12, 0, 0).to_unix();
        assert!((TzOffset::JST.local_hour(t) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn negative_offsets() {
        // 2019-09-20 02:00 UTC == 21:00 EST on Sep 19.
        let t = CivilDateTime::new(CivilDate::new(2019, 9, 20), 2, 0, 0).to_unix();
        assert!((TzOffset::US_EASTERN.local_hour(t) - 21.0).abs() < 1e-9);
        assert_eq!(TzOffset::US_EASTERN.local_weekday(t), Weekday::Thursday);
    }

    #[test]
    fn local_weekday_crosses_midnight() {
        // 2019-09-21 16:00 UTC is already Sunday 01:00 in JST (+9).
        let t = CivilDateTime::new(CivilDate::new(2019, 9, 21), 16, 0, 0).to_unix();
        assert_eq!(TzOffset::UTC.local_weekday(t), Weekday::Saturday);
        assert_eq!(TzOffset::JST.local_weekday(t), Weekday::Sunday);
    }

    #[test]
    fn utc_is_identity() {
        let t = UnixTime(123_456_789);
        assert_eq!(TzOffset::UTC.to_local(t), t);
        assert_eq!(TzOffset::UTC.offset_secs(), 0);
    }
}
