//! Measurement periods.
//!
//! The paper analyses eight fixed windows of traceroute data:
//!
//! * six *longitudinal* periods — the 1st to the 15th (inclusive, i.e. the
//!   half-open range `[1st 00:00, 16th 00:00)`) of March, June and
//!   September, in both 2018 and 2019;
//! * one *COVID-19* period — April 1–15, 2020;
//! * one *CDN cross-validation* period — September 19–26, 2019 (the span of
//!   the Tokyo CDN access-log dataset; `[Sep 19 00:00, Sep 27 00:00)`).
//!
//! A [`MeasurementPeriod`] carries its identity ([`PeriodId`]) and time
//! range. The per-period identity matters to the pipeline itself: the
//! minimum median RTT used as the queuing-delay baseline is "computed
//! separately for each measurement period to account for Atlas probe
//! deployment changes" (§2.1).

use crate::civil::CivilDate;
use crate::unix::{TimeRange, UnixTime};
use core::fmt;

/// Identity of one of the paper's measurement periods, or a custom window.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PeriodId {
    /// March 1–15, 2018.
    Mar2018,
    /// June 1–15, 2018.
    Jun2018,
    /// September 1–15, 2018.
    Sep2018,
    /// March 1–15, 2019.
    Mar2019,
    /// June 1–15, 2019.
    Jun2019,
    /// September 1–15, 2019.
    Sep2019,
    /// April 1–15, 2020 (COVID-19 lockdowns).
    Apr2020,
    /// September 19–26, 2019 (Tokyo CDN dataset).
    TokyoCdn2019,
    /// A window not named by the paper.
    Custom,
}

impl PeriodId {
    /// Label used in figure legends, e.g. `2019-09`.
    pub fn label(self) -> &'static str {
        match self {
            PeriodId::Mar2018 => "2018-03",
            PeriodId::Jun2018 => "2018-06",
            PeriodId::Sep2018 => "2018-09",
            PeriodId::Mar2019 => "2019-03",
            PeriodId::Jun2019 => "2019-06",
            PeriodId::Sep2019 => "2019-09",
            PeriodId::Apr2020 => "2020-04",
            PeriodId::TokyoCdn2019 => "2019-09-19..26",
            PeriodId::Custom => "custom",
        }
    }

    /// Whether this period falls inside COVID-19 lockdowns (April 2020).
    pub fn is_covid(self) -> bool {
        matches!(self, PeriodId::Apr2020)
    }
}

impl fmt::Display for PeriodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A named window of measurement time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MeasurementPeriod {
    id: PeriodId,
    range: TimeRange,
}

impl MeasurementPeriod {
    /// A custom period over an arbitrary range.
    pub fn custom(range: TimeRange) -> MeasurementPeriod {
        MeasurementPeriod {
            id: PeriodId::Custom,
            range,
        }
    }

    /// The half-month window `[year-month-01 00:00, year-month-16 00:00)`
    /// used by the longitudinal and COVID periods.
    fn half_month(id: PeriodId, year: i32, month: u8) -> MeasurementPeriod {
        let start = CivilDate::new(year, month, 1).midnight();
        let end = CivilDate::new(year, month, 16).midnight();
        MeasurementPeriod {
            id,
            range: TimeRange::new(start, end),
        }
    }

    /// March 1–15, 2018.
    pub fn march_2018() -> MeasurementPeriod {
        Self::half_month(PeriodId::Mar2018, 2018, 3)
    }

    /// June 1–15, 2018.
    pub fn june_2018() -> MeasurementPeriod {
        Self::half_month(PeriodId::Jun2018, 2018, 6)
    }

    /// September 1–15, 2018.
    pub fn september_2018() -> MeasurementPeriod {
        Self::half_month(PeriodId::Sep2018, 2018, 9)
    }

    /// March 1–15, 2019.
    pub fn march_2019() -> MeasurementPeriod {
        Self::half_month(PeriodId::Mar2019, 2019, 3)
    }

    /// June 1–15, 2019.
    pub fn june_2019() -> MeasurementPeriod {
        Self::half_month(PeriodId::Jun2019, 2019, 6)
    }

    /// September 1–15, 2019.
    pub fn september_2019() -> MeasurementPeriod {
        Self::half_month(PeriodId::Sep2019, 2019, 9)
    }

    /// April 1–15, 2020 — the COVID-19 lockdown window.
    pub fn april_2020() -> MeasurementPeriod {
        Self::half_month(PeriodId::Apr2020, 2020, 4)
    }

    /// September 19–26, 2019 — the Tokyo CDN log window
    /// (`[Sep 19 00:00, Sep 27 00:00)`, eight full days, Thursday to
    /// Thursday as in Figures 5 and 6).
    pub fn tokyo_cdn_2019() -> MeasurementPeriod {
        let start = CivilDate::new(2019, 9, 19).midnight();
        let end = CivilDate::new(2019, 9, 27).midnight();
        MeasurementPeriod {
            id: PeriodId::TokyoCdn2019,
            range: TimeRange::new(start, end),
        }
    }

    /// The six longitudinal periods of §3, in chronological order.
    pub fn longitudinal() -> [MeasurementPeriod; 6] {
        [
            Self::march_2018(),
            Self::june_2018(),
            Self::september_2018(),
            Self::march_2019(),
            Self::june_2019(),
            Self::september_2019(),
        ]
    }

    /// All seven survey periods (longitudinal plus April 2020), as plotted
    /// in Figure 1.
    pub fn survey_periods() -> [MeasurementPeriod; 7] {
        [
            Self::march_2018(),
            Self::june_2018(),
            Self::september_2018(),
            Self::march_2019(),
            Self::june_2019(),
            Self::september_2019(),
            Self::april_2020(),
        ]
    }

    /// Period identity.
    pub fn id(&self) -> PeriodId {
        self.id
    }

    /// Legend label (e.g. `2020-04`).
    pub fn label(&self) -> &'static str {
        self.id.label()
    }

    /// Covered time range.
    pub fn range(&self) -> TimeRange {
        self.range
    }

    /// Start instant.
    pub fn start(&self) -> UnixTime {
        self.range.start()
    }

    /// End instant (exclusive).
    pub fn end(&self) -> UnixTime {
        self.range.end()
    }

    /// Number of whole days covered.
    pub fn days(&self) -> i64 {
        self.range.duration_secs() / crate::unix::SECS_PER_DAY
    }
}

impl fmt::Display for MeasurementPeriod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::civil::CivilDateTime;

    #[test]
    fn longitudinal_periods_are_fifteen_days() {
        for p in MeasurementPeriod::longitudinal() {
            assert_eq!(p.days(), 15, "{p}");
        }
        assert_eq!(MeasurementPeriod::april_2020().days(), 15);
    }

    #[test]
    fn tokyo_period_is_eight_days_thursday_to_thursday() {
        let p = MeasurementPeriod::tokyo_cdn_2019();
        assert_eq!(p.days(), 8);
        let start = CivilDateTime::from_unix(p.start());
        assert_eq!(start.to_string(), "2019-09-19 00:00:00");
        assert_eq!(start.date.weekday(), crate::civil::Weekday::Thursday);
    }

    #[test]
    fn survey_periods_are_seven_and_ordered() {
        let ps = MeasurementPeriod::survey_periods();
        assert_eq!(ps.len(), 7);
        for w in ps.windows(2) {
            assert!(w[0].end() <= w[1].start(), "{} overlaps {}", w[0], w[1]);
        }
        assert!(ps[6].id().is_covid());
        assert!(!ps[0].id().is_covid());
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(MeasurementPeriod::march_2018().label(), "2018-03");
        assert_eq!(MeasurementPeriod::april_2020().label(), "2020-04");
        assert_eq!(MeasurementPeriod::september_2019().to_string(), "2019-09");
    }

    #[test]
    fn custom_period() {
        let r = TimeRange::new(UnixTime(0), UnixTime(86_400));
        let p = MeasurementPeriod::custom(r);
        assert_eq!(p.id(), PeriodId::Custom);
        assert_eq!(p.days(), 1);
        assert_eq!(p.range(), r);
    }
}
