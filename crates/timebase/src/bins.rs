//! Fixed-width time binning.
//!
//! The paper's noise-filtering strategy hinges on binning: probe RTT samples
//! are grouped into **30-minute** bins ("we deliberately employ large
//! time-bins (30-minute) to filter out transient congestion"), bins with
//! fewer than 3 traceroutes are discarded, and CDN throughput samples are
//! grouped into **15-minute** bins. [`BinSpec`] captures a bin width and
//! provides the index/start arithmetic; downstream crates use
//! [`BinSpec::bin_index`] as the grouping key.
//!
//! Bins are aligned to the Unix epoch, so a 30-minute bin always starts at
//! `:00` or `:30` — matching how the paper aligns its figures to wall-clock
//! half hours.

use crate::unix::{TimeRange, UnixTime};

/// Index of a bin relative to the Unix epoch: bin `i` covers
/// `[i * width, (i + 1) * width)` seconds.
pub type BinIndex = i64;

/// A fixed bin width, aligned to the Unix epoch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BinSpec {
    width_secs: i64,
}

impl BinSpec {
    /// Create a bin specification with the given width in seconds.
    ///
    /// Panics if `width_secs` is not positive.
    pub fn new(width_secs: i64) -> BinSpec {
        assert!(
            width_secs > 0,
            "bin width must be positive, got {width_secs}"
        );
        BinSpec { width_secs }
    }

    /// The paper's delay-analysis bin width: 30 minutes.
    pub fn thirty_minutes() -> BinSpec {
        BinSpec::new(30 * 60)
    }

    /// The paper's CDN throughput bin width: 15 minutes.
    pub fn fifteen_minutes() -> BinSpec {
        BinSpec::new(15 * 60)
    }

    /// Bin width in seconds.
    #[inline]
    pub fn width_secs(&self) -> i64 {
        self.width_secs
    }

    /// Number of bins in one day. Exact for widths dividing 86 400 (both
    /// paper widths do); otherwise the floor.
    pub fn bins_per_day(&self) -> usize {
        (crate::unix::SECS_PER_DAY / self.width_secs) as usize
    }

    /// Sampling rate implied by this bin width, in samples per hour. This
    /// is the rate handed to the Welch periodogram: 30-minute bins give
    /// 2 samples/hour, so the daily component sits at 1/24 cycles/hour.
    pub fn samples_per_hour(&self) -> f64 {
        crate::unix::SECS_PER_HOUR as f64 / self.width_secs as f64
    }

    /// The bin containing instant `t` (floor division, correct for
    /// pre-epoch instants too).
    #[inline]
    pub fn bin_index(&self, t: UnixTime) -> BinIndex {
        t.as_secs().div_euclid(self.width_secs)
    }

    /// Start instant of the bin containing `t`.
    #[inline]
    pub fn bin_start(&self, t: UnixTime) -> UnixTime {
        UnixTime::from_secs(self.bin_index(t) * self.width_secs)
    }

    /// Start instant of bin `i`.
    #[inline]
    pub fn index_start(&self, i: BinIndex) -> UnixTime {
        UnixTime::from_secs(i * self.width_secs)
    }

    /// The time range covered by bin `i`.
    pub fn index_range(&self, i: BinIndex) -> TimeRange {
        TimeRange::new(self.index_start(i), self.index_start(i + 1))
    }

    /// Number of bins whose *start* falls inside `range`.
    ///
    /// For ranges aligned to bin boundaries (all paper periods are), this
    /// is exactly the number of bins fully contained in the range.
    pub fn count_in(&self, range: &TimeRange) -> usize {
        self.indices_in(range).count()
    }

    /// Iterate indices of bins whose start falls inside `range`.
    pub fn indices_in(&self, range: &TimeRange) -> impl Iterator<Item = BinIndex> + use<> {
        self.index_span(range)
    }

    /// The half-open index interval of bins whose start falls inside
    /// `range` (the bounds form of [`BinSpec::indices_in`]).
    pub fn index_span(&self, range: &TimeRange) -> core::ops::Range<BinIndex> {
        let first = if range.start().as_secs().rem_euclid(self.width_secs) == 0 {
            self.bin_index(range.start())
        } else {
            self.bin_index(range.start()) + 1
        };
        let end = range.end();
        // Index of the first bin starting at or after `end`.
        let last_exclusive = if end.as_secs().rem_euclid(self.width_secs) == 0 {
            self.bin_index(end)
        } else {
            self.bin_index(end) + 1
        };
        first..last_exclusive.max(first)
    }

    /// Whether both endpoints of `range` sit exactly on bin boundaries.
    /// Aligned ranges partition into whole bins, which is what makes a
    /// cached full-bin median series safe to slice down to the range.
    pub fn is_aligned(&self, range: &TimeRange) -> bool {
        range.start().as_secs().rem_euclid(self.width_secs) == 0
            && range.end().as_secs().rem_euclid(self.width_secs) == 0
    }

    /// Iterate bin start instants inside `range`.
    pub fn starts_in(&self, range: &TimeRange) -> impl Iterator<Item = UnixTime> + use<> {
        let w = self.width_secs;
        self.indices_in(range)
            .map(move |i| UnixTime::from_secs(i * w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unix::SECS_PER_DAY;

    #[test]
    fn paper_bin_widths() {
        assert_eq!(BinSpec::thirty_minutes().width_secs(), 1800);
        assert_eq!(BinSpec::fifteen_minutes().width_secs(), 900);
        assert_eq!(BinSpec::thirty_minutes().bins_per_day(), 48);
        assert_eq!(BinSpec::fifteen_minutes().bins_per_day(), 96);
        assert!((BinSpec::thirty_minutes().samples_per_hour() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bin_index_floors() {
        let b = BinSpec::new(100);
        assert_eq!(b.bin_index(UnixTime(0)), 0);
        assert_eq!(b.bin_index(UnixTime(99)), 0);
        assert_eq!(b.bin_index(UnixTime(100)), 1);
        assert_eq!(b.bin_index(UnixTime(-1)), -1);
        assert_eq!(b.bin_start(UnixTime(-1)), UnixTime(-100));
    }

    #[test]
    fn index_range_is_half_open_and_contiguous() {
        let b = BinSpec::thirty_minutes();
        let r0 = b.index_range(0);
        let r1 = b.index_range(1);
        assert_eq!(r0.end(), r1.start());
        assert!(r0.contains(UnixTime(1799)));
        assert!(!r0.contains(UnixTime(1800)));
    }

    #[test]
    fn aligned_range_counts_exact_bins() {
        let b = BinSpec::thirty_minutes();
        let day = TimeRange::new(UnixTime(0), UnixTime(SECS_PER_DAY));
        assert_eq!(b.count_in(&day), 48);
        let starts: Vec<_> = b.starts_in(&day).collect();
        assert_eq!(starts.len(), 48);
        assert_eq!(starts[0], UnixTime(0));
        assert_eq!(starts[47], UnixTime(SECS_PER_DAY - 1800));
    }

    #[test]
    fn unaligned_range_skips_partial_leading_bin() {
        let b = BinSpec::new(100);
        // Range starting mid-bin: the first counted bin starts at 200.
        let r = TimeRange::new(UnixTime(150), UnixTime(450));
        let idx: Vec<_> = b.indices_in(&r).collect();
        assert_eq!(idx, vec![2, 3, 4]);
        // Range ending mid-bin: the bin starting at 400 still counts
        // (its *start* is inside the range).
        let r = TimeRange::new(UnixTime(100), UnixTime(401));
        let idx: Vec<_> = b.indices_in(&r).collect();
        assert_eq!(idx, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_range_has_no_bins() {
        let b = BinSpec::new(100);
        let r = TimeRange::new(UnixTime(50), UnixTime(50));
        assert_eq!(b.count_in(&r), 0);
        // A sub-bin-width range with no bin boundary inside also has none.
        let r = TimeRange::new(UnixTime(110), UnixTime(190));
        assert_eq!(b.count_in(&r), 0);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn rejects_nonpositive_width() {
        let _ = BinSpec::new(0);
    }
}
