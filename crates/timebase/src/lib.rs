//! # lastmile-timebase
//!
//! Time foundations for the last-mile congestion analysis pipeline.
//!
//! The IMC 2020 paper ("Persistent Last-mile Congestion: Not so Uncommon")
//! slices RIPE Atlas traceroute data into fixed UTC time bins (30 minutes
//! for delay, 15 minutes for CDN throughput), groups results by weekday to
//! plot "one week" figures, and defines eight *measurement periods* (the
//! 1st–15th of March/June/September 2018 and 2019, April 2020 for COVID-19,
//! and September 19–26 2019 for the Tokyo CDN cross-validation).
//!
//! This crate provides exactly those primitives, dependency-free:
//!
//! * [`UnixTime`] — seconds since the Unix epoch (UTC), the timestamp type
//!   used throughout the workspace.
//! * [`CivilDate`] / [`CivilDateTime`] — proleptic Gregorian calendar
//!   conversions (Howard Hinnant's `days_from_civil` algorithm) so we never
//!   need a calendar dependency.
//! * [`Weekday`] — day-of-week arithmetic for the weekly overlays of
//!   Figures 1 and 8.
//! * [`bins`] — fixed-width time binning ([`bins::BinSpec`]), the core of
//!   the paper's noise filtering ("we deliberately employ large time-bins").
//! * [`period`] — measurement periods, including constructors for all eight
//!   windows studied in the paper.
//! * [`TzOffset`] — fixed UTC offsets, used by the traffic simulator to
//!   place an ISP's demand peak in *local* evening hours.
//!
//! All dates in the paper (and in this workspace) are UTC.
//!
//! ## Example
//!
//! ```
//! use lastmile_timebase::{UnixTime, CivilDateTime, bins::BinSpec, period::MeasurementPeriod};
//!
//! // The first delay bin of the paper's September 2019 period.
//! let period = MeasurementPeriod::september_2019();
//! let bins = BinSpec::thirty_minutes();
//! let first = bins.bin_start(period.start());
//! assert_eq!(CivilDateTime::from_unix(first).to_string(), "2019-09-01 00:00:00");
//! // A 15-day period contains 15 * 48 half-hour bins.
//! assert_eq!(bins.count_in(&period.range()), 15 * 48);
//! ```

pub mod bins;
pub mod civil;
pub mod period;
pub mod tz;
pub mod unix;

pub use bins::{BinIndex, BinSpec};
pub use civil::{CivilDate, CivilDateTime, Month, Weekday};
pub use period::{MeasurementPeriod, PeriodId};
pub use tz::TzOffset;
pub use unix::{TimeRange, UnixTime, SECS_PER_DAY, SECS_PER_HOUR, SECS_PER_MIN, SECS_PER_WEEK};
