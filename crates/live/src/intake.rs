//! POST intake: validate a request body and spool accepted records.
//!
//! `POST /v1/traceroutes` bodies are framed and decoded by
//! [`lastmile_ingest::ingest_slice`] — the same framing and quarantine
//! taxonomy as batch ingest, verbatim. Accepted records are appended to
//! the **spool**: a JSON Lines file that is part of the daemon's union
//! corpus from startup, so every re-analysis (and any later cold
//! `classify` over corpus + spool) sees POSTed records exactly as
//! file-appended ones. Rejected records never touch the spool; they go
//! back to the client with their quarantine kind/detail.

use lastmile_atlas::ProbeId;
use lastmile_ingest::{ingest_slice, Quarantined};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The POST intake spool: an append-only JSON Lines file shared by all
/// worker threads (appends serialize on a mutex; each accepted batch is
/// written and flushed before the client gets its 200, so an accepted
/// record survives a crash).
pub struct Spool {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl Spool {
    /// Open (creating if absent) the spool at `path`.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Spool> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Spool {
            path,
            file: Mutex::new(file),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append each record as one newline-terminated line and flush.
    fn append_records(&self, records: &[&[u8]]) -> std::io::Result<()> {
        let mut file = self.file.lock().expect("spool lock poisoned");
        for record in records {
            file.write_all(record)?;
            file.write_all(b"\n")?;
        }
        file.flush()
    }
}

/// What one POST body produced.
pub struct IntakeOutcome {
    /// Records validated and spooled.
    pub accepted: u64,
    /// Probe of each accepted record (the caller invalidates their
    /// memoized series); may repeat.
    pub probes: Vec<ProbeId>,
    /// Records refused, with the batch-ingest quarantine taxonomy.
    pub rejected: Vec<Quarantined>,
}

/// Validate `body` and spool the accepted records. All-or-per-record:
/// each record stands alone (a bad line never blocks its neighbours),
/// exactly like batch ingest over a corrupted corpus. Nothing is
/// spooled if the write fails — the error propagates and the client
/// gets a 500 rather than a silently half-accepted batch.
pub fn intake_body(body: &[u8], spool: &Spool) -> std::io::Result<IntakeOutcome> {
    let mut raw: Vec<Vec<u8>> = Vec::new();
    let mut probes = Vec::new();
    let rejected = ingest_slice(body, |_, bytes, tr| {
        raw.push(bytes.to_vec());
        probes.push(tr.probe);
    });
    if !raw.is_empty() {
        let slices: Vec<&[u8]> = raw.iter().map(|r| r.as_slice()).collect();
        spool.append_records(&slices)?;
    }
    Ok(IntakeOutcome {
        accepted: raw.len() as u64,
        probes,
        rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_atlas::json::to_atlas_json;
    use lastmile_atlas::{Hop, Reply, TracerouteResult};
    use lastmile_timebase::UnixTime;

    fn record(probe: u32) -> String {
        let tr = TracerouteResult {
            probe: ProbeId(probe),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(1000 + i64::from(probe)),
            dst: "20.9.9.9".parse().unwrap(),
            src: "192.168.1.10".parse().unwrap(),
            hops: vec![Hop {
                hop: 1,
                replies: vec![Reply::answered("192.168.1.1".parse().unwrap(), 1.25)],
            }],
        };
        to_atlas_json(&tr, "20.0.0.1".parse().unwrap())
    }

    fn temp_spool(tag: &str) -> (Spool, PathBuf) {
        let path =
            std::env::temp_dir().join(format!("lastmile-spool-{tag}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        (Spool::open(&path).unwrap(), path)
    }

    #[test]
    fn accepted_records_spool_verbatim_rejects_carry_taxonomy() {
        let (spool, path) = temp_spool("mixed");
        let body = format!("{}\n{{\"bad\":1}}\nnot json\n{}\n", record(1), record(2));
        let outcome = intake_body(body.as_bytes(), &spool).unwrap();
        assert_eq!(outcome.accepted, 2);
        assert_eq!(outcome.probes, vec![ProbeId(1), ProbeId(2)]);
        assert_eq!(outcome.rejected.len(), 2);
        assert!(outcome.rejected.iter().all(|q| q.kind.name() == "json"));
        // The spool holds exactly the accepted records, newline-
        // terminated, in order — a valid JSON Lines corpus fragment.
        let spooled = std::fs::read_to_string(&path).unwrap();
        assert_eq!(spooled, format!("{}\n{}\n", record(1), record(2)));
        // A second batch appends.
        let outcome = intake_body(format!("{}\n", record(3)).as_bytes(), &spool).unwrap();
        assert_eq!(outcome.accepted, 1);
        let spooled = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            spooled,
            format!("{}\n{}\n{}\n", record(1), record(2), record(3))
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn all_rejected_body_spools_nothing() {
        let (spool, path) = temp_spool("rejected");
        let outcome = intake_body(b"junk\nmore junk\n", &spool).unwrap();
        assert_eq!(outcome.accepted, 0);
        assert_eq!(outcome.rejected.len(), 2);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        let _ = std::fs::remove_file(&path);
    }
}
