//! The debounced re-analysis scheduler.
//!
//! One engine thread owns the corpus watcher and the re-analysis
//! closure. Intake events — watcher appends, `POST /v1/traceroutes`
//! notifications — mark the engine dirty; the first mark starts a
//! debounce window, and the re-analysis runs once the window closes, so
//! a burst of appends coalesces into one recompute instead of N. The
//! deadline is anchored to the *first* signal (not pushed by later
//! ones), so a continuous stream cannot starve re-analysis forever.
//!
//! Dirty state is cleared *before* the closure runs: signals landing
//! mid-analysis re-arm the window and trigger another pass, which is
//! how readers converge on the union corpus without the engine ever
//! holding intake back.
//!
//! Intake paths never invalidate the memoizing store themselves — they
//! *record* dirty probes in the engine state, and each re-analysis pass
//! snapshots-and-clears that set (under the same lock that clears the
//! dirty window) and invalidates it just before reading the corpus.
//! Invalidating from the intake thread would race an in-flight
//! analysis: the analysis could insert a series built from bytes read
//! *before* the append, after the invalidation, resurrecting a stale
//! entry that the next pass would then cache-hit. With pass-start
//! invalidation the insert and the invalidation are sequenced on the
//! engine thread, so a dirty probe is always recomputed from bytes
//! that include its append.
//!
//! Shutdown drains: [`LiveEngine::shutdown`] lets an in-flight
//! re-analysis finish, then runs one final pass if signals are still
//! pending — so the epoch the daemon re-persists its cache under
//! reflects every accepted record, never a mix.

use crate::watch::{AppendWatcher, WatchPoll};
use lastmile_atlas::ProbeId;
use lastmile_ingest::ingest_slice;
use lastmile_obs::{trace, EpochRecord, EpochTelemetry, LiveMetrics};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Invalidate the memoized series of specific probes (fresh records
/// arrived for them).
pub type InvalidateFn = Box<dyn Fn(&[ProbeId]) + Send>;
/// Invalidate everything (corpus truncated/rotated: full re-ingest).
pub type InvalidateAllFn = Box<dyn Fn() + Send>;
/// Re-run the analysis over the union corpus and publish the next
/// epoch. Runs on the engine thread only.
pub type ReanalyzeFn = Box<dyn FnMut() -> Result<(), String> + Send>;

/// Scheduling knobs for [`LiveEngine::start`].
pub struct LiveConfig {
    /// Corpus append watcher (absent when only POST intake is enabled).
    pub watcher: Option<AppendWatcher>,
    /// Watcher poll cadence.
    pub poll_interval: Duration,
    /// Quiet window between the first intake signal and the re-analysis
    /// it triggers.
    pub debounce: Duration,
    /// Epoch telemetry ring every re-analysis pass records into (the
    /// `/v1/ops/epochs` flight recorder). `None` disables recording.
    pub telemetry: Option<Arc<EpochTelemetry>>,
}

/// Which intake paths signalled since the last pass snapshot-and-clear;
/// rendered into the epoch record's `trigger` field.
#[derive(Clone, Copy, Default)]
struct Triggers {
    watch_append: bool,
    watch_truncation: bool,
    post: bool,
}

impl Triggers {
    fn label(self) -> String {
        let mut parts = Vec::new();
        if self.watch_append {
            parts.push("watch_append");
        }
        if self.watch_truncation {
            parts.push("watch_truncation");
        }
        if self.post {
            parts.push("post");
        }
        if parts.is_empty() {
            "drain".to_string()
        } else {
            parts.join("+")
        }
    }
}

struct EngineState {
    /// When the current dirty window opened (None: clean).
    dirty_since: Option<Instant>,
    /// Probes with intake since the last re-analysis *started reading*;
    /// the next pass invalidates them before it reads. May repeat.
    dirty_probes: Vec<ProbeId>,
    /// Intake paths that signalled since the last pass; cleared with the
    /// dirty state so each epoch record attributes its own window.
    triggers: Triggers,
    shutdown: bool,
}

struct Shared {
    metrics: Arc<LiveMetrics>,
    telemetry: Option<Arc<EpochTelemetry>>,
    state: Mutex<EngineState>,
    cond: Condvar,
}

/// Cloneable signalling endpoint for intake paths outside the engine
/// thread (the `POST /v1/traceroutes` handler).
#[derive(Clone)]
pub struct LiveHandle {
    shared: Arc<Shared>,
}

impl LiveHandle {
    /// The engine's metrics (shared with `/metrics`).
    pub fn metrics(&self) -> &Arc<LiveMetrics> {
        &self.shared.metrics
    }

    /// Mark the engine dirty (opens the debounce window if closed) and
    /// wake it.
    pub fn notify_dirty(&self) {
        self.notify_dirty_probes(&[]);
    }

    /// [`LiveHandle::notify_dirty`], additionally recording the probes
    /// whose memoized series the next re-analysis pass must invalidate
    /// before it reads the corpus. The caller must have durably
    /// appended the probes' records (spool/corpus) *before* calling:
    /// the recording happens-before the pass's snapshot-and-clear,
    /// which happens-before its read, so the recomputed series always
    /// covers the append.
    pub fn notify_dirty_probes(&self, probes: &[ProbeId]) {
        let mut state = self.shared.state.lock().expect("live state poisoned");
        state.dirty_probes.extend_from_slice(probes);
        state.triggers.post = true;
        state.dirty_since.get_or_insert_with(Instant::now);
        drop(state);
        self.shared.cond.notify_one();
    }
}

/// The engine thread plus its shared state; see the module docs.
pub struct LiveEngine {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl LiveEngine {
    /// Spawn the engine thread.
    pub fn start(
        config: LiveConfig,
        metrics: Arc<LiveMetrics>,
        invalidate: InvalidateFn,
        invalidate_all: InvalidateAllFn,
        reanalyze: ReanalyzeFn,
    ) -> LiveEngine {
        let shared = Arc::new(Shared {
            metrics,
            telemetry: config.telemetry.clone(),
            state: Mutex::new(EngineState {
                dirty_since: None,
                dirty_probes: Vec::new(),
                triggers: Triggers::default(),
                shutdown: false,
            }),
            cond: Condvar::new(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("live-engine".into())
                .spawn(move || {
                    engine_loop(&shared, config, &invalidate, &invalidate_all, reanalyze)
                })
                .expect("spawn live engine")
        };
        LiveEngine {
            shared,
            thread: Some(thread),
        }
    }

    /// A signalling handle for other threads.
    pub fn handle(&self) -> LiveHandle {
        LiveHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stop the engine: an in-flight re-analysis finishes, one final
    /// pass drains any still-pending signals, the watcher offset is
    /// persisted, and the thread joins.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        {
            let mut state = self.shared.state.lock().expect("live state poisoned");
            state.shutdown = true;
        }
        self.shared.cond.notify_one();
        if thread.join().is_err() {
            eprintln!("[live] engine thread panicked during shutdown");
        }
    }
}

impl Drop for LiveEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn engine_loop(
    shared: &Shared,
    config: LiveConfig,
    invalidate: &InvalidateFn,
    invalidate_all: &InvalidateAllFn,
    mut reanalyze: ReanalyzeFn,
) {
    let mut watcher = config.watcher;
    let debounce = config.debounce;
    loop {
        // Sleep until a signal, the watcher poll, or the debounce
        // deadline — whichever is nearest.
        let shutdown = {
            let mut state = shared.state.lock().expect("live state poisoned");
            if !state.shutdown {
                let now = Instant::now();
                let until_deadline = state.dirty_since.map(|t| {
                    (t + debounce)
                        .checked_duration_since(now)
                        .unwrap_or(Duration::ZERO)
                });
                let sleep = match (until_deadline, watcher.is_some()) {
                    (Some(d), true) => d.min(config.poll_interval),
                    (Some(d), false) => d,
                    (None, true) => config.poll_interval,
                    // Nothing to poll, nothing pending: wait for a
                    // notify (bounded, for robustness against a lost
                    // wakeup).
                    (None, false) => Duration::from_secs(3600),
                };
                if !sleep.is_zero() {
                    let (guard, _) = shared
                        .cond
                        .wait_timeout(state, sleep)
                        .expect("live state poisoned");
                    state = guard;
                }
            }
            state.shutdown
        };
        if shutdown {
            break;
        }
        if let Some(w) = watcher.as_mut() {
            process_poll(w.poll(), shared, invalidate_all);
        }
        let due = {
            let state = shared.state.lock().expect("live state poisoned");
            let now = Instant::now();
            state.dirty_since.is_some_and(|t| now >= t + debounce)
        };
        if due {
            run_reanalysis(shared, invalidate, &mut reanalyze);
        }
    }
    // Drain: signals accepted before shutdown must reach an epoch
    // before the daemon re-persists its snapshot.
    let pending = {
        let state = shared.state.lock().expect("live state poisoned");
        state.dirty_since.is_some()
    };
    if pending {
        eprintln!("[live] draining pending re-analysis before shutdown");
        run_reanalysis(shared, invalidate, &mut reanalyze);
    }
    if let Some(w) = &watcher {
        w.persist_offset();
    }
}

/// Feed one watcher poll outcome into the dirty state.
fn process_poll(poll: WatchPoll, shared: &Shared, invalidate_all: &InvalidateAllFn) {
    match poll {
        WatchPoll::Unchanged => {}
        WatchPoll::Appended(bytes) => {
            let _span = trace::span_with("live_watch_append", |a| {
                a.u64("bytes", bytes.len() as u64);
            });
            let mut probes = Vec::new();
            let quarantined = ingest_slice(&bytes, |_, _, tr| probes.push(tr.probe));
            let m = &shared.metrics;
            m.watch_appends.fetch_add(1, Ordering::Relaxed);
            m.watch_quarantined
                .fetch_add(quarantined.len() as u64, Ordering::Relaxed);
            for q in &quarantined {
                eprintln!(
                    "[live] watch: quarantined record at byte {} ({}): {}",
                    q.offset,
                    q.kind.name(),
                    q.detail
                );
            }
            if !probes.is_empty() {
                m.records_ingested
                    .fetch_add(probes.len() as u64, Ordering::Relaxed);
                mark_dirty_probes(shared, &probes, |t| t.watch_append = true);
            }
        }
        WatchPoll::Truncated(bytes) => {
            let _span = trace::span_with("live_watch_truncation", |a| {
                a.u64("bytes", bytes.len() as u64);
            });
            eprintln!(
                "[live] watch: corpus truncated/rotated; falling back to full re-ingest ({} bytes)",
                bytes.len()
            );
            shared
                .metrics
                .watch_truncations
                .fetch_add(1, Ordering::Relaxed);
            // Every memoized series is suspect: the bytes they were
            // built from may be gone. Clearing on the engine thread is
            // race-free — inserts only happen in re-analysis passes,
            // which are sequenced on this same thread.
            invalidate_all();
            mark_dirty_probes(shared, &[], |t| t.watch_truncation = true);
        }
    }
}

fn mark_dirty_probes(shared: &Shared, probes: &[ProbeId], set_trigger: impl Fn(&mut Triggers)) {
    let mut state = shared.state.lock().expect("live state poisoned");
    state.dirty_probes.extend_from_slice(probes);
    set_trigger(&mut state.triggers);
    state.dirty_since.get_or_insert_with(Instant::now);
}

/// Run one re-analysis pass: snapshot-and-clear the dirty state (so
/// signals landing mid-analysis re-arm it), invalidate the dirty
/// probes' memoized series, then re-read and publish. Invalidation
/// happens here — on the engine thread, after any prior pass's inserts
/// and before this pass's read — never on the intake threads (see the
/// module docs for the resurrection race that ordering prevents).
fn run_reanalysis(shared: &Shared, invalidate: &InvalidateFn, reanalyze: &mut ReanalyzeFn) {
    let m = &shared.metrics;
    // The base records_ingested this pass covers: everything counted
    // before the files are re-read (later arrivals re-arm the window).
    let base = m.records_ingested.load(Ordering::Relaxed);
    let (dirty, triggers) = {
        let mut state = shared.state.lock().expect("live state poisoned");
        state.dirty_since = None;
        let triggers = std::mem::take(&mut state.triggers);
        (std::mem::take(&mut state.dirty_probes), triggers)
    };
    if !dirty.is_empty() {
        invalidate(&dirty);
    }
    let started = Instant::now();
    let _span = trace::span("live_reanalyze");
    let outcome = reanalyze();
    let pass_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let error = match &outcome {
        Ok(()) => {
            m.reanalyses.fetch_add(1, Ordering::Relaxed);
            m.reanalysis_nanos.store(pass_nanos, Ordering::Relaxed);
            m.records_analyzed.fetch_max(base, Ordering::Relaxed);
            String::new()
        }
        Err(e) => {
            m.reanalysis_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("[live] re-analysis failed: {e}");
            e.clone()
        }
    };
    if let Some(telemetry) = &shared.telemetry {
        // Epoch and swap nanos are read *after* the pass: the reanalyze
        // closure published them (on success), so the record names the
        // epoch this pass produced.
        telemetry.record(EpochRecord {
            epoch: m.epoch.load(Ordering::Relaxed),
            trigger: triggers.label(),
            records_ingested: base,
            probes_invalidated: dirty.len() as u64,
            pass_nanos,
            swap_nanos: m.swap_nanos.load(Ordering::Relaxed),
            outcome: if error.is_empty() {
                "published".to_string()
            } else {
                "error".to_string()
            },
            error,
            unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn counting_engine(
        watcher: Option<AppendWatcher>,
        debounce_ms: u64,
    ) -> (LiveEngine, Arc<AtomicU64>, Arc<LiveMetrics>) {
        let runs = Arc::new(AtomicU64::new(0));
        let metrics = Arc::new(LiveMetrics::new());
        let runs2 = Arc::clone(&runs);
        let engine = LiveEngine::start(
            LiveConfig {
                watcher,
                poll_interval: Duration::from_millis(5),
                debounce: Duration::from_millis(debounce_ms),
                telemetry: None,
            },
            Arc::clone(&metrics),
            Box::new(|_| {}),
            Box::new(|| {}),
            Box::new(move || {
                runs2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
        );
        (engine, runs, metrics)
    }

    fn wait_until(what: &str, deadline: Duration, reached: impl Fn() -> bool) {
        let t0 = Instant::now();
        while !reached() {
            assert!(t0.elapsed() < deadline, "never reached: {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn burst_of_signals_coalesces_into_one_reanalysis() {
        let (engine, runs, metrics) = counting_engine(None, 40);
        let handle = engine.handle();
        for _ in 0..5 {
            handle.notify_dirty();
            std::thread::sleep(Duration::from_millis(2));
        }
        wait_until("debounced re-analysis", Duration::from_secs(5), || {
            runs.load(Ordering::SeqCst) == 1
        });
        // Quiet afterwards: no further runs.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(metrics.reanalyses.load(Ordering::Relaxed), 1);
        engine.shutdown();
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "clean shutdown re-runs nothing"
        );
    }

    #[test]
    fn shutdown_drains_a_pending_window() {
        // Debounce far in the future: the signal is pending, never due.
        let (engine, runs, _metrics) = counting_engine(None, 60_000);
        engine.handle().notify_dirty();
        engine.shutdown();
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "pending signal must drain through one final re-analysis"
        );
    }

    #[test]
    fn dirty_probes_invalidate_at_pass_start_not_at_intake() {
        // The regression this pins: POST intake must NOT invalidate the
        // store from the worker thread (an in-flight analysis could
        // re-insert a stale series after that). Instead the probes are
        // recorded, and the pass invalidates them itself right before
        // it reads — strictly ordered before the re-analysis closure.
        let events = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
        let metrics = Arc::new(LiveMetrics::new());
        let ev_inv = Arc::clone(&events);
        let ev_run = Arc::clone(&events);
        let engine = LiveEngine::start(
            LiveConfig {
                watcher: None,
                poll_interval: Duration::from_millis(5),
                // Never due on its own: the pass runs only at the
                // shutdown drain, so the assertions are deterministic.
                debounce: Duration::from_secs(600),
                telemetry: None,
            },
            metrics,
            Box::new(move |probes: &[ProbeId]| {
                let ids: Vec<u32> = probes.iter().map(|p| p.0).collect();
                ev_inv.lock().unwrap().push(format!("invalidate:{ids:?}"));
            }),
            Box::new(|| {}),
            Box::new(move || {
                ev_run.lock().unwrap().push("reanalyze".into());
                Ok(())
            }),
        );
        let handle = engine.handle();
        handle.notify_dirty_probes(&[ProbeId(7)]);
        handle.notify_dirty_probes(&[ProbeId(9), ProbeId(7)]);
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            events.lock().unwrap().is_empty(),
            "intake must only record dirty probes, never invalidate inline"
        );
        engine.shutdown();
        assert_eq!(
            *events.lock().unwrap(),
            vec!["invalidate:[7, 9, 7]".to_string(), "reanalyze".to_string()],
            "one coalesced invalidation, strictly before the pass reads"
        );
    }

    #[test]
    fn reanalysis_errors_count_and_do_not_hot_loop() {
        let runs = Arc::new(AtomicU64::new(0));
        let metrics = Arc::new(LiveMetrics::new());
        let telemetry = Arc::new(EpochTelemetry::new());
        let runs2 = Arc::clone(&runs);
        let engine = LiveEngine::start(
            LiveConfig {
                watcher: None,
                poll_interval: Duration::from_millis(5),
                debounce: Duration::from_millis(10),
                telemetry: Some(Arc::clone(&telemetry)),
            },
            Arc::clone(&metrics),
            Box::new(|_| {}),
            Box::new(|| {}),
            Box::new(move || {
                runs2.fetch_add(1, Ordering::SeqCst);
                Err("boom".to_string())
            }),
        );
        engine.handle().notify_dirty();
        wait_until("failed re-analysis", Duration::from_secs(5), || {
            runs.load(Ordering::SeqCst) >= 1
        });
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(runs.load(Ordering::SeqCst), 1, "an error must not hot-loop");
        assert_eq!(metrics.reanalysis_errors.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.reanalyses.load(Ordering::Relaxed), 0);
        // The drain pass at shutdown is skipped when nothing is pending.
        engine.shutdown();
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        // The failed pass left a structured record in the telemetry ring.
        let records = telemetry.snapshot();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].outcome, "error");
        assert_eq!(records[0].error, "boom");
        assert_eq!(records[0].trigger, "post");
    }

    #[test]
    fn epoch_telemetry_attributes_triggers_per_pass() {
        let metrics = Arc::new(LiveMetrics::new());
        let telemetry = Arc::new(EpochTelemetry::new());
        let epoch = Arc::clone(&metrics);
        let engine = LiveEngine::start(
            LiveConfig {
                watcher: None,
                poll_interval: Duration::from_millis(5),
                // Only the shutdown drain runs the pass: deterministic.
                debounce: Duration::from_secs(600),
                telemetry: Some(Arc::clone(&telemetry)),
            },
            Arc::clone(&metrics),
            Box::new(|_| {}),
            Box::new(|| {}),
            Box::new(move || {
                // Mimic the real closure: publishing bumps the epoch.
                epoch.epoch.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }),
        );
        let handle = engine.handle();
        handle.notify_dirty_probes(&[ProbeId(7), ProbeId(9)]);
        engine.shutdown();
        let records = telemetry.snapshot();
        assert_eq!(records.len(), 1, "one drain pass, one record");
        let r = &records[0];
        assert_eq!(r.trigger, "post");
        assert_eq!(r.probes_invalidated, 2);
        assert_eq!(r.outcome, "published");
        assert_eq!(r.epoch, 1, "records the epoch the pass produced");
        assert!(r.unix_ms > 0);
        assert_eq!(r.error, "");
    }
}
