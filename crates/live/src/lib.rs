//! # lastmile-live
//!
//! The continuous-ingestion engine that turns the `lastmile serve`
//! daemon from a snapshot viewer into an always-on congestion
//! observatory. Three pieces, composed by the CLI:
//!
//! * [`epoch::Epoch`] — RCU-style publication of immutable analysis
//!   snapshots: readers clone an `Arc` under a briefly held lock and
//!   then never block on (or observe) a writer; each publish bumps a
//!   generation counter, so a response can be labelled with exactly one
//!   epoch.
//! * [`watch::AppendWatcher`] — polls the corpus file's length and
//!   identity (`(dev, inode)` where available), slurps
//!   newline-terminated appended bytes from a persisted resume offset,
//!   and falls back to a full re-ingest on truncation/rotation —
//!   including rename-rotation to a same-or-longer replacement.
//! * [`engine::LiveEngine`] — the scheduler thread: watcher polls and
//!   `POST /v1/traceroutes` notifications mark probes dirty, a debounce
//!   window coalesces bursts, then one re-analysis pass invalidates the
//!   dirty probes' memoized series (on the engine thread, so an
//!   in-flight pass can never resurrect a stale entry) and publishes
//!   the next epoch. Shutdown drains: a pending re-analysis completes
//!   before the engine joins, so the snapshot the daemon re-persists
//!   never mixes epochs.
//!
//! The correctness contract the whole crate serves: after any sequence
//! of accepted appends, `GET /v1/classify` is byte-identical to a cold
//! `classify --json` over the union corpus (main file + POST spool).

pub mod engine;
pub mod epoch;
pub mod intake;
pub mod watch;

pub use engine::{LiveConfig, LiveEngine, LiveHandle};
pub use epoch::Epoch;
pub use intake::{intake_body, IntakeOutcome, Spool};
pub use watch::{newline_aligned_len, AppendWatcher, WatchPoll};
