//! RCU-style snapshot publication.
//!
//! One [`Epoch`] cell holds the currently published analysis snapshot
//! behind an `Arc`. Readers take a read lock only long enough to clone
//! the `Arc` and the generation it was published under — nanoseconds —
//! then work off their clone without ever observing a writer. Writers
//! build the next snapshot entirely off to the side (re-analysis takes
//! seconds) and swap it in with one pointer store under the write lock.
//! In-flight readers keep their old `Arc` alive until they drop it, so
//! a reader sees exactly one epoch per request: never a torn mix, never
//! a block on re-analysis.

use std::sync::{Arc, RwLock};

/// An epoch-swapped snapshot cell. Generation starts at 1 for the
/// initial value and increments on every [`Epoch::publish`].
pub struct Epoch<T> {
    // Generation and pointer live under one lock so the pair a reader
    // sees is always consistent (an atomic counter beside the lock
    // could be observed mid-swap).
    slot: RwLock<(u64, Arc<T>)>,
}

impl<T> Epoch<T> {
    /// A cell publishing `initial` as generation 1.
    pub fn new(initial: T) -> Epoch<T> {
        Epoch {
            slot: RwLock::new((1, Arc::new(initial))),
        }
    }

    /// The current snapshot and the generation it was published under.
    pub fn read(&self) -> (u64, Arc<T>) {
        let slot = self.slot.read().expect("epoch lock poisoned");
        (slot.0, Arc::clone(&slot.1))
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.slot.read().expect("epoch lock poisoned").0
    }

    /// Publish `next` as the new snapshot; returns its generation.
    pub fn publish(&self, next: T) -> u64 {
        let mut slot = self.slot.write().expect("epoch lock poisoned");
        slot.0 += 1;
        slot.1 = Arc::new(next);
        slot.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn generations_start_at_one_and_increment() {
        let epoch = Epoch::new("a");
        assert_eq!(epoch.generation(), 1);
        let (generation, value) = epoch.read();
        assert_eq!((generation, *value), (1, "a"));
        assert_eq!(epoch.publish("b"), 2);
        let (generation, value) = epoch.read();
        assert_eq!((generation, *value), (2, "b"));
    }

    #[test]
    fn readers_hold_their_snapshot_across_a_publish() {
        let epoch = Epoch::new(vec![1u64; 8]);
        let (generation, before) = epoch.read();
        assert_eq!(generation, 1);
        epoch.publish(vec![2u64; 8]);
        // The pre-swap clone is untouched by the publish.
        assert!(before.iter().all(|&v| v == 1));
        let (generation, after) = epoch.read();
        assert_eq!(generation, 2);
        assert!(after.iter().all(|&v| v == 2));
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_snapshot() {
        // Payload invariant: every element equals the generation it was
        // published under. A torn read (mixing two epochs) would break
        // it; so would a generation/pointer mismatch.
        let epoch = Arc::new(Epoch::new(vec![1u64; 64]));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let epoch = Arc::clone(&epoch);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last_seen = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let (generation, snap) = epoch.read();
                        assert!(
                            snap.iter().all(|&v| v == generation),
                            "torn snapshot at generation {generation}"
                        );
                        assert!(generation >= last_seen, "generation went backwards");
                        last_seen = generation;
                    }
                });
            }
            for next in 2..200u64 {
                assert_eq!(epoch.publish(vec![next; 64]), next);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(epoch.generation(), 199);
    }
}
