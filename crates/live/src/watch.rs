//! The corpus-file append watcher.
//!
//! RIPE-Atlas-style corpora are JSON Lines files that only ever grow:
//! collectors append newline-terminated records. The watcher polls the
//! file's length (no inotify — portable and cheap at live-intake
//! rates), and on growth slurps the appended bytes up to the **last
//! newline** — a partial tail line stays on disk for the next poll, so
//! a record mid-append is never framed early and arbitrary append
//! chunkings converge on the same byte stream. On shrink (truncation or
//! rotation-in-place) it resets to offset zero and re-reads, signalling
//! the caller to fall back to a full re-ingest.
//!
//! The consumed offset is persisted to a sidecar file after every
//! slurp, so a restarted daemon resumes where it left off instead of
//! re-signalling work it already analyzed.
//!
//! Length alone cannot catch a rotation that swaps in a file at least
//! as long as the consumed offset, so the watcher also tracks the
//! file's identity — `(dev, inode)` on Unix — per poll and across
//! restarts (persisted next to the offset): any identity change reads
//! as a truncation and triggers the same full re-ingest fallback.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// A filesystem identity for the watched file: `(device, inode)` where
/// the platform exposes them, `None` elsewhere (detection then falls
/// back to length-only).
type FileIdentity = Option<(u64, u64)>;

#[cfg(unix)]
fn file_identity(meta: &std::fs::Metadata) -> FileIdentity {
    use std::os::unix::fs::MetadataExt;
    Some((meta.dev(), meta.ino()))
}

#[cfg(not(unix))]
fn file_identity(_meta: &std::fs::Metadata) -> FileIdentity {
    None
}

/// Outcome of one [`AppendWatcher::poll`].
#[derive(Debug, PartialEq, Eq)]
pub enum WatchPoll {
    /// No complete new record since the last poll.
    Unchanged,
    /// Newline-terminated bytes appended since the last poll.
    Appended(Vec<u8>),
    /// The file shrank (truncation/rotation). Offset was reset; the
    /// carried bytes are the file's content from the start up to its
    /// last newline. The caller must treat this as a full re-ingest
    /// (every memoized series is suspect).
    Truncated(Vec<u8>),
}

/// Polls one append-only corpus file; see the module docs.
pub struct AppendWatcher {
    path: PathBuf,
    offset: u64,
    /// Identity of the file the offset refers to (`None` until the
    /// file has been observed).
    identity: FileIdentity,
    offset_file: Option<PathBuf>,
}

impl AppendWatcher {
    /// Watch `path`, resuming from the offset persisted in
    /// `offset_file` when one is present and plausible: it must be ≤
    /// `fallback_offset` (the corpus length the caller's startup
    /// analysis covered), and when the sidecar also recorded the
    /// file's identity, that identity must still match the file on
    /// disk (the file was replaced while the daemon was down
    /// otherwise). A persisted offset *behind* the fallback is
    /// honoured — the overlap is re-signalled, which is harmless
    /// (re-analysis is idempotent).
    pub fn new(
        path: impl Into<PathBuf>,
        offset_file: Option<PathBuf>,
        fallback_offset: u64,
    ) -> AppendWatcher {
        let path = path.into();
        let identity = std::fs::metadata(&path)
            .ok()
            .as_ref()
            .and_then(file_identity);
        let offset = offset_file
            .as_deref()
            .and_then(load_offset)
            .filter(|(o, persisted_identity)| {
                *o <= fallback_offset
                    && match (persisted_identity, identity) {
                        (Some(was), Some(now)) => *was == now,
                        // Either side unknown: length is all we have.
                        _ => true,
                    }
            })
            .map(|(o, _)| o)
            .unwrap_or(fallback_offset);
        AppendWatcher {
            path,
            offset,
            identity,
            offset_file,
        }
    }

    /// The consumed byte offset (everything before it has been
    /// delivered through [`AppendWatcher::poll`] or was covered by the
    /// caller's startup analysis).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Check the file once. I/O errors (file momentarily absent during
    /// a rotation, permissions hiccup) read as [`WatchPoll::Unchanged`]
    /// so the engine just retries next interval.
    pub fn poll(&mut self) -> WatchPoll {
        let meta = match std::fs::metadata(&self.path) {
            Ok(meta) => meta,
            Err(_) => return WatchPoll::Unchanged,
        };
        let len = meta.len();
        let identity = file_identity(&meta);
        // A new identity is a rotation even when the replacement is as
        // long as the consumed offset — the bytes behind the offset are
        // a different file's, so a length-only check would silently
        // slurp from mid-record.
        let rotated = matches!((self.identity, identity), (Some(was), Some(now)) if was != now);
        self.identity = identity;
        if rotated || len < self.offset {
            // Truncated or rotated: everything we thought we had
            // consumed may be gone. Start over.
            self.offset = 0;
            let bytes = self.read_new_bytes(len).unwrap_or_default();
            self.advance(&bytes);
            let consumed = consumed_len(&bytes);
            return WatchPoll::Truncated(bytes[..consumed].to_vec());
        }
        if len == self.offset {
            return WatchPoll::Unchanged;
        }
        let bytes = match self.read_new_bytes(len) {
            Ok(bytes) => bytes,
            Err(_) => return WatchPoll::Unchanged,
        };
        let consumed = consumed_len(&bytes);
        if consumed == 0 {
            // Only a partial line so far; wait for its newline.
            return WatchPoll::Unchanged;
        }
        self.advance(&bytes);
        WatchPoll::Appended(bytes[..consumed].to_vec())
    }

    /// Persist the consumed offset — and, where known, the identity of
    /// the file it refers to — (best-effort; a failure only costs a
    /// harmless overlap re-signal after a restart).
    pub fn persist_offset(&self) {
        if let Some(file) = &self.offset_file {
            let line = match self.identity {
                Some((dev, ino)) => format!("{} {dev} {ino}\n", self.offset),
                None => format!("{}\n", self.offset),
            };
            let _ = std::fs::write(file, line);
        }
    }

    /// Read `[offset, len)` from the file (clamped to `len` even if the
    /// file grew between the stat and the read, keeping the slurp
    /// newline-aligned with what the stat promised).
    fn read_new_bytes(&self, len: u64) -> std::io::Result<Vec<u8>> {
        let mut file = std::fs::File::open(&self.path)?;
        file.seek(SeekFrom::Start(self.offset))?;
        let mut bytes = Vec::with_capacity((len - self.offset) as usize);
        file.take(len - self.offset).read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    /// Advance past the newline-terminated prefix of `bytes` and
    /// persist the new offset.
    fn advance(&mut self, bytes: &[u8]) {
        self.offset += consumed_len(bytes) as u64;
        self.persist_offset();
    }
}

/// Length of the newline-terminated prefix of `bytes` (0 when no
/// newline: the whole slice is a partial tail line).
fn consumed_len(bytes: &[u8]) -> usize {
    bytes
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |pos| pos + 1)
}

/// The offset (and file identity, when the sidecar recorded one)
/// persisted in `path`, if readable. The identity-less single-token
/// form is accepted for sidecars written where identities are
/// unavailable.
fn load_offset(path: &Path) -> Option<(u64, FileIdentity)> {
    let contents = std::fs::read_to_string(path).ok()?;
    let mut tokens = contents.split_whitespace();
    let offset = tokens.next()?.parse().ok()?;
    let identity = match (tokens.next(), tokens.next()) {
        (Some(dev), Some(ino)) => Some((dev.parse().ok()?, ino.parse().ok()?)),
        _ => None,
    };
    Some((offset, identity))
}

/// The length of the newline-terminated prefix of the file at `path`
/// (0 on any I/O error or when the file holds no newline at all).
///
/// `serve --watch` uses this for the watcher's fallback start offset:
/// a collector append can be mid-record when the daemon starts, and a
/// bare `metadata().len()` would then park the offset inside that
/// record, making the first poll deliver a record *tail* that gets
/// quarantined as framing junk. Aligning to the last newline mirrors
/// the framing the watcher itself uses; the partial record is simply
/// redelivered whole once its newline lands.
pub fn newline_aligned_len(path: impl AsRef<Path>) -> u64 {
    fn aligned(path: &Path) -> std::io::Result<u64> {
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let mut buf = [0u8; 64 * 1024];
        let mut end = len;
        // Scan backwards a chunk at a time for the last newline.
        while end > 0 {
            let start = end.saturating_sub(buf.len() as u64);
            let chunk = &mut buf[..(end - start) as usize];
            file.seek(SeekFrom::Start(start))?;
            file.read_exact(chunk)?;
            if let Some(pos) = chunk.iter().rposition(|&b| b == b'\n') {
                return Ok(start + pos as u64 + 1);
            }
            end = start;
        }
        Ok(0)
    }
    aligned(path.as_ref()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("lastmile-watch-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn append(path: &Path, bytes: &[u8]) {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap();
        f.write_all(bytes).unwrap();
    }

    #[test]
    fn appends_are_delivered_only_at_newline_boundaries() {
        let dir = TempDir::new("newline");
        let corpus = dir.path("corpus.jsonl");
        append(&corpus, b"one\n");
        let mut w = AppendWatcher::new(&corpus, None, 4);
        assert_eq!(w.poll(), WatchPoll::Unchanged);
        // A partial line is held back...
        append(&corpus, b"tw");
        assert_eq!(w.poll(), WatchPoll::Unchanged);
        assert_eq!(w.offset(), 4);
        // ...and delivered once its newline lands, as one delta.
        append(&corpus, b"o\nthree\n");
        assert_eq!(w.poll(), WatchPoll::Appended(b"two\nthree\n".to_vec()));
        assert_eq!(w.offset(), 14);
        // A delta with a trailing partial line delivers only the
        // terminated prefix.
        append(&corpus, b"four\npart");
        assert_eq!(w.poll(), WatchPoll::Appended(b"four\n".to_vec()));
        assert_eq!(w.offset(), 19);
    }

    #[test]
    fn truncation_resets_and_redelivers_from_zero() {
        let dir = TempDir::new("trunc");
        let corpus = dir.path("corpus.jsonl");
        append(&corpus, b"aaa\nbbb\n");
        let mut w = AppendWatcher::new(&corpus, None, 8);
        // Rotation: replaced by a shorter file with different content.
        std::fs::write(&corpus, b"ccc\n").unwrap();
        assert_eq!(w.poll(), WatchPoll::Truncated(b"ccc\n".to_vec()));
        assert_eq!(w.offset(), 4);
        // Appends after the rotation resume normal delivery.
        append(&corpus, b"ddd\n");
        assert_eq!(w.poll(), WatchPoll::Appended(b"ddd\n".to_vec()));
    }

    #[test]
    fn truncation_to_empty_still_signals() {
        let dir = TempDir::new("empty");
        let corpus = dir.path("corpus.jsonl");
        append(&corpus, b"aaa\n");
        let mut w = AppendWatcher::new(&corpus, None, 4);
        std::fs::write(&corpus, b"").unwrap();
        assert_eq!(w.poll(), WatchPoll::Truncated(Vec::new()));
        assert_eq!(w.offset(), 0);
    }

    #[test]
    fn missing_file_reads_as_unchanged() {
        let dir = TempDir::new("missing");
        let mut w = AppendWatcher::new(dir.path("nope.jsonl"), None, 0);
        assert_eq!(w.poll(), WatchPoll::Unchanged);
    }

    #[test]
    fn offset_persists_and_resumes() {
        let dir = TempDir::new("resume");
        let corpus = dir.path("corpus.jsonl");
        let sidecar = dir.path("corpus.offset");
        append(&corpus, b"one\n");
        let mut w = AppendWatcher::new(&corpus, Some(sidecar.clone()), 4);
        append(&corpus, b"two\n");
        assert_eq!(w.poll(), WatchPoll::Appended(b"two\n".to_vec()));
        drop(w);
        // A new watcher (same sidecar) resumes past both lines even
        // with a stale fallback.
        let mut w = AppendWatcher::new(&corpus, Some(sidecar.clone()), 8);
        assert_eq!(w.offset(), 8);
        assert_eq!(w.poll(), WatchPoll::Unchanged);
        // A persisted offset beyond the fallback (file replaced while
        // down) is discarded in favour of the fallback.
        std::fs::write(&sidecar, b"9999\n").unwrap();
        let w = AppendWatcher::new(&corpus, Some(sidecar.clone()), 8);
        assert_eq!(w.offset(), 8);
        // A persisted offset behind the fallback is honoured (overlap
        // re-signals are harmless).
        std::fs::write(&sidecar, b"4\n").unwrap();
        let mut w = AppendWatcher::new(&corpus, Some(sidecar), 8);
        assert_eq!(w.offset(), 4);
        assert_eq!(w.poll(), WatchPoll::Appended(b"two\n".to_vec()));
    }

    #[cfg(unix)]
    #[test]
    fn same_length_rotation_is_detected_by_identity() {
        let dir = TempDir::new("rotate-id");
        let corpus = dir.path("corpus.jsonl");
        append(&corpus, b"aaa\nbbb\n");
        let mut w = AppendWatcher::new(&corpus, None, 8);
        assert_eq!(w.poll(), WatchPoll::Unchanged);
        // Rotation via rename: the replacement is exactly as long as
        // the consumed offset, so a length-only check would see
        // "unchanged" and keep serving series memoized from the old
        // file's bytes.
        let staging = dir.path("corpus.jsonl.new");
        std::fs::write(&staging, b"ccc\nddd\n").unwrap();
        std::fs::rename(&staging, &corpus).unwrap();
        assert_eq!(w.poll(), WatchPoll::Truncated(b"ccc\nddd\n".to_vec()));
        assert_eq!(w.offset(), 8);
        // And a *longer* replacement is caught too.
        let staging = dir.path("corpus.jsonl.new");
        std::fs::write(&staging, b"eee\nfff\nggg\n").unwrap();
        std::fs::rename(&staging, &corpus).unwrap();
        assert_eq!(w.poll(), WatchPoll::Truncated(b"eee\nfff\nggg\n".to_vec()));
        append(&corpus, b"hhh\n");
        assert_eq!(w.poll(), WatchPoll::Appended(b"hhh\n".to_vec()));
    }

    #[cfg(unix)]
    #[test]
    fn persisted_offset_for_a_replaced_file_is_discarded() {
        let dir = TempDir::new("rotate-resume");
        let corpus = dir.path("corpus.jsonl");
        let sidecar = dir.path("corpus.offset");
        append(&corpus, b"one\ntwo\n");
        let mut w = AppendWatcher::new(&corpus, Some(sidecar.clone()), 4);
        assert_eq!(w.poll(), WatchPoll::Appended(b"two\n".to_vec()));
        drop(w);
        // Replace the corpus (same length) while "down": the sidecar's
        // recorded identity no longer matches, so the offset is
        // discarded in favour of the fallback.
        let staging = dir.path("corpus.jsonl.new");
        std::fs::write(&staging, b"XXX\nYYY\n").unwrap();
        std::fs::rename(&staging, &corpus).unwrap();
        let w = AppendWatcher::new(&corpus, Some(sidecar.clone()), 0);
        assert_eq!(w.offset(), 0, "stale offset must not survive a swap");
        // Same file still in place: the persisted offset is honoured.
        w.persist_offset();
        let w = AppendWatcher::new(&corpus, Some(sidecar), 8);
        assert_eq!(w.offset(), 0);
    }

    #[test]
    fn newline_aligned_len_backs_off_to_the_last_newline() {
        let dir = TempDir::new("aligned");
        let corpus = dir.path("corpus.jsonl");
        assert_eq!(newline_aligned_len(&corpus), 0, "missing file");
        append(&corpus, b"one\ntwo\n");
        assert_eq!(newline_aligned_len(&corpus), 8);
        // A mid-write partial record doesn't count.
        append(&corpus, b"par");
        assert_eq!(newline_aligned_len(&corpus), 8);
        append(&corpus, b"t\n");
        assert_eq!(newline_aligned_len(&corpus), 13);
        // No newline anywhere: nothing is safely framed yet.
        std::fs::write(&corpus, b"unterminated").unwrap();
        assert_eq!(newline_aligned_len(&corpus), 0);
    }

    #[test]
    fn newline_aligned_len_scans_past_one_chunk() {
        let dir = TempDir::new("aligned-big");
        let corpus = dir.path("corpus.jsonl");
        // One newline followed by a >64 KiB partial tail: the scan must
        // cross the chunk boundary to find it.
        let mut bytes = b"head\n".to_vec();
        bytes.extend(std::iter::repeat_n(b'x', 100 * 1024));
        append(&corpus, &bytes);
        assert_eq!(newline_aligned_len(&corpus), 5);
    }
}
