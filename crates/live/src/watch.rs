//! The corpus-file append watcher.
//!
//! RIPE-Atlas-style corpora are JSON Lines files that only ever grow:
//! collectors append newline-terminated records. The watcher polls the
//! file's length (no inotify — portable and cheap at live-intake
//! rates), and on growth slurps the appended bytes up to the **last
//! newline** — a partial tail line stays on disk for the next poll, so
//! a record mid-append is never framed early and arbitrary append
//! chunkings converge on the same byte stream. On shrink (truncation or
//! rotation-in-place) it resets to offset zero and re-reads, signalling
//! the caller to fall back to a full re-ingest.
//!
//! The consumed offset is persisted to a sidecar file after every
//! slurp, so a restarted daemon resumes where it left off instead of
//! re-signalling work it already analyzed.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Outcome of one [`AppendWatcher::poll`].
#[derive(Debug, PartialEq, Eq)]
pub enum WatchPoll {
    /// No complete new record since the last poll.
    Unchanged,
    /// Newline-terminated bytes appended since the last poll.
    Appended(Vec<u8>),
    /// The file shrank (truncation/rotation). Offset was reset; the
    /// carried bytes are the file's content from the start up to its
    /// last newline. The caller must treat this as a full re-ingest
    /// (every memoized series is suspect).
    Truncated(Vec<u8>),
}

/// Polls one append-only corpus file; see the module docs.
pub struct AppendWatcher {
    path: PathBuf,
    offset: u64,
    offset_file: Option<PathBuf>,
}

impl AppendWatcher {
    /// Watch `path`, resuming from the offset persisted in
    /// `offset_file` when one is present and plausible (≤
    /// `fallback_offset`, the corpus length the caller's startup
    /// analysis covered). A persisted offset *behind* the fallback is
    /// honoured — the overlap is re-signalled, which is harmless
    /// (re-analysis is idempotent) — while one beyond it (the file was
    /// replaced while the daemon was down) falls back.
    pub fn new(
        path: impl Into<PathBuf>,
        offset_file: Option<PathBuf>,
        fallback_offset: u64,
    ) -> AppendWatcher {
        let offset = offset_file
            .as_deref()
            .and_then(load_offset)
            .filter(|&o| o <= fallback_offset)
            .unwrap_or(fallback_offset);
        AppendWatcher {
            path: path.into(),
            offset,
            offset_file,
        }
    }

    /// The consumed byte offset (everything before it has been
    /// delivered through [`AppendWatcher::poll`] or was covered by the
    /// caller's startup analysis).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Check the file once. I/O errors (file momentarily absent during
    /// a rotation, permissions hiccup) read as [`WatchPoll::Unchanged`]
    /// so the engine just retries next interval.
    pub fn poll(&mut self) -> WatchPoll {
        let len = match std::fs::metadata(&self.path) {
            Ok(meta) => meta.len(),
            Err(_) => return WatchPoll::Unchanged,
        };
        if len < self.offset {
            // Truncated or rotated in place: everything we thought we
            // had consumed may be gone. Start over.
            self.offset = 0;
            let bytes = self.read_new_bytes(len).unwrap_or_default();
            self.advance(&bytes);
            let consumed = consumed_len(&bytes);
            return WatchPoll::Truncated(bytes[..consumed].to_vec());
        }
        if len == self.offset {
            return WatchPoll::Unchanged;
        }
        let bytes = match self.read_new_bytes(len) {
            Ok(bytes) => bytes,
            Err(_) => return WatchPoll::Unchanged,
        };
        let consumed = consumed_len(&bytes);
        if consumed == 0 {
            // Only a partial line so far; wait for its newline.
            return WatchPoll::Unchanged;
        }
        self.advance(&bytes);
        WatchPoll::Appended(bytes[..consumed].to_vec())
    }

    /// Persist the consumed offset (best-effort; a failure only costs a
    /// harmless overlap re-signal after a restart).
    pub fn persist_offset(&self) {
        if let Some(file) = &self.offset_file {
            let _ = std::fs::write(file, format!("{}\n", self.offset));
        }
    }

    /// Read `[offset, len)` from the file (clamped to `len` even if the
    /// file grew between the stat and the read, keeping the slurp
    /// newline-aligned with what the stat promised).
    fn read_new_bytes(&self, len: u64) -> std::io::Result<Vec<u8>> {
        let mut file = std::fs::File::open(&self.path)?;
        file.seek(SeekFrom::Start(self.offset))?;
        let mut bytes = Vec::with_capacity((len - self.offset) as usize);
        file.take(len - self.offset).read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    /// Advance past the newline-terminated prefix of `bytes` and
    /// persist the new offset.
    fn advance(&mut self, bytes: &[u8]) {
        self.offset += consumed_len(bytes) as u64;
        self.persist_offset();
    }
}

/// Length of the newline-terminated prefix of `bytes` (0 when no
/// newline: the whole slice is a partial tail line).
fn consumed_len(bytes: &[u8]) -> usize {
    bytes
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |pos| pos + 1)
}

/// The offset persisted in `path`, if readable.
fn load_offset(path: &Path) -> Option<u64> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("lastmile-watch-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn append(path: &Path, bytes: &[u8]) {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap();
        f.write_all(bytes).unwrap();
    }

    #[test]
    fn appends_are_delivered_only_at_newline_boundaries() {
        let dir = TempDir::new("newline");
        let corpus = dir.path("corpus.jsonl");
        append(&corpus, b"one\n");
        let mut w = AppendWatcher::new(&corpus, None, 4);
        assert_eq!(w.poll(), WatchPoll::Unchanged);
        // A partial line is held back...
        append(&corpus, b"tw");
        assert_eq!(w.poll(), WatchPoll::Unchanged);
        assert_eq!(w.offset(), 4);
        // ...and delivered once its newline lands, as one delta.
        append(&corpus, b"o\nthree\n");
        assert_eq!(w.poll(), WatchPoll::Appended(b"two\nthree\n".to_vec()));
        assert_eq!(w.offset(), 14);
        // A delta with a trailing partial line delivers only the
        // terminated prefix.
        append(&corpus, b"four\npart");
        assert_eq!(w.poll(), WatchPoll::Appended(b"four\n".to_vec()));
        assert_eq!(w.offset(), 19);
    }

    #[test]
    fn truncation_resets_and_redelivers_from_zero() {
        let dir = TempDir::new("trunc");
        let corpus = dir.path("corpus.jsonl");
        append(&corpus, b"aaa\nbbb\n");
        let mut w = AppendWatcher::new(&corpus, None, 8);
        // Rotation: replaced by a shorter file with different content.
        std::fs::write(&corpus, b"ccc\n").unwrap();
        assert_eq!(w.poll(), WatchPoll::Truncated(b"ccc\n".to_vec()));
        assert_eq!(w.offset(), 4);
        // Appends after the rotation resume normal delivery.
        append(&corpus, b"ddd\n");
        assert_eq!(w.poll(), WatchPoll::Appended(b"ddd\n".to_vec()));
    }

    #[test]
    fn truncation_to_empty_still_signals() {
        let dir = TempDir::new("empty");
        let corpus = dir.path("corpus.jsonl");
        append(&corpus, b"aaa\n");
        let mut w = AppendWatcher::new(&corpus, None, 4);
        std::fs::write(&corpus, b"").unwrap();
        assert_eq!(w.poll(), WatchPoll::Truncated(Vec::new()));
        assert_eq!(w.offset(), 0);
    }

    #[test]
    fn missing_file_reads_as_unchanged() {
        let dir = TempDir::new("missing");
        let mut w = AppendWatcher::new(dir.path("nope.jsonl"), None, 0);
        assert_eq!(w.poll(), WatchPoll::Unchanged);
    }

    #[test]
    fn offset_persists_and_resumes() {
        let dir = TempDir::new("resume");
        let corpus = dir.path("corpus.jsonl");
        let sidecar = dir.path("corpus.offset");
        append(&corpus, b"one\n");
        let mut w = AppendWatcher::new(&corpus, Some(sidecar.clone()), 4);
        append(&corpus, b"two\n");
        assert_eq!(w.poll(), WatchPoll::Appended(b"two\n".to_vec()));
        drop(w);
        // A new watcher (same sidecar) resumes past both lines even
        // with a stale fallback.
        let mut w = AppendWatcher::new(&corpus, Some(sidecar.clone()), 8);
        assert_eq!(w.offset(), 8);
        assert_eq!(w.poll(), WatchPoll::Unchanged);
        // A persisted offset beyond the fallback (file replaced while
        // down) is discarded in favour of the fallback.
        std::fs::write(&sidecar, b"9999\n").unwrap();
        let w = AppendWatcher::new(&corpus, Some(sidecar.clone()), 8);
        assert_eq!(w.offset(), 8);
        // A persisted offset behind the fallback is honoured (overlap
        // re-signals are harmless).
        std::fs::write(&sidecar, b"4\n").unwrap();
        let mut w = AppendWatcher::new(&corpus, Some(sidecar), 8);
        assert_eq!(w.offset(), 4);
        assert_eq!(w.poll(), WatchPoll::Appended(b"two\n".to_vec()));
    }
}
