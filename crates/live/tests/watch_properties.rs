//! Property-based tests for the append watcher: the delivered byte
//! stream must be invariant to how appends are chunked and to watcher
//! restarts that resume from the persisted offset, and
//! truncation/rotation must recover to exactly the new file content.

use lastmile_live::{AppendWatcher, WatchPoll};
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "lastmile-watchprop-{tag}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn append(path: &std::path::Path, bytes: &[u8]) {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    f.write_all(bytes).unwrap();
}

/// Newline-terminated corpus content from generated line bodies.
fn content_of(lines: &[Vec<u8>]) -> Vec<u8> {
    let mut content = Vec::new();
    for line in lines {
        content.extend_from_slice(line);
        content.push(b'\n');
    }
    content
}

/// Strategy: a batch of line bodies (lowercase, possibly empty).
fn arb_lines(
    max_line: usize,
    count: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(b'a'..=b'z', 0..max_line), count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However the appended bytes are chunked — including cuts in the
    /// middle of a line — and however often the watcher is torn down
    /// and rebuilt from its persisted offset, the concatenation of
    /// delivered deltas is exactly the corpus bytes, each exactly once.
    #[test]
    fn chunked_appends_and_restarts_deliver_every_byte_exactly_once(
        lines in arb_lines(12, 1..24),
        chunk_sizes in prop::collection::vec(1usize..9, 1..12),
        restart_every in 1usize..5,
    ) {
        let dir = TempDir::new("chunks");
        let corpus = dir.path("corpus.jsonl");
        let sidecar = dir.path("corpus.offset");
        std::fs::write(&corpus, b"").unwrap();
        let content = content_of(&lines);

        let mut watcher = AppendWatcher::new(&corpus, Some(sidecar.clone()), 0);
        let mut delivered: Vec<u8> = Vec::new();
        let mut at = 0;
        let mut step_index = 0;
        while at < content.len() {
            let step = chunk_sizes[step_index % chunk_sizes.len()].min(content.len() - at);
            step_index += 1;
            append(&corpus, &content[at..at + step]);
            at += step;
            match watcher.poll() {
                WatchPoll::Unchanged => {}
                WatchPoll::Appended(bytes) => delivered.extend_from_slice(&bytes),
                WatchPoll::Truncated(_) => prop_assert!(false, "append misread as truncation"),
            }
            // Periodic restart: the replacement watcher must resume
            // from the sidecar, not re-deliver or skip.
            if step_index % restart_every == 0 {
                // The engine persists the offset at shutdown; mirror it
                // so the replacement watcher resumes exactly.
                watcher.persist_offset();
                drop(watcher);
                let len_now = std::fs::metadata(&corpus).unwrap().len();
                watcher = AppendWatcher::new(&corpus, Some(sidecar.clone()), len_now);
                // The persisted offset is never past the last newline,
                // so a fresh watcher can still see the partial tail.
                prop_assert!(watcher.offset() <= len_now);
            }
        }
        // Final poll flushes any terminated tail.
        if let WatchPoll::Appended(bytes) = watcher.poll() {
            delivered.extend_from_slice(&bytes);
        }
        prop_assert_eq!(delivered, content);
        prop_assert_eq!(watcher.offset(), std::fs::metadata(&corpus).unwrap().len());
    }

    /// Rotation to a shorter file: the watcher resets, redelivers the
    /// replacement content from byte zero, and subsequent appends
    /// continue normally — so `truncation view + later deltas` is
    /// exactly the final file.
    #[test]
    fn truncation_recovers_to_the_replacement_content(
        old_lines in arb_lines(10, 1..8),
        new_lines in arb_lines(4, 0..4),
        later_lines in arb_lines(8, 0..6),
    ) {
        let dir = TempDir::new("trunc");
        let corpus = dir.path("corpus.jsonl");
        let mut old = content_of(&old_lines);
        let new = content_of(&new_lines);
        // Pad the original so the replacement is strictly shorter —
        // length polling cannot detect same-or-longer rotations (a
        // documented limitation of the watcher).
        while old.len() <= new.len() {
            old.extend_from_slice(b"padpadpad\n");
        }
        std::fs::write(&corpus, &old).unwrap();
        let mut watcher = AppendWatcher::new(&corpus, None, old.len() as u64);
        prop_assert_eq!(watcher.poll(), WatchPoll::Unchanged);

        std::fs::write(&corpus, &new).unwrap();
        let mut view = match watcher.poll() {
            WatchPoll::Truncated(bytes) => bytes,
            other => panic!("expected truncation, got {other:?}"),
        };
        for line in &later_lines {
            let mut delta = line.clone();
            delta.push(b'\n');
            append(&corpus, &delta);
            match watcher.poll() {
                WatchPoll::Appended(bytes) => view.extend_from_slice(&bytes),
                WatchPoll::Unchanged => prop_assert!(false, "newline-terminated append not delivered"),
                WatchPoll::Truncated(_) => prop_assert!(false, "spurious truncation"),
            }
        }
        let final_file = std::fs::read(&corpus).unwrap();
        prop_assert_eq!(view, final_file);
    }
}
