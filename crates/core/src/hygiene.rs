//! Measurement hygiene (§6 recommendations).
//!
//! "Special care is also required when working with measurement platforms,
//! such as RIPE Atlas. For instance, geolocation studies and services
//! based on latency should avoid making inferences during peak hours and
//! with probes affected by persistent last-mile congestion. More
//! generally, we recommend inspecting last-mile latency for any Internet
//! delay study."
//!
//! [`advise`] turns a [`PopulationAnalysis`] into an actionable advisory:
//! whether the AS is affected at all, which UTC hours to avoid, which
//! probes are individually biased, and how large the inflation is — so a
//! downstream delay study (geolocation, anycast mapping, SLA monitoring)
//! can exclude exactly the measurements the paper warns about.

use crate::pipeline::PopulationAnalysis;
use lastmile_atlas::ProbeId;
use lastmile_stats::median;

/// A latency-study advisory for one AS over one measurement period.
#[derive(Clone, Debug)]
pub struct HygieneAdvisory {
    /// Whether the AS shows reportable persistent last-mile congestion.
    pub affected: bool,
    /// UTC hours of day (0–23) during which the aggregated queuing delay
    /// exceeds the threshold — the "peak hours" to avoid.
    pub avoid_hours_utc: Vec<u8>,
    /// Probes whose own queuing delay crosses the threshold in a
    /// non-negligible fraction of bins — biased vantage points.
    pub affected_probes: Vec<ProbeId>,
    /// Median delay inflation (ms) inside the avoid-hours relative to the
    /// rest of the day: the bias a naive study would absorb.
    pub bias_ms: f64,
}

impl HygieneAdvisory {
    /// Whether a measurement taken at this UTC hour from this probe
    /// should be used by a latency-sensitive study.
    pub fn measurement_is_clean(&self, hour_utc: u8, probe: ProbeId) -> bool {
        !self.avoid_hours_utc.contains(&hour_utc) && !self.affected_probes.contains(&probe)
    }
}

/// Build an advisory. `threshold_ms` is the queuing-delay level considered
/// harmful for the downstream study (the paper's reporting threshold,
/// 0.5 ms, is a sensible default for geolocation).
pub fn advise(analysis: &PopulationAnalysis, threshold_ms: f64) -> HygieneAdvisory {
    assert!(threshold_ms > 0.0, "threshold must be positive");

    // Per-UTC-hour medians of the aggregated signal.
    let mut per_hour: [Vec<f64>; 24] = Default::default();
    for (start, v) in analysis.aggregated.iter() {
        if let Some(v) = v {
            per_hour[start.hour_of_day() as usize].push(v);
        }
    }
    let hour_medians: Vec<Option<f64>> = per_hour.iter().map(|v| median(v)).collect();
    let avoid_hours_utc: Vec<u8> = hour_medians
        .iter()
        .enumerate()
        .filter_map(|(h, m)| match m {
            Some(m) if *m > threshold_ms => Some(h as u8),
            _ => None,
        })
        .collect();

    // Bias: inflation inside vs outside the avoid window.
    let inside: Vec<f64> = avoid_hours_utc
        .iter()
        .filter_map(|&h| hour_medians[h as usize])
        .collect();
    let outside: Vec<f64> = (0u8..24)
        .filter(|h| !avoid_hours_utc.contains(h))
        .filter_map(|h| hour_medians[h as usize])
        .collect();
    let bias_ms = match (median(&inside), median(&outside)) {
        (Some(i), Some(o)) => (i - o).max(0.0),
        _ => 0.0,
    };

    // Probes individually biased: above threshold in over 5% of bins.
    let affected_probes: Vec<ProbeId> = analysis
        .probe_series
        .iter()
        .filter(|s| s.fraction_above(threshold_ms) > 0.05)
        .map(|s| s.probe())
        .collect();

    HygieneAdvisory {
        affected: analysis.class().is_reported(),
        avoid_hours_utc,
        affected_probes,
        bias_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{AsPipeline, PipelineConfig};
    use lastmile_atlas::{Hop, Reply, TracerouteResult};
    use lastmile_timebase::{TimeRange, UnixTime};
    use std::net::IpAddr;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn tr(probe: u32, t: i64, last_mile_ms: f64) -> TracerouteResult {
        TracerouteResult {
            probe: ProbeId(probe),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(t),
            dst: ip("20.9.9.9"),
            src: ip("192.168.1.10"),
            hops: vec![
                Hop {
                    hop: 1,
                    replies: vec![Reply::answered(ip("192.168.1.1"), 1.0); 3],
                },
                Hop {
                    hop: 2,
                    replies: vec![Reply::answered(ip("20.0.0.1"), 1.0 + last_mile_ms); 3],
                },
            ],
        }
    }

    /// A population whose delay rises by `peak_ms` between 12:00 and 15:00
    /// UTC every day.
    fn analysis_with_peak(n_probes: u32, peak_ms: f64) -> PopulationAnalysis {
        let period = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(15 * 86_400));
        let mut p = AsPipeline::new(PipelineConfig::paper(), period);
        for probe in 1..=n_probes {
            for bin in 0..(15 * 48) {
                let hour = (bin % 48) / 2;
                let rtt = if (12..15).contains(&hour) {
                    5.0 + peak_ms
                } else {
                    5.0
                };
                for i in 0..3 {
                    p.ingest(&tr(probe, bin * 1800 + i * 400, rtt));
                }
            }
        }
        p.finish()
    }

    #[test]
    fn congested_population_gets_avoid_hours() {
        let analysis = analysis_with_peak(4, 4.0);
        let advisory = advise(&analysis, 0.5);
        assert!(advisory.affected);
        assert_eq!(advisory.avoid_hours_utc, vec![12, 13, 14]);
        assert!(
            (advisory.bias_ms - 4.0).abs() < 0.2,
            "bias {}",
            advisory.bias_ms
        );
        // Every probe crosses the threshold during the peak window.
        assert_eq!(advisory.affected_probes.len(), 4);
    }

    #[test]
    fn clean_population_is_unrestricted() {
        let analysis = analysis_with_peak(4, 0.0);
        let advisory = advise(&analysis, 0.5);
        assert!(!advisory.affected);
        assert!(advisory.avoid_hours_utc.is_empty());
        assert!(advisory.affected_probes.is_empty());
        assert_eq!(advisory.bias_ms, 0.0);
        assert!(advisory.measurement_is_clean(13, ProbeId(1)));
    }

    #[test]
    fn clean_measurement_predicate() {
        let analysis = analysis_with_peak(4, 4.0);
        let advisory = advise(&analysis, 0.5);
        // Peak hour: rejected regardless of probe.
        assert!(!advisory.measurement_is_clean(12, ProbeId(999)));
        // Off-peak but from an affected probe: rejected.
        assert!(!advisory.measurement_is_clean(3, ProbeId(1)));
        // Off-peak from an unaffected probe: accepted.
        assert!(advisory.measurement_is_clean(3, ProbeId(999)));
    }

    #[test]
    fn threshold_scales_the_window() {
        let analysis = analysis_with_peak(4, 4.0);
        // With a 10 ms tolerance nothing is flagged.
        let advisory = advise(&analysis, 10.0);
        assert!(advisory.avoid_hours_utc.is_empty());
        assert!(advisory.affected_probes.is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_nonpositive_threshold() {
        let analysis = analysis_with_peak(3, 1.0);
        let _ = advise(&analysis, 0.0);
    }

    #[test]
    fn empty_analysis_is_clean() {
        let period = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(86_400));
        let analysis = AsPipeline::new(PipelineConfig::paper(), period).finish();
        let advisory = advise(&analysis, 0.5);
        assert!(!advisory.affected);
        assert!(advisory.avoid_hours_utc.is_empty());
        assert_eq!(advisory.bias_ms, 0.0);
    }
}
