//! The end-to-end per-population pipeline.
//!
//! An [`AsPipeline`] analyses one probe *population* over one measurement
//! period — an AS (§3) or an AS restricted to a metro area (§4's Greater
//! Tokyo selection; the caller chooses which probes' traceroutes to feed).
//! It routes traceroutes to per-probe series builders, then on
//! [`AsPipeline::finish`] runs binning → sanity filter → queuing delay →
//! population median → Welch detection, yielding a
//! [`PopulationAnalysis`].
//!
//! The caller is responsible for pre-filtering (exclude anchors, area
//! selection) — the pipeline analyses exactly what it is fed, mirroring
//! how the paper's tooling takes a probe set as input.

use crate::aggregate::{aggregate_median, AggregatedSignal};
use crate::detect::{detect, CongestionClass, Detection};
use crate::series::{BuiltSeries, ProbeSeries, ProbeSeriesBuilder, QueuingDelaySeries};
use lastmile_atlas::{ProbeId, TracerouteResult};
use lastmile_obs::{trace, Histogram};
use lastmile_timebase::{BinSpec, TimeRange};
use std::collections::BTreeMap;
use std::time::Instant;

/// Pipeline parameters.
///
/// `Copy`: four plain words, so per-task propagation in the survey
/// executor is free — no per-(AS, period) clone in the hot loop.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Bin width (paper: 30 minutes).
    pub bin: BinSpec,
    /// Sanity filter: minimum traceroutes per probe-bin (paper: 3).
    pub min_traceroutes_per_bin: usize,
    /// Minimum probes reporting in a bin for the aggregate to hold a value.
    pub min_probes_per_bin: usize,
    /// Minimum probes with data for the population to be analysable
    /// (paper monitors "ASes hosting at least three Atlas probes").
    pub min_probes: usize,
}

impl PipelineConfig {
    /// The paper's parameters.
    pub fn paper() -> PipelineConfig {
        PipelineConfig {
            bin: BinSpec::thirty_minutes(),
            min_traceroutes_per_bin: 3,
            min_probes_per_bin: 2,
            min_probes: 3,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::paper()
    }
}

/// Counters and stage timings from one population analysis — the §2
/// filters made observable. Aggregated across a survey into the run's
/// `RunMetrics` (see the `lastmile-obs` crate).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PopulationStats {
    /// Traceroutes offered to [`AsPipeline::ingest`] (including dropped).
    pub traceroutes_ingested: u64,
    /// Subset dropped for falling outside the measurement period.
    pub traceroutes_out_of_period: u64,
    /// Probe-bins discarded by the sanity filter (§2: fewer than the
    /// minimum traceroutes in the bin).
    pub bins_discarded_sanity: u64,
    /// Bins of the aggregated signal filled by interpolation/padding
    /// before spectral analysis.
    pub bins_interpolated: u64,
    /// Welch segments averaged by the detector (0 when detection was
    /// skipped).
    pub welch_segments: u64,
    /// Wall time spent binning probe series and computing queuing delay.
    pub series_nanos: u64,
    /// Per-probe series-build latency distribution (one sample per probe
    /// fed to the series stage, raw or prebuilt). A `Default` histogram
    /// is one unallocated `Vec`, so carrying it here is effectively free.
    pub series_hist: Histogram,
    /// Wall time spent in cross-probe median aggregation.
    pub aggregate_nanos: u64,
    /// Wall time spent in gap filling + Welch detection.
    pub detect_nanos: u64,
}

/// A per-probe median series handed to the pipeline ready-made — either
/// sliced out of a `lastmile-store` cache (zero traceroutes consumed) or
/// built externally from a traceroute stream. The attached statistics let
/// the pipeline report the same [`PopulationStats`] a raw ingest would.
#[derive(Clone, Debug)]
pub struct PrebuiltSeries {
    /// The probe's binned median-RTT series, already restricted to the
    /// pipeline's measurement period and sanity-filtered.
    pub series: ProbeSeries,
    /// Bins the sanity filter discarded while building it (within the
    /// period).
    pub bins_discarded_sanity: u64,
    /// Traceroutes consumed to build it. `0` for a cache hit — that is
    /// exactly what the warm-store acceptance counters assert on.
    pub traceroutes_ingested: u64,
}

/// Streams traceroutes of a probe population into an analysis.
pub struct AsPipeline {
    cfg: PipelineConfig,
    period: TimeRange,
    builders: BTreeMap<ProbeId, ProbeSeriesBuilder>,
    prebuilt: BTreeMap<ProbeId, ProbeSeries>,
    prebuilt_discarded: u64,
    retain_median_series: bool,
    ingested: u64,
    ignored_out_of_period: usize,
}

impl AsPipeline {
    /// A pipeline over one measurement period.
    pub fn new(cfg: PipelineConfig, period: TimeRange) -> AsPipeline {
        AsPipeline {
            cfg,
            period,
            builders: BTreeMap::new(),
            prebuilt: BTreeMap::new(),
            prebuilt_discarded: 0,
            retain_median_series: false,
            ingested: 0,
            ignored_out_of_period: 0,
        }
    }

    /// Keep each raw-built probe's median series (and its discarded bins)
    /// in the analysis result, so the caller can insert them into a
    /// series store after [`AsPipeline::finish`]. Off by default — the
    /// retained copies roughly double the per-probe memory.
    pub fn retain_median_series(&mut self, on: bool) {
        self.retain_median_series = on;
    }

    /// Feed one probe's series ready-made instead of its raw traceroutes.
    ///
    /// Panics if the series' bin width differs from the pipeline's, or if
    /// the probe was already fed (raw or prebuilt) — mixing sources for
    /// one probe would corrupt the analysis silently.
    pub fn ingest_series(&mut self, pre: PrebuiltSeries) {
        assert_eq!(
            pre.series.bin(),
            self.cfg.bin,
            "prebuilt series bin width differs from the pipeline's"
        );
        let probe = pre.series.probe();
        assert!(
            !self.builders.contains_key(&probe) && !self.prebuilt.contains_key(&probe),
            "probe {probe:?} fed twice (raw and/or prebuilt)"
        );
        self.ingested += pre.traceroutes_ingested;
        self.prebuilt_discarded += pre.bins_discarded_sanity;
        self.prebuilt.insert(probe, pre.series);
    }

    /// The measurement period.
    pub fn period(&self) -> TimeRange {
        self.period
    }

    /// Ingest one traceroute. Traceroutes outside the period are counted
    /// and dropped (period boundaries are exact, §2's dates are UTC).
    pub fn ingest(&mut self, tr: &TracerouteResult) {
        self.ingested += 1;
        if !self.period.contains(tr.timestamp) {
            self.ignored_out_of_period += 1;
            return;
        }
        let cfg = &self.cfg;
        self.builders
            .entry(tr.probe)
            .or_insert_with(|| {
                ProbeSeriesBuilder::new(tr.probe, cfg.bin, cfg.min_traceroutes_per_bin)
            })
            .ingest(tr);
    }

    /// Number of traceroutes dropped for being outside the period.
    pub fn ignored_out_of_period(&self) -> usize {
        self.ignored_out_of_period
    }

    /// Number of probes seen so far.
    pub fn probe_count(&self) -> usize {
        self.builders.len() + self.prebuilt.len()
    }

    /// Run the full analysis.
    pub fn finish(self) -> PopulationAnalysis {
        let cfg = self.cfg;
        let period = self.period;
        let mut stats = PopulationStats {
            traceroutes_ingested: self.ingested,
            traceroutes_out_of_period: self.ignored_out_of_period as u64,
            bins_discarded_sanity: self.prebuilt_discarded,
            ..PopulationStats::default()
        };

        let t = Instant::now();
        let span = trace::span("series");
        // Merge raw-built and prebuilt probes in ProbeId order — the same
        // order a raw-only run produces, so downstream aggregation (and
        // therefore the report) is byte-identical however each probe's
        // series arrived.
        enum Source {
            Raw(ProbeSeriesBuilder),
            Pre(ProbeSeries),
        }
        let mut merged: BTreeMap<ProbeId, Source> = self
            .builders
            .into_iter()
            .map(|(probe, b)| (probe, Source::Raw(b)))
            .collect();
        for (probe, series) in self.prebuilt {
            let clash = merged.insert(probe, Source::Pre(series));
            assert!(
                clash.is_none(),
                "probe {probe:?} fed twice (raw and prebuilt)"
            );
        }
        let retain = self.retain_median_series;
        let mut built_series: Vec<BuiltSeries> = Vec::new();
        let probe_series: Vec<QueuingDelaySeries> = merged
            .into_values()
            .map(|src| {
                let t_probe = Instant::now();
                let q = match src {
                    Source::Raw(b) => {
                        let built = b.finish_detailed();
                        stats.bins_discarded_sanity += built.discarded_bins.len() as u64;
                        let q = built.series.queuing_delay();
                        if retain {
                            built_series.push(built);
                        }
                        q
                    }
                    Source::Pre(series) => series.queuing_delay(),
                };
                stats.series_hist.record(elapsed_nanos(t_probe));
                q
            })
            .filter(|s| !s.is_empty())
            .collect();
        drop(span);
        stats.series_nanos = elapsed_nanos(t);

        let t = Instant::now();
        let span = trace::span("aggregate");
        let aggregated = aggregate_median(&probe_series, &period, cfg.bin, cfg.min_probes_per_bin);
        drop(span);
        stats.aggregate_nanos = elapsed_nanos(t);

        let enough_probes = probe_series.len() >= cfg.min_probes;
        let t = Instant::now();
        let span = trace::span("detect");
        let detection = if enough_probes {
            aggregated
                .contiguous_with_stats()
                .and_then(|(signal, interpolated)| {
                    stats.bins_interpolated = interpolated;
                    detect(&signal, cfg.bin).ok()
                })
        } else {
            None
        };
        drop(span);
        stats.welch_segments = detection.as_ref().map(|d| d.segments as u64).unwrap_or(0);
        stats.detect_nanos = elapsed_nanos(t);

        PopulationAnalysis {
            probe_series,
            aggregated,
            detection,
            enough_probes,
            stats,
            built_series,
        }
    }
}

fn elapsed_nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The result of analysing one probe population over one period.
#[derive(Clone, Debug)]
pub struct PopulationAnalysis {
    /// Per-probe queuing-delay series (probes that survived filtering).
    pub probe_series: Vec<QueuingDelaySeries>,
    /// The population-median aggregated signal.
    pub aggregated: AggregatedSignal,
    /// Detection outcome; `None` when the population is too small or the
    /// signal too sparse to analyse.
    pub detection: Option<Detection>,
    /// Whether the population met the minimum probe count.
    pub enough_probes: bool,
    /// Counters and stage timings from this analysis.
    pub stats: PopulationStats,
    /// Median series of the raw-built probes, kept only when
    /// [`AsPipeline::retain_median_series`] was enabled (for insertion
    /// into a series store); empty otherwise.
    pub built_series: Vec<BuiltSeries>,
}

impl PopulationAnalysis {
    /// The congestion class ([`CongestionClass::None`] when no detection
    /// ran — an unanalysable AS is simply not reported, as in the paper).
    pub fn class(&self) -> CongestionClass {
        self.detection
            .as_ref()
            .map(|d| d.class)
            .unwrap_or(CongestionClass::None)
    }

    /// Probes contributing data.
    pub fn probes_used(&self) -> usize {
        self.probe_series.len()
    }

    /// Fraction of contributing probes whose own queuing delay exceeds
    /// `threshold_ms` in at least `fraction_of_bins` of their bins — the
    /// §2.2 per-probe view ("the proportion of probes that experience
    /// daily queuing delay over 5 ms has tripled").
    pub fn fraction_of_probes_above(&self, threshold_ms: f64, fraction_of_bins: f64) -> f64 {
        if self.probe_series.is_empty() {
            return 0.0;
        }
        let hit = self
            .probe_series
            .iter()
            .filter(|s| s.fraction_above(threshold_ms) >= fraction_of_bins)
            .count();
        hit as f64 / self.probe_series.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_atlas::{Hop, Reply};
    use lastmile_timebase::UnixTime;
    use std::net::IpAddr;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn tr(probe: u32, t: i64, last_mile_ms: f64) -> TracerouteResult {
        TracerouteResult {
            probe: ProbeId(probe),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(t),
            dst: ip("20.9.9.9"),
            src: ip("192.168.1.10"),
            hops: vec![
                Hop {
                    hop: 1,
                    replies: vec![Reply::answered(ip("192.168.1.1"), 1.0); 3],
                },
                Hop {
                    hop: 2,
                    replies: vec![Reply::answered(ip("20.0.0.1"), 1.0 + last_mile_ms); 3],
                },
            ],
        }
    }

    /// Fifteen days, `n_probes`, each with a diurnal last-mile delay of
    /// peak-to-peak `pp` ms on top of a 5 ms base.
    fn feed_diurnal(pipeline: &mut AsPipeline, n_probes: u32, pp: f64) {
        for probe in 1..=n_probes {
            for bin in 0..(15 * 48) {
                let phase = core::f64::consts::TAU * bin as f64 / 48.0;
                let rtt = 5.0 + pp / 2.0 + pp / 2.0 * phase.sin();
                for i in 0..3 {
                    pipeline.ingest(&tr(probe, bin * 1800 + i * 400, rtt));
                }
            }
        }
    }

    fn period_15d() -> TimeRange {
        TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(15 * 86_400))
    }

    #[test]
    fn diurnal_population_is_detected() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        feed_diurnal(&mut p, 5, 2.0);
        let analysis = p.finish();
        assert_eq!(analysis.probes_used(), 5);
        assert!(analysis.enough_probes);
        let d = analysis.detection.as_ref().expect("detection must run");
        assert!(d.prominent_is_daily);
        assert_eq!(analysis.class(), CongestionClass::Mild);
        assert!(
            (d.daily_amplitude_ms - 2.0).abs() < 0.2,
            "{}",
            d.daily_amplitude_ms
        );
    }

    #[test]
    fn flat_population_is_none() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        feed_diurnal(&mut p, 4, 0.0);
        let analysis = p.finish();
        assert_eq!(analysis.class(), CongestionClass::None);
    }

    #[test]
    fn too_few_probes_skip_detection() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        feed_diurnal(&mut p, 2, 3.0);
        let analysis = p.finish();
        assert!(!analysis.enough_probes);
        assert!(analysis.detection.is_none());
        assert_eq!(analysis.class(), CongestionClass::None);
    }

    #[test]
    fn finish_reports_population_stats() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        feed_diurnal(&mut p, 5, 2.0);
        p.ingest(&tr(1, -100, 5.0)); // outside the period
        p.ingest(&tr(9, 0, 5.0)); // only two traceroutes in probe 9's
        p.ingest(&tr(9, 400, 5.0)); // single bin: sanity filter discards
        let analysis = p.finish();
        let s = analysis.stats;
        assert_eq!(s.traceroutes_ingested, 5 * 720 * 3 + 3);
        assert_eq!(s.traceroutes_out_of_period, 1);
        assert_eq!(s.bins_discarded_sanity, 1);
        assert_eq!(s.bins_interpolated, 0, "feed has full coverage");
        assert!(s.welch_segments > 0, "detection ran");
        assert_eq!(
            s.series_hist.count(),
            6,
            "one series-build latency sample per probe fed"
        );
    }

    #[test]
    fn out_of_period_traceroutes_are_dropped() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        p.ingest(&tr(1, -100, 5.0));
        p.ingest(&tr(1, 16 * 86_400, 5.0));
        assert_eq!(p.ignored_out_of_period(), 2);
        assert_eq!(p.probe_count(), 0);
    }

    #[test]
    fn empty_pipeline_finishes_cleanly() {
        let analysis = AsPipeline::new(PipelineConfig::paper(), period_15d()).finish();
        assert_eq!(analysis.probes_used(), 0);
        assert!(analysis.detection.is_none());
        assert_eq!(analysis.class(), CongestionClass::None);
        assert_eq!(analysis.fraction_of_probes_above(5.0, 0.1), 0.0);
    }

    #[test]
    fn probes_above_threshold_fraction() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        // Three quiet probes, one severely congested.
        feed_diurnal(&mut p, 3, 0.2);
        for bin in 0..(15 * 48) {
            let phase = core::f64::consts::TAU * bin as f64 / 48.0;
            let rtt = 5.0 + 6.0 + 6.0 * phase.sin(); // pp = 12ms
            for i in 0..3 {
                p.ingest(&tr(99, bin * 1800 + i * 400, rtt));
            }
        }
        let analysis = p.finish();
        // Exactly 1 of 4 probes spends >10% of bins above 5 ms.
        let f = analysis.fraction_of_probes_above(5.0, 0.1);
        assert!((f - 0.25).abs() < 1e-12, "{f}");
        // And the aggregate stays quiet: majority rules.
        assert_eq!(analysis.class(), CongestionClass::None);
    }
}
