//! The end-to-end per-population pipeline.
//!
//! An [`AsPipeline`] analyses one probe *population* over one measurement
//! period — an AS (§3) or an AS restricted to a metro area (§4's Greater
//! Tokyo selection; the caller chooses which probes' traceroutes to feed).
//! It routes traceroutes to per-probe series builders, then on
//! [`AsPipeline::finish`] runs binning → sanity filter → queuing delay →
//! population median → Welch detection, yielding a
//! [`PopulationAnalysis`].
//!
//! The caller is responsible for pre-filtering (exclude anchors, area
//! selection) — the pipeline analyses exactly what it is fed, mirroring
//! how the paper's tooling takes a probe set as input.

use crate::aggregate::{aggregate_median, AggregatedSignal};
use crate::detect::{detect, CongestionClass, Detection};
use crate::series::{ProbeSeriesBuilder, QueuingDelaySeries};
use lastmile_atlas::{ProbeId, TracerouteResult};
use lastmile_timebase::{BinSpec, TimeRange};
use std::collections::BTreeMap;

/// Pipeline parameters.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Bin width (paper: 30 minutes).
    pub bin: BinSpec,
    /// Sanity filter: minimum traceroutes per probe-bin (paper: 3).
    pub min_traceroutes_per_bin: usize,
    /// Minimum probes reporting in a bin for the aggregate to hold a value.
    pub min_probes_per_bin: usize,
    /// Minimum probes with data for the population to be analysable
    /// (paper monitors "ASes hosting at least three Atlas probes").
    pub min_probes: usize,
}

impl PipelineConfig {
    /// The paper's parameters.
    pub fn paper() -> PipelineConfig {
        PipelineConfig {
            bin: BinSpec::thirty_minutes(),
            min_traceroutes_per_bin: 3,
            min_probes_per_bin: 2,
            min_probes: 3,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::paper()
    }
}

/// Streams traceroutes of a probe population into an analysis.
pub struct AsPipeline {
    cfg: PipelineConfig,
    period: TimeRange,
    builders: BTreeMap<ProbeId, ProbeSeriesBuilder>,
    ignored_out_of_period: usize,
}

impl AsPipeline {
    /// A pipeline over one measurement period.
    pub fn new(cfg: PipelineConfig, period: TimeRange) -> AsPipeline {
        AsPipeline {
            cfg,
            period,
            builders: BTreeMap::new(),
            ignored_out_of_period: 0,
        }
    }

    /// The measurement period.
    pub fn period(&self) -> TimeRange {
        self.period
    }

    /// Ingest one traceroute. Traceroutes outside the period are counted
    /// and dropped (period boundaries are exact, §2's dates are UTC).
    pub fn ingest(&mut self, tr: &TracerouteResult) {
        if !self.period.contains(tr.timestamp) {
            self.ignored_out_of_period += 1;
            return;
        }
        let cfg = &self.cfg;
        self.builders
            .entry(tr.probe)
            .or_insert_with(|| {
                ProbeSeriesBuilder::new(tr.probe, cfg.bin, cfg.min_traceroutes_per_bin)
            })
            .ingest(tr);
    }

    /// Number of traceroutes dropped for being outside the period.
    pub fn ignored_out_of_period(&self) -> usize {
        self.ignored_out_of_period
    }

    /// Number of probes seen so far.
    pub fn probe_count(&self) -> usize {
        self.builders.len()
    }

    /// Run the full analysis.
    pub fn finish(self) -> PopulationAnalysis {
        let cfg = self.cfg;
        let period = self.period;
        let probe_series: Vec<QueuingDelaySeries> = self
            .builders
            .into_values()
            .map(|b| b.finish().queuing_delay())
            .filter(|s| !s.is_empty())
            .collect();
        let aggregated = aggregate_median(&probe_series, &period, cfg.bin, cfg.min_probes_per_bin);
        let enough_probes = probe_series.len() >= cfg.min_probes;
        let detection = if enough_probes {
            aggregated
                .contiguous()
                .and_then(|signal| detect(&signal, cfg.bin).ok())
        } else {
            None
        };
        PopulationAnalysis {
            probe_series,
            aggregated,
            detection,
            enough_probes,
        }
    }
}

/// The result of analysing one probe population over one period.
#[derive(Clone, Debug)]
pub struct PopulationAnalysis {
    /// Per-probe queuing-delay series (probes that survived filtering).
    pub probe_series: Vec<QueuingDelaySeries>,
    /// The population-median aggregated signal.
    pub aggregated: AggregatedSignal,
    /// Detection outcome; `None` when the population is too small or the
    /// signal too sparse to analyse.
    pub detection: Option<Detection>,
    /// Whether the population met the minimum probe count.
    pub enough_probes: bool,
}

impl PopulationAnalysis {
    /// The congestion class ([`CongestionClass::None`] when no detection
    /// ran — an unanalysable AS is simply not reported, as in the paper).
    pub fn class(&self) -> CongestionClass {
        self.detection
            .as_ref()
            .map(|d| d.class)
            .unwrap_or(CongestionClass::None)
    }

    /// Probes contributing data.
    pub fn probes_used(&self) -> usize {
        self.probe_series.len()
    }

    /// Fraction of contributing probes whose own queuing delay exceeds
    /// `threshold_ms` in at least `fraction_of_bins` of their bins — the
    /// §2.2 per-probe view ("the proportion of probes that experience
    /// daily queuing delay over 5 ms has tripled").
    pub fn fraction_of_probes_above(&self, threshold_ms: f64, fraction_of_bins: f64) -> f64 {
        if self.probe_series.is_empty() {
            return 0.0;
        }
        let hit = self
            .probe_series
            .iter()
            .filter(|s| s.fraction_above(threshold_ms) >= fraction_of_bins)
            .count();
        hit as f64 / self.probe_series.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_atlas::{Hop, Reply};
    use lastmile_timebase::UnixTime;
    use std::net::IpAddr;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn tr(probe: u32, t: i64, last_mile_ms: f64) -> TracerouteResult {
        TracerouteResult {
            probe: ProbeId(probe),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(t),
            dst: ip("20.9.9.9"),
            src: ip("192.168.1.10"),
            hops: vec![
                Hop {
                    hop: 1,
                    replies: vec![Reply::answered(ip("192.168.1.1"), 1.0); 3],
                },
                Hop {
                    hop: 2,
                    replies: vec![Reply::answered(ip("20.0.0.1"), 1.0 + last_mile_ms); 3],
                },
            ],
        }
    }

    /// Fifteen days, `n_probes`, each with a diurnal last-mile delay of
    /// peak-to-peak `pp` ms on top of a 5 ms base.
    fn feed_diurnal(pipeline: &mut AsPipeline, n_probes: u32, pp: f64) {
        for probe in 1..=n_probes {
            for bin in 0..(15 * 48) {
                let phase = core::f64::consts::TAU * bin as f64 / 48.0;
                let rtt = 5.0 + pp / 2.0 + pp / 2.0 * phase.sin();
                for i in 0..3 {
                    pipeline.ingest(&tr(probe, bin * 1800 + i * 400, rtt));
                }
            }
        }
    }

    fn period_15d() -> TimeRange {
        TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(15 * 86_400))
    }

    #[test]
    fn diurnal_population_is_detected() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        feed_diurnal(&mut p, 5, 2.0);
        let analysis = p.finish();
        assert_eq!(analysis.probes_used(), 5);
        assert!(analysis.enough_probes);
        let d = analysis.detection.as_ref().expect("detection must run");
        assert!(d.prominent_is_daily);
        assert_eq!(analysis.class(), CongestionClass::Mild);
        assert!(
            (d.daily_amplitude_ms - 2.0).abs() < 0.2,
            "{}",
            d.daily_amplitude_ms
        );
    }

    #[test]
    fn flat_population_is_none() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        feed_diurnal(&mut p, 4, 0.0);
        let analysis = p.finish();
        assert_eq!(analysis.class(), CongestionClass::None);
    }

    #[test]
    fn too_few_probes_skip_detection() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        feed_diurnal(&mut p, 2, 3.0);
        let analysis = p.finish();
        assert!(!analysis.enough_probes);
        assert!(analysis.detection.is_none());
        assert_eq!(analysis.class(), CongestionClass::None);
    }

    #[test]
    fn out_of_period_traceroutes_are_dropped() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        p.ingest(&tr(1, -100, 5.0));
        p.ingest(&tr(1, 16 * 86_400, 5.0));
        assert_eq!(p.ignored_out_of_period(), 2);
        assert_eq!(p.probe_count(), 0);
    }

    #[test]
    fn empty_pipeline_finishes_cleanly() {
        let analysis = AsPipeline::new(PipelineConfig::paper(), period_15d()).finish();
        assert_eq!(analysis.probes_used(), 0);
        assert!(analysis.detection.is_none());
        assert_eq!(analysis.class(), CongestionClass::None);
        assert_eq!(analysis.fraction_of_probes_above(5.0, 0.1), 0.0);
    }

    #[test]
    fn probes_above_threshold_fraction() {
        let mut p = AsPipeline::new(PipelineConfig::paper(), period_15d());
        // Three quiet probes, one severely congested.
        feed_diurnal(&mut p, 3, 0.2);
        for bin in 0..(15 * 48) {
            let phase = core::f64::consts::TAU * bin as f64 / 48.0;
            let rtt = 5.0 + 6.0 + 6.0 * phase.sin(); // pp = 12ms
            for i in 0..3 {
                p.ingest(&tr(99, bin * 1800 + i * 400, rtt));
            }
        }
        let analysis = p.finish();
        // Exactly 1 of 4 probes spends >10% of bins above 5 ms.
        let f = analysis.fraction_of_probes_above(5.0, 0.1);
        assert!((f - 0.25).abs() < 1e-12, "{f}");
        // And the aggregate stays quiet: majority rules.
        assert_eq!(analysis.class(), CongestionClass::None);
    }
}
