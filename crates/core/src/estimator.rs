//! Last-mile RTT estimation from a single traceroute.
//!
//! §2.1: "To estimate the last-mile RTT, we simply subtract the last
//! private IP RTT from the identified first public IP RTT. [...] we
//! compute 9 RTT samples per traceroute (pairwise subtraction of the 3
//! RTTs for each of the last private IP and the first public IP)."
//!
//! With the standard three replies per hop this yields up to 9 samples;
//! timeouts reduce the count (2 × 3 = 6 samples, etc.), and traceroutes
//! with no last-mile span (no responding private hop before the first
//! public hop — anchors, datacenter paths, fully private paths) yield
//! none.
//!
//! Pairwise subtraction can produce *negative* samples when the private
//! hop momentarily answers slower than the public one; the paper's
//! median-of-216-samples binning absorbs these, so they are deliberately
//! kept rather than clamped.

use lastmile_atlas::TracerouteResult;

/// Maximum samples a single traceroute can contribute (3 × 3).
pub const MAX_SAMPLES_PER_TRACEROUTE: usize = 9;

/// The pairwise last-mile RTT samples of one traceroute.
///
/// Returns an empty vector when the traceroute has no usable last-mile
/// span (see module docs).
pub fn last_mile_samples(tr: &TracerouteResult) -> Vec<f64> {
    let Some(private_hop) = tr.last_private_hop() else {
        return Vec::new();
    };
    let Some(public_hop) = tr.first_public_hop() else {
        return Vec::new();
    };
    let private: Vec<f64> = private_hop.rtts().collect();
    let public: Vec<f64> = public_hop.rtts().collect();
    let mut samples = Vec::with_capacity(private.len() * public.len());
    for &pu in &public {
        for &pr in &private {
            samples.push(pu - pr);
        }
    }
    samples
}

/// Running tallies over many traceroutes, for data-quality reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EstimatorStats {
    /// Traceroutes that produced at least one sample.
    pub usable: usize,
    /// Traceroutes with no last-mile span.
    pub unusable: usize,
    /// Total samples produced.
    pub samples: usize,
}

impl EstimatorStats {
    /// Account for one traceroute's samples.
    pub fn record(&mut self, sample_count: usize) {
        if sample_count > 0 {
            self.usable += 1;
            self.samples += sample_count;
        } else {
            self.unusable += 1;
        }
    }

    /// Fraction of traceroutes that were usable (0 when empty).
    pub fn usable_fraction(&self) -> f64 {
        let total = self.usable + self.unusable;
        if total == 0 {
            0.0
        } else {
            self.usable as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_atlas::{Hop, ProbeId, Reply};
    use lastmile_timebase::UnixTime;
    use std::net::IpAddr;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn hop(n: u8, addr: &str, rtts: &[f64]) -> Hop {
        Hop {
            hop: n,
            replies: rtts.iter().map(|&r| Reply::answered(ip(addr), r)).collect(),
        }
    }

    fn tr(hops: Vec<Hop>) -> TracerouteResult {
        TracerouteResult {
            probe: ProbeId(1),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(0),
            dst: ip("20.9.9.9"),
            src: ip("192.168.1.10"),
            hops,
        }
    }

    #[test]
    fn nine_pairwise_samples() {
        let t = tr(vec![
            hop(1, "192.168.1.1", &[1.0, 2.0, 3.0]),
            hop(2, "20.0.0.1", &[10.0, 11.0, 12.0]),
        ]);
        let mut s = last_mile_samples(&t);
        assert_eq!(s.len(), 9);
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // All differences public - private: min 10-3=7, max 12-1=11.
        assert_eq!(s[0], 7.0);
        assert_eq!(s[8], 11.0);
        // The multiset is exactly the cross product.
        let expect = [7.0, 8.0, 8.0, 9.0, 9.0, 9.0, 10.0, 10.0, 11.0];
        assert_eq!(s, expect);
    }

    #[test]
    fn timeouts_reduce_sample_count() {
        let mut private = hop(1, "192.168.1.1", &[1.0, 2.0]);
        private.replies.push(Reply::timeout());
        let t = tr(vec![private, hop(2, "20.0.0.1", &[10.0, 11.0, 12.0])]);
        assert_eq!(last_mile_samples(&t).len(), 6);
    }

    #[test]
    fn no_span_yields_nothing() {
        // All-private path.
        let t = tr(vec![
            hop(1, "192.168.1.1", &[1.0]),
            hop(2, "10.0.0.1", &[2.0]),
        ]);
        assert!(last_mile_samples(&t).is_empty());
        // Public-only path (anchor style).
        let t = tr(vec![hop(1, "20.0.0.1", &[1.0])]);
        assert!(last_mile_samples(&t).is_empty());
        // Empty traceroute.
        assert!(last_mile_samples(&tr(vec![])).is_empty());
    }

    #[test]
    fn negative_samples_are_kept() {
        let t = tr(vec![
            hop(1, "192.168.1.1", &[5.0]),
            hop(2, "20.0.0.1", &[4.0]),
        ]);
        assert_eq!(last_mile_samples(&t), vec![-1.0]);
    }

    #[test]
    fn uses_last_private_and_first_public() {
        let t = tr(vec![
            hop(1, "192.168.1.1", &[1.0]),
            hop(2, "100.64.0.1", &[2.0]), // CGN: the true last private
            hop(3, "20.0.0.1", &[8.0]),   // first public
            hop(4, "20.0.1.1", &[20.0]),  // must be ignored
        ]);
        assert_eq!(last_mile_samples(&t), vec![6.0]);
    }

    #[test]
    fn stats_accumulate() {
        let mut stats = EstimatorStats::default();
        stats.record(9);
        stats.record(0);
        stats.record(6);
        assert_eq!(stats.usable, 2);
        assert_eq!(stats.unusable, 1);
        assert_eq!(stats.samples, 15);
        assert!((stats.usable_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(EstimatorStats::default().usable_fraction(), 0.0);
    }
}
