//! Delay–throughput correlation (§4.3).
//!
//! "To better understand the relationship between delay and throughput
//! fluctuations, we cross-reference both datasets. For congested ASes, we
//! find that there is clear non-linear correlations between delay and
//! throughput, hence we report correlation using Spearman's rank
//! correlation coefficient." — ρ(ISP_A) = −0.6, ρ(ISP_C) = 0.0.
//!
//! The two series live on different grids: aggregated delay on 30-minute
//! bins, CDN median throughput on 15-minute bins. [`join_by_time`] pairs
//! each throughput point with the delay bin containing its timestamp, and
//! [`delay_throughput_rho`] computes Spearman's ρ over the joined pairs.

use crate::aggregate::AggregatedSignal;
use lastmile_stats::spearman;
use lastmile_timebase::UnixTime;

/// Pair each `(timestamp, value)` point with the delay-bin value covering
/// its timestamp. Points over empty delay bins are skipped.
///
/// Returns `(delay_ms, value)` pairs — the scatter of Figure 7.
pub fn join_by_time(
    delay: &AggregatedSignal,
    points: impl IntoIterator<Item = (UnixTime, f64)>,
) -> Vec<(f64, f64)> {
    // Index the delay signal once.
    let bin = delay.bin();
    let delay_bins: std::collections::BTreeMap<i64, f64> = delay
        .iter()
        .filter_map(|(start, v)| v.map(|v| (bin.bin_index(start), v)))
        .collect();
    points
        .into_iter()
        .filter_map(|(t, v)| delay_bins.get(&bin.bin_index(t)).map(|&d| (d, v)))
        .collect()
}

/// Spearman's ρ between delay and a joined metric. `None` when fewer than
/// two pairs survive the join or a side is constant.
pub fn delay_throughput_rho(pairs: &[(f64, f64)]) -> Option<f64> {
    let (d, t): (Vec<f64>, Vec<f64>) = pairs.iter().copied().unzip();
    spearman(&d, &t)
}

/// §4.3's headline check: "we always observe low throughput when
/// aggregated delay is above 1 ms". Returns the maximum throughput seen
/// over pairs with delay above the threshold, or `None` when no such pair
/// exists.
pub fn max_throughput_above_delay(pairs: &[(f64, f64)], delay_threshold_ms: f64) -> Option<f64> {
    pairs
        .iter()
        .filter(|(d, _)| *d > delay_threshold_ms)
        .map(|&(_, t)| t)
        .reduce(f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate_median;
    use crate::series::ProbeSeriesBuilder;
    use lastmile_atlas::{Hop, ProbeId, Reply, TracerouteResult};
    use lastmile_timebase::{BinSpec, TimeRange};
    use std::net::IpAddr;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn tr(t: i64, last_mile_ms: f64) -> TracerouteResult {
        TracerouteResult {
            probe: ProbeId(1),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(t),
            dst: ip("20.9.9.9"),
            src: ip("192.168.1.10"),
            hops: vec![
                Hop {
                    hop: 1,
                    replies: vec![Reply::answered(ip("192.168.1.1"), 1.0); 3],
                },
                Hop {
                    hop: 2,
                    replies: vec![Reply::answered(ip("20.0.0.1"), 1.0 + last_mile_ms); 3],
                },
            ],
        }
    }

    /// An aggregated signal with delay = bin index (0..4) over 5 bins.
    fn staircase_delay() -> AggregatedSignal {
        let mut b = ProbeSeriesBuilder::paper(ProbeId(1));
        for bin in 0..5i64 {
            for i in 0..3 {
                b.ingest(&tr(bin * 1800 + i * 300, 5.0 + bin as f64));
            }
        }
        let s = vec![b.finish().queuing_delay()];
        let range = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(5 * 1800));
        aggregate_median(&s, &range, BinSpec::thirty_minutes(), 1)
    }

    #[test]
    fn join_pairs_15min_points_with_30min_bins() {
        let delay = staircase_delay();
        // Two 15-minute throughput points per delay bin.
        let points: Vec<(UnixTime, f64)> = (0..10)
            .map(|i| (UnixTime::from_secs(i * 900 + 10), 50.0 - i as f64))
            .collect();
        let pairs = join_by_time(&delay, points);
        assert_eq!(pairs.len(), 10);
        // The first two points share delay bin 0.
        assert_eq!(pairs[0].0, 0.0);
        assert_eq!(pairs[1].0, 0.0);
        assert_eq!(pairs[2].0, 1.0);
    }

    #[test]
    fn points_over_missing_bins_are_skipped() {
        let delay = staircase_delay();
        // A point far outside the covered window.
        let pairs = join_by_time(&delay, vec![(UnixTime::from_secs(99 * 1800), 10.0)]);
        assert!(pairs.is_empty());
    }

    #[test]
    fn inverse_relation_gives_negative_rho() {
        let delay = staircase_delay();
        let points: Vec<(UnixTime, f64)> = (0..5)
            .map(|i| (UnixTime::from_secs(i * 1800 + 5), 50.0 / (1.0 + i as f64)))
            .collect();
        let pairs = join_by_time(&delay, points);
        let rho = delay_throughput_rho(&pairs).unwrap();
        assert!((rho + 1.0).abs() < 1e-9, "rho {rho}");
    }

    #[test]
    fn unrelated_metric_gives_near_zero_rho() {
        let delay = staircase_delay();
        let points: Vec<(UnixTime, f64)> = (0..5)
            .map(|i| {
                (
                    UnixTime::from_secs(i * 1800 + 5),
                    if i % 2 == 0 { 40.0 } else { 42.0 },
                )
            })
            .collect();
        let pairs = join_by_time(&delay, points);
        let rho = delay_throughput_rho(&pairs).unwrap().abs();
        assert!(rho < 0.5, "rho {rho}");
    }

    #[test]
    fn max_throughput_above_threshold() {
        let pairs = vec![(0.2, 50.0), (1.5, 20.0), (2.5, 18.0), (0.9, 45.0)];
        assert_eq!(max_throughput_above_delay(&pairs, 1.0), Some(20.0));
        assert_eq!(max_throughput_above_delay(&pairs, 5.0), None);
        assert!(delay_throughput_rho(&pairs).unwrap() < -0.9);
    }

    #[test]
    fn degenerate_correlations() {
        assert_eq!(delay_throughput_rho(&[]), None);
        assert_eq!(delay_throughput_rho(&[(1.0, 2.0)]), None);
        assert_eq!(delay_throughput_rho(&[(1.0, 2.0), (1.0, 3.0)]), None); // constant delay
    }
}
