//! Persistent-congestion detection and classification.
//!
//! §2.3: the aggregated queuing-delay signal goes through the Welch
//! method; the *prominent* frequency is the bin with the highest power;
//! if it corresponds to daily fluctuations the signal is classified by the
//! average peak-to-peak amplitude of that daily component:
//!
//! * **Severe** — prominent daily pattern with amplitude over 3 ms;
//! * **Mild** — over 1 ms;
//! * **Low** — over 0.5 ms;
//! * **None** — no prominent daily pattern, or amplitude below 0.5 ms.
//!
//! "The 0.5 ms threshold value is set to focus mainly on the most
//! congested networks. The 1 ms and 3 ms threshold values are set such
//! that the size of classes Severe, Mild, Low, are well balanced."

use lastmile_dsp::spectrum::{prominent_peak, SpectralPeak};
use lastmile_dsp::welch::{welch_peak_to_peak, WelchConfig, WelchError, DAILY_CYCLES_PER_HOUR};
use lastmile_timebase::BinSpec;
use std::fmt;

/// The paper's Low threshold, ms.
pub const LOW_THRESHOLD_MS: f64 = 0.5;
/// The paper's Mild threshold, ms.
pub const MILD_THRESHOLD_MS: f64 = 1.0;
/// The paper's Severe threshold, ms.
pub const SEVERE_THRESHOLD_MS: f64 = 3.0;

/// The paper's four congestion classes, ordered by severity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CongestionClass {
    /// No prominent daily pattern, or amplitude ≤ 0.5 ms.
    None,
    /// Prominent daily pattern, amplitude in (0.5, 1] ms.
    Low,
    /// Prominent daily pattern, amplitude in (1, 3] ms.
    Mild,
    /// Prominent daily pattern, amplitude over 3 ms.
    Severe,
}

impl CongestionClass {
    /// Classify from a daily-pattern flag and its amplitude.
    pub fn from_amplitude(prominent_daily: bool, amplitude_ms: f64) -> CongestionClass {
        if !prominent_daily {
            return CongestionClass::None;
        }
        if amplitude_ms > SEVERE_THRESHOLD_MS {
            CongestionClass::Severe
        } else if amplitude_ms > MILD_THRESHOLD_MS {
            CongestionClass::Mild
        } else if amplitude_ms > LOW_THRESHOLD_MS {
            CongestionClass::Low
        } else {
            CongestionClass::None
        }
    }

    /// Whether the paper's survey *reports* this AS (anything above None).
    pub fn is_reported(self) -> bool {
        self != CongestionClass::None
    }

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            CongestionClass::None => "None",
            CongestionClass::Low => "Low",
            CongestionClass::Mild => "Mild",
            CongestionClass::Severe => "Severe",
        }
    }

    /// All classes, most severe first (Figure 4 legend order).
    pub const ALL: [CongestionClass; 4] = [
        CongestionClass::Severe,
        CongestionClass::Mild,
        CongestionClass::Low,
        CongestionClass::None,
    ];
}

impl fmt::Display for CongestionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of detection on one aggregated signal.
#[derive(Clone, Debug)]
pub struct Detection {
    /// The assigned congestion class.
    pub class: CongestionClass,
    /// The prominent spectral peak (highest-power non-DC bin), if any.
    pub prominent: Option<SpectralPeak>,
    /// Whether the prominent peak is the daily component.
    pub prominent_is_daily: bool,
    /// Peak-to-peak amplitude at the daily bin, ms — reported even when a
    /// different frequency dominates (used by Figure 3's amplitude CDF).
    pub daily_amplitude_ms: f64,
    /// Number of Welch segments averaged.
    pub segments: usize,
}

impl Detection {
    /// The prominent frequency in cycles per hour, if a peak exists.
    pub fn prominent_frequency(&self) -> Option<f64> {
        self.prominent.as_ref().map(|p| p.frequency)
    }
}

/// Run the paper's detector on a contiguous aggregated queuing-delay
/// signal sampled at `bin` width.
///
/// Uses 4-day Welch segments (the daily frequency is an exact bin), 50%
/// overlap, Hann window, constant detrend — see `lastmile-dsp`.
pub fn detect(signal: &[f64], bin: BinSpec) -> Result<Detection, WelchError> {
    let cfg = WelchConfig::for_daily_analysis(bin.samples_per_hour());
    let spectrum = welch_peak_to_peak(signal, &cfg)?;
    let prominent = prominent_peak(&spectrum);
    let prominent_is_daily = prominent.as_ref().is_some_and(SpectralPeak::is_daily);
    let daily_amplitude_ms = spectrum
        .amplitude_near(DAILY_CYCLES_PER_HOUR)
        .unwrap_or(0.0);
    let class_amplitude = if prominent_is_daily {
        // Classify on the prominent peak's own amplitude (identical to the
        // daily amplitude when the daily bin dominates).
        prominent.as_ref().map(|p| p.amplitude).unwrap_or(0.0)
    } else {
        0.0
    };
    Ok(Detection {
        class: CongestionClass::from_amplitude(prominent_is_daily, class_amplitude),
        prominent,
        prominent_is_daily,
        daily_amplitude_ms,
        segments: spectrum.segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::TAU;

    fn daily_signal(pp: f64, days: usize) -> Vec<f64> {
        (0..days * 48)
            .map(|i| 1.0 + pp / 2.0 * (TAU * i as f64 / 48.0).sin())
            .collect()
    }

    #[test]
    fn thresholds_match_paper() {
        assert_eq!(
            CongestionClass::from_amplitude(true, 5.0),
            CongestionClass::Severe
        );
        assert_eq!(
            CongestionClass::from_amplitude(true, 3.0),
            CongestionClass::Mild
        );
        assert_eq!(
            CongestionClass::from_amplitude(true, 1.5),
            CongestionClass::Mild
        );
        assert_eq!(
            CongestionClass::from_amplitude(true, 1.0),
            CongestionClass::Low
        );
        assert_eq!(
            CongestionClass::from_amplitude(true, 0.6),
            CongestionClass::Low
        );
        assert_eq!(
            CongestionClass::from_amplitude(true, 0.5),
            CongestionClass::None
        );
        assert_eq!(
            CongestionClass::from_amplitude(true, 0.1),
            CongestionClass::None
        );
        // Without a daily pattern any amplitude classifies None.
        assert_eq!(
            CongestionClass::from_amplitude(false, 10.0),
            CongestionClass::None
        );
    }

    #[test]
    fn class_ordering_and_reporting() {
        assert!(CongestionClass::Severe > CongestionClass::Mild);
        assert!(CongestionClass::Mild > CongestionClass::Low);
        assert!(CongestionClass::Low > CongestionClass::None);
        assert!(CongestionClass::Low.is_reported());
        assert!(!CongestionClass::None.is_reported());
        assert_eq!(CongestionClass::ALL.len(), 4);
        assert_eq!(CongestionClass::Severe.to_string(), "Severe");
    }

    #[test]
    fn detects_each_class_from_synthetic_signals() {
        let bin = BinSpec::thirty_minutes();
        for (pp, expect) in [
            (5.0, CongestionClass::Severe),
            (2.0, CongestionClass::Mild),
            (0.7, CongestionClass::Low),
            (0.2, CongestionClass::None),
        ] {
            let d = detect(&daily_signal(pp, 15), bin).unwrap();
            assert_eq!(
                d.class, expect,
                "pp={pp}, detected amp={}",
                d.daily_amplitude_ms
            );
            assert!(d.prominent_is_daily);
            assert!((d.daily_amplitude_ms - pp).abs() < 0.1 * pp);
        }
    }

    #[test]
    fn non_daily_oscillation_is_none() {
        // Strong 8-hour oscillation: prominent but not daily.
        let sig: Vec<f64> = (0..15 * 48)
            .map(|i| 2.0 * (TAU * 3.0 * i as f64 / 48.0).sin())
            .collect();
        let d = detect(&sig, BinSpec::thirty_minutes()).unwrap();
        assert!(!d.prominent_is_daily);
        assert_eq!(d.class, CongestionClass::None);
        assert!((d.prominent_frequency().unwrap() - 3.0 / 24.0).abs() < 1e-9);
        // The daily amplitude is still reported (tiny).
        assert!(d.daily_amplitude_ms < 0.2);
    }

    #[test]
    fn flat_signal_is_none() {
        let d = detect(&vec![0.8; 15 * 48], BinSpec::thirty_minutes()).unwrap();
        assert_eq!(d.class, CongestionClass::None);
        // Floating-point residue may leave a vanishing "peak"; either way
        // nothing with measurable amplitude survives.
        if let Some(p) = &d.prominent {
            assert!(p.amplitude < 1e-9, "{}", p.amplitude);
        }
        assert!(d.daily_amplitude_ms < 1e-9);
    }

    #[test]
    fn fifteen_days_average_multiple_segments() {
        let d = detect(&daily_signal(1.0, 15), BinSpec::thirty_minutes()).unwrap();
        assert!(d.segments >= 5, "{} segments", d.segments);
    }

    #[test]
    fn short_signal_errors() {
        assert!(detect(&[1.0], BinSpec::thirty_minutes()).is_err());
        assert!(detect(&[], BinSpec::thirty_minutes()).is_err());
    }
}
