//! # lastmile-core
//!
//! The analysis pipeline of *"Persistent Last-mile Congestion: Not so
//! Uncommon"* (IMC 2020), reimplemented as a library. Starting from raw
//! RIPE-Atlas-style traceroutes it produces per-AS congestion
//! classifications:
//!
//! ```text
//!  traceroutes ──► last-mile RTT samples        (estimator, §2.1)
//!              ──► per-probe 30-min median bins (series, §2.1)
//!              ──► queuing-delay signals        (series, §2.1)
//!              ──► population median aggregate  (aggregate, §2.1)
//!              ──► Welch periodogram + classes  (detect, §2.3)
//!              ──► survey rollups and churn     (report, §3)
//! ```
//!
//! Each stage is usable on its own; [`pipeline`] wires them together for
//! one probe population (an AS, or an AS restricted to a metro area as in
//! the paper's Tokyo case study), and [`report`] aggregates many ASes and
//! periods into the survey statistics of §3. The throughput side of the
//! validation (§4.2–4.3) lives in `lastmile-cdnlog`; [`correlate`]
//! provides the delay-vs-throughput join and Spearman correlation of §4.3.
//!
//! ## Quickstart
//!
//! ```
//! use lastmile_core::pipeline::{AsPipeline, PipelineConfig};
//! use lastmile_core::detect::CongestionClass;
//! use lastmile_atlas::json::parse_traceroutes;
//! use lastmile_timebase::{TimeRange, UnixTime};
//!
//! // Parse Atlas-format JSON (here: an empty array) and feed the pipeline.
//! let traceroutes = parse_traceroutes("[]").unwrap();
//! let period = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(15 * 86_400));
//! let mut pipeline = AsPipeline::new(PipelineConfig::paper(), period);
//! for tr in &traceroutes {
//!     pipeline.ingest(tr);
//! }
//! let analysis = pipeline.finish();
//! // No data -> no detection, classified as None by convention.
//! assert_eq!(analysis.class(), CongestionClass::None);
//! ```

pub mod aggregate;
pub mod correlate;
pub mod detect;
pub mod estimator;
pub mod hygiene;
pub mod longitudinal;
pub mod pipeline;
pub mod report;
pub mod series;

pub use aggregate::AggregatedSignal;
pub use detect::{detect, CongestionClass, Detection};
pub use estimator::last_mile_samples;
pub use hygiene::{advise, HygieneAdvisory};
pub use pipeline::{AsPipeline, PipelineConfig, PopulationAnalysis, PrebuiltSeries};
pub use report::{AsClassification, SurveyReport};
pub use series::{BuiltSeries, ProbeSeries, ProbeSeriesBuilder, QueuingDelaySeries};
