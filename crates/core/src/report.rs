//! Survey rollups: the §3 statistics over many ASes and periods.
//!
//! A [`SurveyReport`] collects one [`AsClassification`] per (AS, period)
//! and answers the paper's questions:
//!
//! * class counts and the number of *reported* ASes per period (~47 on
//!   average, ~90% None);
//! * churn: ASes reported in at least half of the periods (36 in the
//!   paper);
//! * Figure 3's CDF inputs: prominent frequencies of all ASes, and daily
//!   amplitudes of ASes with a prominent daily component;
//! * Figure 4's rank-bucket × class breakdown;
//! * the geographic rollups (countries with reports, Severe by country).

use crate::detect::CongestionClass;
use lastmile_prefix::Asn;
use lastmile_stats::Ecdf;
use lastmile_timebase::PeriodId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One AS's classification in one measurement period.
#[derive(Clone, Debug)]
pub struct AsClassification {
    /// The AS.
    pub asn: Asn,
    /// The measurement period.
    pub period: PeriodId,
    /// Assigned class.
    pub class: CongestionClass,
    /// Peak-to-peak amplitude at the daily bin, ms.
    pub daily_amplitude_ms: f64,
    /// Prominent frequency (cycles/hour), if a peak existed.
    pub prominent_frequency: Option<f64>,
    /// Whether the prominent peak was the daily component.
    pub prominent_is_daily: bool,
    /// Probes contributing data.
    pub probes: usize,
    /// Country code, when known (from the eyeball registry).
    pub country: Option<String>,
    /// APNIC-style eyeball rank, when known.
    pub rank: Option<u32>,
}

/// One (AS, period) survey task that produced no classification: its
/// worker panicked, and the executor isolated the failure per task
/// instead of aborting the whole survey.
#[derive(Clone, Debug)]
pub struct SurveyFailure {
    /// The AS whose analysis failed.
    pub asn: Asn,
    /// The measurement period being analysed.
    pub period: PeriodId,
    /// The panic message (or a placeholder for non-string payloads).
    pub reason: String,
}

/// The classification rows of a whole survey.
#[derive(Clone, Debug, Default)]
pub struct SurveyReport {
    rows: Vec<AsClassification>,
    failures: Vec<SurveyFailure>,
}

impl SurveyReport {
    /// An empty report.
    pub fn new() -> SurveyReport {
        SurveyReport::default()
    }

    /// Add one row.
    pub fn push(&mut self, row: AsClassification) {
        self.rows.push(row);
    }

    /// Record one failed (AS, period) task.
    pub fn push_failure(&mut self, failure: SurveyFailure) {
        self.failures.push(failure);
    }

    /// All rows.
    pub fn rows(&self) -> &[AsClassification] {
        &self.rows
    }

    /// Tasks that failed instead of classifying (empty on a clean run).
    pub fn failures(&self) -> &[SurveyFailure] {
        &self.failures
    }

    /// Rows of one period.
    pub fn period_rows(&self, period: PeriodId) -> impl Iterator<Item = &AsClassification> {
        self.rows.iter().filter(move |r| r.period == period)
    }

    /// The distinct periods present, ascending.
    pub fn periods(&self) -> Vec<PeriodId> {
        let set: BTreeSet<PeriodId> = self.rows.iter().map(|r| r.period).collect();
        set.into_iter().collect()
    }

    /// Number of monitored ASes in a period.
    pub fn monitored(&self, period: PeriodId) -> usize {
        self.period_rows(period).count()
    }

    /// Class → count for a period.
    pub fn class_counts(&self, period: PeriodId) -> BTreeMap<CongestionClass, usize> {
        let mut out = BTreeMap::new();
        for r in self.period_rows(period) {
            *out.entry(r.class).or_insert(0) += 1;
        }
        out
    }

    /// Number of *reported* (non-None) ASes in a period.
    pub fn reported_count(&self, period: PeriodId) -> usize {
        self.period_rows(period)
            .filter(|r| r.class.is_reported())
            .count()
    }

    /// Mean reported count across periods (the paper's "average of 47
    /// ASes per measurement period").
    pub fn mean_reported(&self) -> f64 {
        let periods = self.periods();
        if periods.is_empty() {
            return 0.0;
        }
        periods
            .iter()
            .map(|&p| self.reported_count(p))
            .sum::<usize>() as f64
            / periods.len() as f64
    }

    /// ASes reported in at least `min_periods` of the given periods — the
    /// churn statistic ("36 ASes are reported for at least half of the
    /// measurement periods").
    pub fn persistent_asns(&self, periods: &[PeriodId], min_periods: usize) -> Vec<Asn> {
        let mut counts: BTreeMap<Asn, usize> = BTreeMap::new();
        for r in &self.rows {
            if periods.contains(&r.period) && r.class.is_reported() {
                *counts.entry(r.asn).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .filter(|&(_, c)| c >= min_periods)
            .map(|(a, _)| a)
            .collect()
    }

    /// Prominent frequencies of all ASes of a period (Figure 3, top).
    pub fn prominent_frequencies(&self, period: PeriodId) -> Vec<f64> {
        self.period_rows(period)
            .filter_map(|r| r.prominent_frequency)
            .collect()
    }

    /// Fraction of ASes of a period whose prominent component is daily.
    pub fn daily_fraction(&self, period: PeriodId) -> f64 {
        let rows: Vec<_> = self.period_rows(period).collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().filter(|r| r.prominent_is_daily).count() as f64 / rows.len() as f64
    }

    /// Daily-amplitude CDF over ASes with a prominent daily component
    /// (Figure 3, bottom).
    pub fn daily_amplitude_cdf(&self, period: PeriodId) -> Ecdf {
        Ecdf::new(
            self.period_rows(period)
                .filter(|r| r.prominent_is_daily)
                .map(|r| r.daily_amplitude_ms)
                .collect(),
        )
    }

    /// Figure 4's breakdown: for each APNIC rank bucket, the number of
    /// ASes per class. Buckets: 1–10, 11–100, 101–1k, 1k–10k, >10k; rows
    /// without a rank are skipped.
    pub fn rank_breakdown(
        &self,
        period: PeriodId,
    ) -> BTreeMap<&'static str, BTreeMap<CongestionClass, usize>> {
        let mut out: BTreeMap<&'static str, BTreeMap<CongestionClass, usize>> = BTreeMap::new();
        for r in self.period_rows(period) {
            let Some(rank) = r.rank else { continue };
            let bucket = rank_bucket(rank);
            *out.entry(bucket).or_default().entry(r.class).or_insert(0) += 1;
        }
        out
    }

    /// Countries with at least one reported AS over the given periods.
    pub fn countries_with_reports(&self, periods: &[PeriodId]) -> BTreeSet<String> {
        self.rows
            .iter()
            .filter(|r| periods.contains(&r.period) && r.class.is_reported())
            .filter_map(|r| r.country.clone())
            .collect()
    }

    /// Country → number of Severe reports over the given periods
    /// (Japan leads with ~18% in the paper).
    pub fn severe_reports_by_country(&self, periods: &[PeriodId]) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for r in &self.rows {
            if periods.contains(&r.period) && r.class == CongestionClass::Severe {
                if let Some(c) = &r.country {
                    *out.entry(c.clone()).or_insert(0) += 1;
                }
            }
        }
        out
    }

    /// A plain-text summary table (one line per period).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<14} {:>9} {:>8} {:>6} {:>6} {:>6} {:>6} {:>9}",
            "period", "monitored", "reported", "sev", "mild", "low", "none", "daily-frac"
        );
        for p in self.periods() {
            let counts = self.class_counts(p);
            let g = |c: CongestionClass| counts.get(&c).copied().unwrap_or(0);
            let _ = writeln!(
                s,
                "{:<14} {:>9} {:>8} {:>6} {:>6} {:>6} {:>6} {:>9.2}",
                p.label(),
                self.monitored(p),
                self.reported_count(p),
                g(CongestionClass::Severe),
                g(CongestionClass::Mild),
                g(CongestionClass::Low),
                g(CongestionClass::None),
                self.daily_fraction(p),
            );
        }
        if !self.failures.is_empty() {
            let _ = writeln!(s, "failed tasks: {}", self.failures.len());
        }
        s
    }
}

/// Figure 4's APNIC rank buckets.
pub fn rank_bucket(rank: u32) -> &'static str {
    match rank {
        0..=10 => "1 to 10",
        11..=100 => "11 to 100",
        101..=1000 => "101 to 1k",
        1001..=10_000 => "1k to 10k",
        _ => "more than 10k",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(
        asn: Asn,
        period: PeriodId,
        class: CongestionClass,
        amp: f64,
        country: &str,
        rank: u32,
    ) -> AsClassification {
        AsClassification {
            asn,
            period,
            class,
            daily_amplitude_ms: amp,
            prominent_frequency: Some(if class.is_reported() || amp > 0.0 {
                1.0 / 24.0
            } else {
                0.3
            }),
            prominent_is_daily: class.is_reported() || amp > 0.0,
            probes: 5,
            country: Some(country.to_string()),
            rank: Some(rank),
        }
    }

    fn sample_report() -> SurveyReport {
        let mut r = SurveyReport::new();
        use CongestionClass::*;
        use PeriodId::*;
        // Sep 2019: 2 reported of 5.
        r.push(row(1, Sep2019, Severe, 4.0, "JP", 100));
        r.push(row(2, Sep2019, Low, 0.7, "US", 500));
        r.push(row(3, Sep2019, None, 0.2, "DE", 2000));
        r.push(row(4, Sep2019, None, 0.0, "FR", 50));
        r.push(row(5, Sep2019, None, 0.1, "GB", 20000));
        // Apr 2020: 3 reported.
        r.push(row(1, Apr2020, Severe, 5.0, "JP", 100));
        r.push(row(2, Apr2020, Mild, 1.5, "US", 500));
        r.push(row(3, Apr2020, Low, 0.8, "DE", 2000));
        r.push(row(4, Apr2020, None, 0.0, "FR", 50));
        r.push(row(5, Apr2020, None, 0.1, "GB", 20000));
        r
    }

    #[test]
    fn period_counts() {
        let r = sample_report();
        assert_eq!(r.monitored(PeriodId::Sep2019), 5);
        assert_eq!(r.reported_count(PeriodId::Sep2019), 2);
        assert_eq!(r.reported_count(PeriodId::Apr2020), 3);
        assert_eq!(r.periods(), vec![PeriodId::Sep2019, PeriodId::Apr2020]);
        assert!((r.mean_reported() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn class_counts() {
        let r = sample_report();
        let c = r.class_counts(PeriodId::Sep2019);
        assert_eq!(c[&CongestionClass::Severe], 1);
        assert_eq!(c[&CongestionClass::Low], 1);
        assert_eq!(c[&CongestionClass::None], 3);
        assert!(!c.contains_key(&CongestionClass::Mild));
    }

    #[test]
    fn persistence() {
        let r = sample_report();
        let periods = [PeriodId::Sep2019, PeriodId::Apr2020];
        // Reported in both periods: AS1 and AS2.
        assert_eq!(r.persistent_asns(&periods, 2), vec![1, 2]);
        // Reported at least once: AS1, AS2, AS3.
        assert_eq!(r.persistent_asns(&periods, 1), vec![1, 2, 3]);
    }

    #[test]
    fn amplitude_cdf_only_covers_daily_ases() {
        let r = sample_report();
        let cdf = r.daily_amplitude_cdf(PeriodId::Sep2019);
        // AS4 has no daily component; the other four do.
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.5); // 0.1 and 0.2
    }

    #[test]
    fn rank_buckets() {
        assert_eq!(rank_bucket(1), "1 to 10");
        assert_eq!(rank_bucket(10), "1 to 10");
        assert_eq!(rank_bucket(11), "11 to 100");
        assert_eq!(rank_bucket(1000), "101 to 1k");
        assert_eq!(rank_bucket(10_000), "1k to 10k");
        assert_eq!(rank_bucket(10_001), "more than 10k");
    }

    #[test]
    fn rank_breakdown_counts() {
        let r = sample_report();
        let b = r.rank_breakdown(PeriodId::Sep2019);
        assert_eq!(b["11 to 100"][&CongestionClass::Severe], 1);
        assert_eq!(b["101 to 1k"][&CongestionClass::Low], 1);
        assert_eq!(b["1k to 10k"][&CongestionClass::None], 1);
    }

    #[test]
    fn geography() {
        let r = sample_report();
        let periods = [PeriodId::Sep2019, PeriodId::Apr2020];
        let countries = r.countries_with_reports(&periods);
        assert!(countries.contains("JP") && countries.contains("US") && countries.contains("DE"));
        assert!(!countries.contains("FR"));
        let severe = r.severe_reports_by_country(&periods);
        assert_eq!(severe["JP"], 2);
        assert_eq!(severe.len(), 1);
    }

    #[test]
    fn text_rendering_contains_period_lines() {
        let r = sample_report();
        let text = r.render_text();
        assert!(text.contains("2019-09"));
        assert!(text.contains("2020-04"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn failures_are_recorded_and_rendered() {
        let mut r = sample_report();
        assert!(r.failures().is_empty());
        r.push_failure(SurveyFailure {
            asn: 9,
            period: PeriodId::Sep2019,
            reason: "boom".into(),
        });
        assert_eq!(r.failures().len(), 1);
        assert_eq!(r.failures()[0].asn, 9);
        assert!(r.render_text().contains("failed tasks: 1"));
    }

    #[test]
    fn empty_report() {
        let r = SurveyReport::new();
        assert_eq!(r.mean_reported(), 0.0);
        assert_eq!(r.daily_fraction(PeriodId::Sep2019), 0.0);
        assert!(r.periods().is_empty());
    }
}
