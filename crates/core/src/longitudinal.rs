//! Longitudinal amplitude tracking.
//!
//! The paper's title claim — congestion that is *persistent* — rests on
//! §3.1's longitudinal view: "36 ASes are reported for at least half of
//! the measurement periods" and the abstract's "may span years". Between
//! the six half-month snapshots, though, the amplitude's *trajectory* is
//! invisible. This module provides the continuous view: a sliding Welch
//! window over a long queuing-delay signal, yielding the daily
//! peak-to-peak amplitude as a time series, plus run-length statistics
//! ("how long has this AS been congested without interruption?").
//!
//! This is an extension beyond the paper's published analysis, built from
//! the same primitives; the paper's per-period classification is the
//! special case of one window per measurement period.

use crate::detect::{CongestionClass, LOW_THRESHOLD_MS};
use lastmile_dsp::spectrum::prominent_peak;
use lastmile_dsp::welch::{welch_peak_to_peak, WelchConfig};
use lastmile_timebase::{BinSpec, TimeRange, UnixTime};

/// One sliding-window measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmplitudePoint {
    /// Start of the window.
    pub window_start: UnixTime,
    /// Daily peak-to-peak amplitude within the window, ms.
    pub daily_amplitude_ms: f64,
    /// Whether the daily component was the prominent one in this window.
    pub daily_is_prominent: bool,
}

impl AmplitudePoint {
    /// Whether this window would be *reported* by the paper's rule
    /// (prominent daily pattern above the Low threshold).
    pub fn is_reported(&self) -> bool {
        self.daily_is_prominent && self.daily_amplitude_ms > LOW_THRESHOLD_MS
    }

    /// The class this window alone would receive.
    pub fn class(&self) -> CongestionClass {
        CongestionClass::from_amplitude(self.daily_is_prominent, self.daily_amplitude_ms)
    }
}

/// Sliding-window daily-amplitude tracking over a contiguous signal.
///
/// * `signal` — queuing delay per bin, gap-filled
///   (see [`crate::aggregate::AggregatedSignal::contiguous`]);
/// * `signal_start` — instant of the first sample;
/// * `bin` — bin width of the samples;
/// * `window_days` — length of each analysis window (≥ 4, so the Welch
///   segment fits);
/// * `step_days` — slide between windows (≥ 1).
///
/// Windows that fail spectral analysis (degenerate signals) are skipped.
pub fn sliding_daily_amplitude(
    signal: &[f64],
    signal_start: UnixTime,
    bin: BinSpec,
    window_days: usize,
    step_days: usize,
) -> Vec<AmplitudePoint> {
    assert!(
        window_days >= 4,
        "window must cover at least one 4-day Welch segment"
    );
    assert!(step_days >= 1, "step must be at least one day");
    let bins_per_day = bin.bins_per_day();
    let window_len = window_days * bins_per_day;
    let step = step_days * bins_per_day;
    let cfg = WelchConfig::for_daily_analysis(bin.samples_per_hour());

    let mut out = Vec::new();
    let mut start = 0usize;
    while start + window_len <= signal.len() {
        let window = &signal[start..start + window_len];
        if let Ok(spectrum) = welch_peak_to_peak(window, &cfg) {
            let peak = prominent_peak(&spectrum);
            out.push(AmplitudePoint {
                window_start: signal_start + (start as i64 * bin.width_secs()),
                daily_amplitude_ms: spectrum
                    .amplitude_near(lastmile_dsp::welch::DAILY_CYCLES_PER_HOUR)
                    .unwrap_or(0.0),
                daily_is_prominent: peak.as_ref().is_some_and(|p| p.is_daily()),
            });
        }
        start += step;
    }
    out
}

/// The longest uninterrupted run of reported windows, as a time range —
/// "how long did the congestion persist?". `None` when no window reports.
pub fn longest_reported_run(points: &[AmplitudePoint], window_days: usize) -> Option<TimeRange> {
    let mut best: Option<(usize, usize)> = None; // (start index, len)
    let mut current: Option<(usize, usize)> = None;
    for (i, p) in points.iter().enumerate() {
        if p.is_reported() {
            current = Some(match current {
                Some((s, l)) => (s, l + 1),
                None => (i, 1),
            });
            if current.map(|(_, l)| l) > best.map(|(_, l)| l) {
                best = current;
            }
        } else {
            current = None;
        }
    }
    best.map(|(s, l)| {
        let start = points[s].window_start;
        let end = points[s + l - 1].window_start + (window_days as i64 * 86_400);
        TimeRange::new(start, end)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::TAU;

    /// `days` of 30-minute bins; congested (pp = amp) only inside
    /// `[on_day, off_day)`.
    fn signal_with_episode(days: usize, on_day: usize, off_day: usize, amp: f64) -> Vec<f64> {
        (0..days * 48)
            .map(|i| {
                let day = i / 48;
                let a = if (on_day..off_day).contains(&day) {
                    amp
                } else {
                    0.05
                };
                a / 2.0 + a / 2.0 * (TAU * i as f64 / 48.0).sin()
            })
            .collect()
    }

    #[test]
    fn tracks_an_episode_on_and_off() {
        // 60 days, congestion from day 20 to day 40.
        let sig = signal_with_episode(60, 20, 40, 2.0);
        let pts = sliding_daily_amplitude(
            &sig,
            UnixTime::from_secs(0),
            BinSpec::thirty_minutes(),
            4,
            1,
        );
        assert_eq!(pts.len(), 57); // (60-4)/1 + 1 windows
                                   // Early windows: quiet. Windows fully inside the episode: ~2 ms.
        assert!(
            pts[5].daily_amplitude_ms < 0.3,
            "{}",
            pts[5].daily_amplitude_ms
        );
        assert!(
            (pts[25].daily_amplitude_ms - 2.0).abs() < 0.3,
            "{}",
            pts[25].daily_amplitude_ms
        );
        assert!(pts[25].is_reported());
        assert!(pts[50].daily_amplitude_ms < 0.3);
        assert_eq!(pts[25].class(), CongestionClass::Mild);
    }

    #[test]
    fn longest_run_matches_the_episode() {
        let sig = signal_with_episode(60, 20, 40, 2.0);
        let pts = sliding_daily_amplitude(
            &sig,
            UnixTime::from_secs(0),
            BinSpec::thirty_minutes(),
            4,
            1,
        );
        let run = longest_reported_run(&pts, 4).expect("episode detected");
        // The run covers roughly days 18..40 (windows overlapping the
        // episode report too).
        let start_day = run.start().as_secs() / 86_400;
        let end_day = run.end().as_secs() / 86_400;
        assert!((16..=21).contains(&start_day), "start day {start_day}");
        assert!((39..=42).contains(&end_day), "end day {end_day}");
    }

    #[test]
    fn persistent_signal_is_one_long_run() {
        let sig = signal_with_episode(30, 0, 30, 4.0);
        let pts = sliding_daily_amplitude(
            &sig,
            UnixTime::from_secs(0),
            BinSpec::thirty_minutes(),
            4,
            2,
        );
        assert!(pts.iter().all(AmplitudePoint::is_reported));
        let run = longest_reported_run(&pts, 4).unwrap();
        assert_eq!(run.start(), UnixTime::from_secs(0));
        // Last window starts at day 26 (step 2) and extends 4 days.
        assert_eq!(run.end().as_secs() / 86_400, 30);
    }

    #[test]
    fn quiet_signal_has_no_run() {
        let sig = signal_with_episode(20, 0, 0, 0.0);
        let pts = sliding_daily_amplitude(
            &sig,
            UnixTime::from_secs(0),
            BinSpec::thirty_minutes(),
            4,
            1,
        );
        assert!(longest_reported_run(&pts, 4).is_none());
    }

    #[test]
    fn short_signal_yields_nothing() {
        let sig = signal_with_episode(3, 0, 3, 2.0);
        let pts = sliding_daily_amplitude(
            &sig,
            UnixTime::from_secs(0),
            BinSpec::thirty_minutes(),
            4,
            1,
        );
        assert!(pts.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one 4-day")]
    fn rejects_tiny_windows() {
        let _ = sliding_daily_amplitude(
            &[0.0; 480],
            UnixTime::from_secs(0),
            BinSpec::thirty_minutes(),
            2,
            1,
        );
    }
}
