//! Population aggregation.
//!
//! §2.1: "To combine delays from a population, we compute the median value
//! across all last-mile queuing delay estimates from that population. This
//! gives us an aggregated queuing delay where large fluctuations reveal
//! times when the majority of the probes experience high latency."
//!
//! [`aggregate_median`] computes that per-bin cross-probe median over a
//! measurement period. Bins where too few probes report stay empty
//! ([`AggregatedSignal`] keeps `Option<f64>` per bin); before spectral
//! analysis the signal is made contiguous by linear interpolation across
//! short gaps, provided overall coverage is high enough — a judgment call
//! the paper leaves implicit but any implementation must make.

use crate::series::QueuingDelaySeries;
use lastmile_stats::median_in_place;
use lastmile_timebase::{BinIndex, BinSpec, TimeRange, UnixTime, Weekday};
use std::collections::BTreeMap;

/// Minimum fraction of bins that must hold data for a signal to be
/// analysable spectrally.
pub const MIN_COVERAGE: f64 = 0.6;

/// The aggregated (population-median) queuing delay over a period.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregatedSignal {
    bin: BinSpec,
    first_bin: BinIndex,
    values: Vec<Option<f64>>,
    probes: usize,
}

/// Per-bin median queuing delay across a probe population.
///
/// * `period` — the measurement period; the signal covers exactly its bins.
/// * `min_probes_per_bin` — bins where fewer probes report are left empty
///   (a single probe's value is not a population median).
pub fn aggregate_median(
    series: &[QueuingDelaySeries],
    period: &TimeRange,
    bin: BinSpec,
    min_probes_per_bin: usize,
) -> AggregatedSignal {
    let indices: Vec<BinIndex> = bin.indices_in(period).collect();
    let Some(&first_bin) = indices.first() else {
        // A period too short to hold a single bin has no signal and, by
        // construction, no contributing probes — not a signal starting
        // at the epoch's bin 0, which the old fallback implied.
        return AggregatedSignal {
            bin,
            first_bin: 0,
            values: Vec::new(),
            probes: 0,
        };
    };
    let mut per_bin: BTreeMap<BinIndex, Vec<f64>> = BTreeMap::new();
    for s in series {
        assert_eq!(s.bin(), bin, "series bin width mismatch");
        for (b, v) in s.iter() {
            if b >= first_bin && (b - first_bin) < indices.len() as i64 {
                per_bin.entry(b).or_default().push(v);
            }
        }
    }
    let values = indices
        .iter()
        .map(|b| {
            per_bin.get_mut(b).and_then(|vals| {
                if vals.len() >= min_probes_per_bin.max(1) {
                    median_in_place(vals)
                } else {
                    None
                }
            })
        })
        .collect();
    AggregatedSignal {
        bin,
        first_bin,
        values,
        probes: series.iter().filter(|s| !s.is_empty()).count(),
    }
}

impl AggregatedSignal {
    /// The bin width.
    pub fn bin(&self) -> BinSpec {
        self.bin
    }

    /// Number of bins covered (including empty ones).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the period contained no bins.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of probes that contributed at least one bin.
    pub fn probe_count(&self) -> usize {
        self.probes
    }

    /// Fraction of bins holding a value.
    pub fn coverage(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|v| v.is_some()).count() as f64 / self.values.len() as f64
    }

    /// Iterate `(bin start, value)` over all bins.
    pub fn iter(&self) -> impl Iterator<Item = (UnixTime, Option<f64>)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (self.bin.index_start(self.first_bin + i as i64), *v))
    }

    /// The maximum aggregated delay (Figure 5's markers sit on daily
    /// maxima).
    pub fn max(&self) -> Option<f64> {
        self.values.iter().flatten().copied().reduce(f64::max)
    }

    /// A contiguous copy with short gaps linearly interpolated, suitable
    /// for the Welch detector. Returns `None` when coverage is below
    /// [`MIN_COVERAGE`] or no bin holds data.
    pub fn contiguous(&self) -> Option<Vec<f64>> {
        self.contiguous_with_stats().map(|(v, _)| v)
    }

    /// Like [`AggregatedSignal::contiguous`], also reporting how many
    /// bins were filled in (interior gaps interpolated linearly, leading
    /// and trailing gaps padded with the nearest value).
    pub fn contiguous_with_stats(&self) -> Option<(Vec<f64>, u64)> {
        if self.coverage() < MIN_COVERAGE {
            return None;
        }
        let n = self.values.len();
        let mut out = vec![0.0f64; n];
        let mut last_known: Option<(usize, f64)> = None;
        let mut first_known: Option<usize> = None;
        for i in 0..n {
            if let Some(v) = self.values[i] {
                if first_known.is_none() {
                    first_known = Some(i);
                    // Back-fill the leading gap with the first value.
                    for slot in out.iter_mut().take(i) {
                        *slot = v;
                    }
                }
                if let Some((j, prev)) = last_known {
                    // Interpolate the interior gap (j, i).
                    let span = (i - j) as f64;
                    for (off, slot) in out.iter_mut().enumerate().take(i).skip(j + 1) {
                        let frac = (off - j) as f64 / span;
                        *slot = prev * (1.0 - frac) + v * frac;
                    }
                }
                out[i] = v;
                last_known = Some((i, v));
            }
        }
        let (tail, tail_v) = last_known?;
        for slot in out.iter_mut().skip(tail + 1) {
            *slot = tail_v;
        }
        let known = self.values.iter().filter(|v| v.is_some()).count();
        Some((out, (n - known) as u64))
    }

    /// Fold the period onto one week (the Figure 1/8 view): for each
    /// week-position (weekday × bin-of-day) the median across occurrences.
    ///
    /// Returns `(hours since Monday 00:00, median delay)`, sorted.
    pub fn fold_weekly(&self) -> Vec<(f64, f64)> {
        let bins_per_day = self.bin.bins_per_day() as i64;
        let mut groups: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
        for (start, v) in self.iter() {
            let Some(v) = v else { continue };
            let weekday =
                lastmile_timebase::CivilDate::from_days_since_epoch(start.days_since_epoch())
                    .weekday();
            let bin_of_day = start.seconds_of_day() / self.bin.width_secs();
            let pos = weekday.monday_index() as i64 * bins_per_day + bin_of_day;
            groups.entry(pos).or_default().push(v);
        }
        groups
            .into_iter()
            .map(|(pos, mut vals)| {
                let hours = pos as f64 * self.bin.width_secs() as f64 / 3600.0;
                (
                    hours,
                    median_in_place(&mut vals).expect("group is non-empty"),
                )
            })
            .collect()
    }

    /// Daily maxima: `(day start, max delay of that day)` — Figure 5's
    /// markers.
    pub fn daily_maxima(&self) -> Vec<(UnixTime, f64)> {
        let mut out: BTreeMap<i64, f64> = BTreeMap::new();
        for (start, v) in self.iter() {
            if let Some(v) = v {
                let day = start.days_since_epoch();
                out.entry(day).and_modify(|m| *m = m.max(v)).or_insert(v);
            }
        }
        out.into_iter()
            .map(|(day, v)| (UnixTime::from_secs(day * 86_400), v))
            .collect()
    }

    /// Median of the signal restricted to one weekday (diagnostics).
    pub fn weekday_median(&self, weekday: Weekday) -> Option<f64> {
        let mut vals: Vec<f64> = self
            .iter()
            .filter_map(|(start, v)| {
                let wd =
                    lastmile_timebase::CivilDate::from_days_since_epoch(start.days_since_epoch())
                        .weekday();
                if wd == weekday {
                    v
                } else {
                    None
                }
            })
            .collect();
        median_in_place(&mut vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::ProbeSeriesBuilder;
    use lastmile_atlas::{Hop, ProbeId, Reply, TracerouteResult};
    use std::net::IpAddr;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn tr(probe: u32, t: i64, last_mile_ms: f64) -> TracerouteResult {
        TracerouteResult {
            probe: ProbeId(probe),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(t),
            dst: ip("20.9.9.9"),
            src: ip("192.168.1.10"),
            hops: vec![
                Hop {
                    hop: 1,
                    replies: vec![Reply::answered(ip("192.168.1.1"), 1.0); 3],
                },
                Hop {
                    hop: 2,
                    replies: vec![Reply::answered(ip("20.0.0.1"), 1.0 + last_mile_ms); 3],
                },
            ],
        }
    }

    /// Build a queuing-delay series for a probe from (bin, rtt) pairs.
    fn series(probe: u32, bins: &[(i64, f64)]) -> QueuingDelaySeries {
        let mut b = ProbeSeriesBuilder::paper(ProbeId(probe));
        for &(bin, rtt) in bins {
            for i in 0..3 {
                b.ingest(&tr(probe, bin * 1800 + i * 300, rtt));
            }
        }
        b.finish().queuing_delay()
    }

    fn one_day() -> TimeRange {
        TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(86_400))
    }

    #[test]
    fn median_across_probes() {
        // Three probes; bin 1 values 0, 4, 10 after baseline removal.
        let s = vec![
            series(1, &[(0, 5.0), (1, 5.0)]),  // q: 0, 0
            series(2, &[(0, 5.0), (1, 9.0)]),  // q: 0, 4
            series(3, &[(0, 5.0), (1, 15.0)]), // q: 0, 10
        ];
        let agg = aggregate_median(&s, &one_day(), BinSpec::thirty_minutes(), 1);
        assert_eq!(agg.probe_count(), 3);
        let vals: Vec<Option<f64>> = agg.iter().map(|(_, v)| v).take(2).collect();
        assert_eq!(vals, vec![Some(0.0), Some(4.0)]);
        assert_eq!(agg.len(), 48);
    }

    #[test]
    fn aggregated_median_needs_majority() {
        // One congested probe among three: the aggregate must NOT follow it
        // (the paper: "the majority of the probes should experience delay
        // increase to be visible at the AS level").
        let s = vec![
            series(1, &[(0, 5.0), (1, 5.0)]),
            series(2, &[(0, 5.0), (1, 5.0)]),
            series(3, &[(0, 5.0), (1, 25.0)]),
        ];
        let agg = aggregate_median(&s, &one_day(), BinSpec::thirty_minutes(), 1);
        let bin1 = agg.iter().nth(1).unwrap().1;
        assert_eq!(bin1, Some(0.0));
    }

    #[test]
    fn min_probes_per_bin_blanks_sparse_bins() {
        let s = vec![series(1, &[(0, 5.0), (1, 6.0)]), series(2, &[(0, 5.0)])];
        let agg = aggregate_median(&s, &one_day(), BinSpec::thirty_minutes(), 2);
        let vals: Vec<Option<f64>> = agg.iter().map(|(_, v)| v).take(2).collect();
        assert_eq!(vals[0], Some(0.0));
        assert_eq!(vals[1], None, "only one probe reported bin 1");
    }

    #[test]
    fn coverage_and_contiguous() {
        // 48-bin day, data in 40 bins -> coverage 40/48 > 0.6.
        let bins: Vec<(i64, f64)> = (0..40).map(|b| (b, 5.0 + b as f64 * 0.1)).collect();
        let s = vec![series(1, &bins)];
        let agg = aggregate_median(&s, &one_day(), BinSpec::thirty_minutes(), 1);
        assert!((agg.coverage() - 40.0 / 48.0).abs() < 1e-12);
        let filled = agg.contiguous().unwrap();
        assert_eq!(filled.len(), 48);
        // Tail is padded with the last value.
        assert_eq!(filled[47], filled[39]);
    }

    #[test]
    fn interior_gaps_interpolate_linearly() {
        let s = vec![series(1, &[(0, 5.0), (4, 9.0)])];
        // Period of just 5 bins so coverage (2/5) still fails; widen min.
        let range = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(5 * 1800));
        let agg = aggregate_median(&s, &range, BinSpec::thirty_minutes(), 1);
        // Coverage 0.4 < 0.6: refuse.
        assert!(agg.contiguous().is_none());
        // With three bins filled out of five, interpolation engages.
        let s = vec![series(1, &[(0, 5.0), (2, 7.0), (4, 9.0)])];
        let agg = aggregate_median(&s, &range, BinSpec::thirty_minutes(), 1);
        let filled = agg.contiguous().unwrap();
        assert_eq!(filled, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn sub_bin_period_is_explicitly_empty() {
        // A period too short to hold a single bin has no signal: it must
        // come back empty with zero probes, not anchored at the epoch's
        // bin 0 with phantom contributors (the old fallback).
        let s = vec![series(1, &[(0, 5.0)])];
        let range = TimeRange::new(UnixTime::from_secs(100), UnixTime::from_secs(200));
        let agg = aggregate_median(&s, &range, BinSpec::thirty_minutes(), 1);
        assert!(agg.is_empty());
        assert_eq!(agg.len(), 0);
        assert_eq!(agg.probe_count(), 0, "no bins means no contributors");
        assert!(agg.iter().next().is_none());
        assert_eq!(agg.coverage(), 0.0);
        assert!(agg.contiguous().is_none());
    }

    #[test]
    fn unaligned_period_start_covers_only_whole_bins() {
        // Period starting mid-bin: coverage begins at the first bin whose
        // *start* lies inside the period, not at the straddling bin.
        let s = vec![series(1, &[(0, 5.0), (1, 6.0), (2, 7.0)])];
        let range = TimeRange::new(UnixTime::from_secs(900), UnixTime::from_secs(3 * 1800));
        let agg = aggregate_median(&s, &range, BinSpec::thirty_minutes(), 1);
        assert_eq!(agg.len(), 2, "bins 1 and 2 only");
        let pts: Vec<_> = agg.iter().collect();
        assert_eq!(pts[0].0, UnixTime::from_secs(1800));
        assert_eq!(pts[0].1, Some(1.0)); // 6 - 5 baseline
        assert_eq!(pts[1].1, Some(2.0)); // 7 - 5
    }

    #[test]
    fn contiguous_with_stats_counts_filled_bins() {
        let range = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(5 * 1800));
        let s = vec![series(1, &[(0, 5.0), (2, 7.0), (4, 9.0)])];
        let agg = aggregate_median(&s, &range, BinSpec::thirty_minutes(), 1);
        let (filled, interpolated) = agg.contiguous_with_stats().unwrap();
        assert_eq!(filled, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(interpolated, 2, "bins 1 and 3 were gaps");
    }

    #[test]
    fn empty_population() {
        let agg = aggregate_median(&[], &one_day(), BinSpec::thirty_minutes(), 1);
        assert_eq!(agg.probe_count(), 0);
        assert_eq!(agg.coverage(), 0.0);
        assert!(agg.contiguous().is_none());
        assert_eq!(agg.max(), None);
        assert!(agg.fold_weekly().is_empty());
    }

    #[test]
    fn fold_weekly_groups_by_weekday_and_hour() {
        // Two weeks of data with value = weekday index; folding must
        // produce one point per (weekday, bin) with that value.
        // Jan 5 1970 is a Monday (day 4).
        let monday = 4 * 48; // bin index of Monday 00:00
        let mut bins = Vec::new();
        for week in 0..2 {
            for day in 0..7i64 {
                bins.push((monday + week * 7 * 48 + day * 48, 5.0 + day as f64));
            }
        }
        let s = vec![series(1, &bins)];
        let range = TimeRange::new(
            UnixTime::from_secs(monday * 1800),
            UnixTime::from_secs((monday + 14 * 48) * 1800),
        );
        let agg = aggregate_median(&s, &range, BinSpec::thirty_minutes(), 1);
        let folded = agg.fold_weekly();
        assert_eq!(folded.len(), 7, "one point per weekday at midnight");
        for (i, (hours, v)) in folded.iter().enumerate() {
            assert!((hours - i as f64 * 24.0).abs() < 1e-9);
            assert!((v - i as f64).abs() < 1e-9, "weekday {i}: {v}");
        }
    }

    #[test]
    fn weekday_median_selects_one_day() {
        // Day 0 of the epoch is a Thursday; give Thursday bins value 2 and
        // Friday bins value 7.
        let s = vec![series(1, &[(0, 7.0), (10, 7.0), (48, 12.0), (58, 12.0)])];
        let range = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(2 * 86_400));
        let agg = aggregate_median(&s, &range, BinSpec::thirty_minutes(), 1);
        use lastmile_timebase::Weekday;
        assert_eq!(agg.weekday_median(Weekday::Thursday), Some(0.0)); // 7-7=0 baseline
        assert_eq!(agg.weekday_median(Weekday::Friday), Some(5.0)); // 12-7
        assert_eq!(agg.weekday_median(Weekday::Monday), None);
    }

    #[test]
    fn daily_maxima() {
        let s = vec![series(1, &[(0, 5.0), (10, 9.0), (50, 5.0), (60, 7.0)])];
        let range = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(2 * 86_400));
        let agg = aggregate_median(&s, &range, BinSpec::thirty_minutes(), 1);
        let maxima = agg.daily_maxima();
        assert_eq!(maxima.len(), 2);
        assert_eq!(maxima[0].1, 4.0); // day 0: max(0, 4)
        assert_eq!(maxima[1].1, 2.0); // day 1: max(0, 2)
        assert_eq!(agg.max(), Some(4.0));
    }
}
