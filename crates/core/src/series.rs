//! Per-probe time series: binned medians and queuing delay.
//!
//! §2 of the paper, step by step:
//!
//! * "for each probe, we group its traceroutes into 30-minute time-bins
//!   and discard traceroutes in bins that have less than 3 traceroutes" —
//!   the *sanity filter* against disconnected probes
//!   ([`ProbeSeriesBuilder`], which counts traceroutes per bin, not
//!   samples);
//! * "we compute the median RTT per probe in 30-minute time-bins" —
//!   [`ProbeSeries`], the noise filter;
//! * "we subtract the minimum median RTT value from all median RTT values
//!   for each probe. The minimum median RTT is computed separately for
//!   each measurement period" — [`ProbeSeries::queuing_delay`], yielding a
//!   [`QueuingDelaySeries`] whose "lowest point is set to zero and other
//!   values correspond to delay increase in milliseconds".

use crate::estimator::last_mile_samples;
use lastmile_atlas::{ProbeId, TracerouteResult};
use lastmile_stats::median_in_place;
use lastmile_timebase::{BinIndex, BinSpec, TimeRange, UnixTime};
use std::collections::BTreeMap;

/// Accumulates one probe's last-mile samples into time bins.
#[derive(Clone, Debug)]
pub struct ProbeSeriesBuilder {
    probe: ProbeId,
    bin: BinSpec,
    min_traceroutes: usize,
    bins: BTreeMap<BinIndex, BinAccum>,
}

#[derive(Clone, Debug, Default)]
struct BinAccum {
    samples: Vec<f64>,
    traceroutes: usize,
}

impl ProbeSeriesBuilder {
    /// A builder using the paper's parameters: 30-minute bins, at least 3
    /// traceroutes per bin.
    pub fn paper(probe: ProbeId) -> ProbeSeriesBuilder {
        ProbeSeriesBuilder::new(probe, BinSpec::thirty_minutes(), 3)
    }

    /// A builder with custom binning (used by the ablation benchmarks).
    pub fn new(probe: ProbeId, bin: BinSpec, min_traceroutes: usize) -> ProbeSeriesBuilder {
        ProbeSeriesBuilder {
            probe,
            bin,
            min_traceroutes,
            bins: BTreeMap::new(),
        }
    }

    /// The probe this builder belongs to.
    pub fn probe(&self) -> ProbeId {
        self.probe
    }

    /// Ingest one traceroute. Traceroutes from other probes are rejected
    /// with a panic (routing them is the caller's job and mixing probes
    /// would corrupt the series silently).
    pub fn ingest(&mut self, tr: &TracerouteResult) {
        assert_eq!(tr.probe, self.probe, "traceroute from wrong probe");
        let accum = self
            .bins
            .entry(self.bin.bin_index(tr.timestamp))
            .or_default();
        // Every traceroute counts toward the sanity threshold, with or
        // without usable samples: the probe was demonstrably online.
        accum.traceroutes += 1;
        accum.samples.extend(last_mile_samples(tr));
    }

    /// Number of bins currently holding data (before filtering).
    pub fn raw_bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Apply the sanity filter and compute per-bin medians.
    pub fn finish(self) -> ProbeSeries {
        self.finish_with_stats().0
    }

    /// Like [`ProbeSeriesBuilder::finish`], also reporting how many bins
    /// the sanity filter discarded (§2's "discard traceroutes in bins
    /// that have less than 3 traceroutes").
    pub fn finish_with_stats(self) -> (ProbeSeries, u64) {
        let built = self.finish_detailed();
        let discarded = built.discarded_bins.len() as u64;
        (built.series, discarded)
    }

    /// Like [`ProbeSeriesBuilder::finish_with_stats`], but reporting the
    /// *indices* of the discarded bins rather than only their count. The
    /// series store persists these so a cache hit can reproduce the same
    /// sanity-filter statistics as a fresh build.
    pub fn finish_detailed(self) -> BuiltSeries {
        let mut medians = BTreeMap::new();
        let mut discarded_bins = Vec::new();
        for (bin, mut accum) in self.bins {
            if accum.traceroutes < self.min_traceroutes {
                discarded_bins.push(bin); // disconnected probe: discard the whole bin
                continue;
            }
            if let Some(m) = median_in_place(&mut accum.samples) {
                medians.insert(bin, m);
            }
        }
        BuiltSeries {
            series: ProbeSeries {
                probe: self.probe,
                bin: self.bin,
                medians,
            },
            discarded_bins,
        }
    }
}

/// A freshly built [`ProbeSeries`] together with the bins the sanity
/// filter discarded — everything a series cache needs to answer later
/// requests with the exact statistics of a fresh build.
#[derive(Clone, Debug, PartialEq)]
pub struct BuiltSeries {
    /// The surviving per-bin medians.
    pub series: ProbeSeries,
    /// Indices of bins dropped by the sanity filter (held data, but fewer
    /// than the minimum traceroutes).
    pub discarded_bins: Vec<BinIndex>,
}

/// One probe's median last-mile RTT per time bin.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeSeries {
    probe: ProbeId,
    bin: BinSpec,
    medians: BTreeMap<BinIndex, f64>,
}

impl ProbeSeries {
    /// Reassemble a series from its parts (the series store's snapshot
    /// loader uses this; values must be per-bin medians that already
    /// passed the sanity filter).
    pub fn from_parts(
        probe: ProbeId,
        bin: BinSpec,
        medians: BTreeMap<BinIndex, f64>,
    ) -> ProbeSeries {
        ProbeSeries {
            probe,
            bin,
            medians,
        }
    }

    /// The probe.
    pub fn probe(&self) -> ProbeId {
        self.probe
    }

    /// The bin width.
    pub fn bin(&self) -> BinSpec {
        self.bin
    }

    /// Number of bins with a median.
    pub fn len(&self) -> usize {
        self.medians.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.medians.is_empty()
    }

    /// Iterate `(bin start, median RTT)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (UnixTime, f64)> + '_ {
        self.medians
            .iter()
            .map(|(&b, &v)| (self.bin.index_start(b), v))
    }

    /// Iterate `(bin index, median RTT)` in time order — the raw storage
    /// view used by the series store's snapshot codec.
    pub fn iter_bins(&self) -> impl Iterator<Item = (BinIndex, f64)> + '_ {
        self.medians.iter().map(|(&b, &v)| (b, v))
    }

    /// Restrict the series to the bins whose start instant falls inside
    /// `range`. For bin-aligned ranges (every paper period is) this is
    /// exactly the series a fresh build over `range` would produce, since
    /// a bin's median depends only on that bin's traceroutes.
    pub fn slice(&self, range: &TimeRange) -> ProbeSeries {
        let span = self.bin.index_span(range);
        ProbeSeries {
            probe: self.probe,
            bin: self.bin,
            medians: self.medians.range(span).map(|(&b, &v)| (b, v)).collect(),
        }
    }

    /// The minimum median RTT of the period — the propagation-delay
    /// baseline.
    pub fn min_rtt(&self) -> Option<f64> {
        self.medians.values().copied().reduce(f64::min)
    }

    /// Convert to queuing delay: subtract the period minimum.
    ///
    /// Empty series convert to empty series.
    pub fn queuing_delay(&self) -> QueuingDelaySeries {
        let base = self.min_rtt().unwrap_or(0.0);
        QueuingDelaySeries {
            probe: self.probe,
            bin: self.bin,
            values: self.medians.iter().map(|(&b, &v)| (b, v - base)).collect(),
        }
    }
}

/// One probe's estimated last-mile queuing delay per time bin — minimum
/// zero by construction.
#[derive(Clone, Debug, PartialEq)]
pub struct QueuingDelaySeries {
    probe: ProbeId,
    bin: BinSpec,
    values: BTreeMap<BinIndex, f64>,
}

impl QueuingDelaySeries {
    /// The probe.
    pub fn probe(&self) -> ProbeId {
        self.probe
    }

    /// The bin width.
    pub fn bin(&self) -> BinSpec {
        self.bin
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at a bin, if present.
    pub fn get(&self, bin: BinIndex) -> Option<f64> {
        self.values.get(&bin).copied()
    }

    /// Iterate `(bin index, queuing delay)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (BinIndex, f64)> + '_ {
        self.values.iter().map(|(&b, &v)| (b, v))
    }

    /// The maximum queuing delay of the period.
    pub fn max_delay(&self) -> Option<f64> {
        self.values.values().copied().reduce(f64::max)
    }

    /// Fraction of bins exceeding a threshold — the paper's "proportion of
    /// probes that experience daily queuing delay over 5 ms" uses this
    /// per-probe measure.
    pub fn fraction_above(&self, threshold_ms: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.values().filter(|&&v| v > threshold_ms).count() as f64
            / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_atlas::{Hop, Reply};
    use std::net::IpAddr;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    /// A traceroute with the given last-mile RTT at time `t`.
    fn tr(probe: u32, t: i64, last_mile_ms: f64) -> TracerouteResult {
        TracerouteResult {
            probe: ProbeId(probe),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(t),
            dst: ip("20.9.9.9"),
            src: ip("192.168.1.10"),
            hops: vec![
                Hop {
                    hop: 1,
                    replies: vec![Reply::answered(ip("192.168.1.1"), 1.0); 3],
                },
                Hop {
                    hop: 2,
                    replies: vec![Reply::answered(ip("20.0.0.1"), 1.0 + last_mile_ms); 3],
                },
            ],
        }
    }

    #[test]
    fn bins_collect_medians() {
        let mut b = ProbeSeriesBuilder::paper(ProbeId(1));
        // Bin 0: three traceroutes at 5, 6, 100 ms -> median 6.
        b.ingest(&tr(1, 0, 5.0));
        b.ingest(&tr(1, 600, 6.0));
        b.ingest(&tr(1, 1200, 100.0));
        // Bin 1: three traceroutes all at 5 ms.
        for i in 0..3 {
            b.ingest(&tr(1, 1800 + i * 300, 5.0));
        }
        let s = b.finish();
        assert_eq!(s.len(), 2);
        let vals: Vec<f64> = s.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![6.0, 5.0]);
    }

    #[test]
    fn sanity_filter_drops_sparse_bins() {
        let mut b = ProbeSeriesBuilder::paper(ProbeId(1));
        b.ingest(&tr(1, 0, 5.0));
        b.ingest(&tr(1, 600, 5.0)); // only 2 traceroutes in bin 0
        for i in 0..3 {
            b.ingest(&tr(1, 1800 + i * 300, 7.0));
        }
        let s = b.finish();
        assert_eq!(s.len(), 1, "bin with <3 traceroutes must be dropped");
        assert_eq!(s.iter().next().unwrap().1, 7.0);
    }

    #[test]
    fn unusable_traceroutes_count_toward_sanity_threshold() {
        // A traceroute with no last-mile span still proves the probe was
        // online; the bin keeps its remaining samples.
        let mut b = ProbeSeriesBuilder::paper(ProbeId(1));
        b.ingest(&tr(1, 0, 4.0));
        b.ingest(&tr(1, 600, 4.0));
        let no_span = TracerouteResult {
            hops: vec![],
            ..tr(1, 1200, 0.0)
        };
        b.ingest(&no_span);
        let s = b.finish();
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next().unwrap().1, 4.0);
    }

    #[test]
    fn queuing_delay_zeroes_the_minimum() {
        let mut b = ProbeSeriesBuilder::paper(ProbeId(1));
        for (bin, rtt) in [(0i64, 5.0), (1, 9.0), (2, 6.5)] {
            for i in 0..3 {
                b.ingest(&tr(1, bin * 1800 + i * 300, rtt));
            }
        }
        let q = b.finish().queuing_delay();
        let vals: Vec<f64> = q.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![0.0, 4.0, 1.5]);
        assert_eq!(q.max_delay(), Some(4.0));
        assert!((q.fraction_above(1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_rtt_is_period_scoped() {
        // Same probe, two separate builders = two measurement periods with
        // independent baselines (the paper recomputes the minimum per
        // period to absorb deployment changes).
        let mut p1 = ProbeSeriesBuilder::paper(ProbeId(1));
        let mut p2 = ProbeSeriesBuilder::paper(ProbeId(1));
        for i in 0..3 {
            p1.ingest(&tr(1, i * 300, 5.0));
            p2.ingest(&tr(1, 10_000_000 + i * 300, 8.0));
        }
        assert_eq!(p1.finish().min_rtt(), Some(5.0));
        assert_eq!(p2.finish().min_rtt(), Some(8.0));
    }

    #[test]
    fn empty_builder_finishes_empty() {
        let s = ProbeSeriesBuilder::paper(ProbeId(9)).finish();
        assert!(s.is_empty());
        assert_eq!(s.min_rtt(), None);
        let q = s.queuing_delay();
        assert!(q.is_empty());
        assert_eq!(q.max_delay(), None);
        assert_eq!(q.fraction_above(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "wrong probe")]
    fn rejects_foreign_traceroutes() {
        let mut b = ProbeSeriesBuilder::paper(ProbeId(1));
        b.ingest(&tr(2, 0, 5.0));
    }

    #[test]
    fn custom_bin_width() {
        // 5-minute bins (the ablation case): same data lands in more bins.
        let mut b = ProbeSeriesBuilder::new(ProbeId(1), BinSpec::new(300), 1);
        b.ingest(&tr(1, 0, 5.0));
        b.ingest(&tr(1, 300, 6.0));
        let s = b.finish();
        assert_eq!(s.len(), 2);
    }
}
