//! Orchestration: run the paper's analyses over a simulated world.
//!
//! The analysis crates are substrate-agnostic (they consume traceroutes
//! and log records); this module pairs them with the simulator:
//!
//! * [`analyze_population`] — one AS (optionally restricted to an area or
//!   to anchors) over one measurement period: simulate the built-in
//!   measurements probe by probe, stream them through an
//!   [`AsPipeline`], return the [`PopulationAnalysis`].
//! * [`run_survey`] — the §3 loop: every AS × every period, parallelised
//!   across worker threads with deterministic results (the simulation is
//!   seed-addressed, so thread scheduling cannot change any value).
//! * [`eyeballs_from_ground_truth`] — an [`EyeballRegistry`] carrying the
//!   survey scenario's synthetic APNIC ranks and countries.

use lastmile_core::detect::CongestionClass;
use lastmile_core::pipeline::{AsPipeline, PipelineConfig, PopulationAnalysis};
use lastmile_core::report::{AsClassification, SurveyReport};
use lastmile_eyeball::{EyeballEntry, EyeballRegistry};
use lastmile_netsim::scenarios::AsGroundTruth;
use lastmile_netsim::{SimProbe, TracerouteEngine, World};
use lastmile_prefix::Asn;
use lastmile_timebase::MeasurementPeriod;

/// Which probes of an AS a population analysis uses.
#[derive(Clone, Debug, Default)]
pub struct ProbeSelection {
    /// Restrict to probes tagged with this area (e.g. `"Tokyo"`, §4).
    pub area: Option<String>,
    /// `false` (default): regular probes only, anchors excluded (§2);
    /// `true`: anchors only (Appendix B's comparison).
    pub anchors_only: bool,
}

impl ProbeSelection {
    /// Regular probes anywhere in the AS.
    pub fn regular() -> ProbeSelection {
        ProbeSelection::default()
    }

    /// Regular probes within an area.
    pub fn in_area(area: &str) -> ProbeSelection {
        ProbeSelection {
            area: Some(area.to_string()),
            anchors_only: false,
        }
    }

    /// Anchors only.
    pub fn anchors() -> ProbeSelection {
        ProbeSelection {
            area: None,
            anchors_only: true,
        }
    }

    fn matches(&self, probe: &SimProbe) -> bool {
        if probe.meta.is_anchor != self.anchors_only {
            return false;
        }
        match &self.area {
            Some(a) => probe.meta.in_area(a),
            None => true,
        }
    }
}

/// Analyse one AS population over one measurement period.
pub fn analyze_population(
    world: &World,
    asn: Asn,
    period: &MeasurementPeriod,
    cfg: PipelineConfig,
    selection: &ProbeSelection,
) -> PopulationAnalysis {
    let engine = TracerouteEngine::new(world);
    let mut pipeline = AsPipeline::new(cfg, period.range());
    for probe in world.probes_in(asn) {
        if !selection.matches(probe) {
            continue;
        }
        engine.for_each_traceroute(probe, &period.range(), |tr| pipeline.ingest(&tr));
    }
    pipeline.finish()
}

/// Survey driver options.
#[derive(Clone, Debug)]
pub struct SurveyOptions {
    /// Pipeline parameters.
    pub pipeline: PipelineConfig,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl Default for SurveyOptions {
    fn default() -> Self {
        SurveyOptions {
            pipeline: PipelineConfig::paper(),
            threads: 0,
        }
    }
}

/// Run the §3 survey: classify every AS of the world in every period.
///
/// `eyeballs` supplies rank/country annotations for the report (pass an
/// empty registry to skip them).
pub fn run_survey(
    world: &World,
    periods: &[MeasurementPeriod],
    eyeballs: &EyeballRegistry,
    options: &SurveyOptions,
) -> SurveyReport {
    let asns: Vec<Asn> = world.ases().iter().map(|a| a.config.asn).collect();
    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        options.threads
    };
    let chunk = asns.len().div_ceil(threads.max(1)).max(1);

    let mut rows: Vec<AsClassification> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = asns
            .chunks(chunk)
            .map(|asn_chunk| {
                let pipeline_cfg = options.pipeline.clone();
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    for &asn in asn_chunk {
                        for period in periods {
                            let analysis = analyze_population(
                                world,
                                asn,
                                period,
                                pipeline_cfg.clone(),
                                &ProbeSelection::regular(),
                            );
                            local.push(classify_row(asn, period, &analysis, eyeballs));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            rows.extend(h.join().expect("survey worker panicked"));
        }
    })
    .expect("survey scope failed");

    // Deterministic row order regardless of thread count.
    rows.sort_by_key(|r| (r.asn, r.period));
    let mut report = SurveyReport::new();
    for row in rows {
        report.push(row);
    }
    report
}

/// Turn one population analysis into a report row.
pub fn classify_row(
    asn: Asn,
    period: &MeasurementPeriod,
    analysis: &PopulationAnalysis,
    eyeballs: &EyeballRegistry,
) -> AsClassification {
    let detection = analysis.detection.as_ref();
    AsClassification {
        asn,
        period: period.id(),
        class: analysis.class(),
        daily_amplitude_ms: detection.map(|d| d.daily_amplitude_ms).unwrap_or(0.0),
        prominent_frequency: detection.and_then(|d| d.prominent_frequency()),
        prominent_is_daily: detection.map(|d| d.prominent_is_daily).unwrap_or(false),
        probes: analysis.probes_used(),
        country: eyeballs.country_of(asn).map(str::to_string),
        rank: eyeballs.rank_of(asn),
    }
}

/// Build an eyeball registry from survey ground truth (synthetic APNIC
/// ranks assigned by the scenario).
pub fn eyeballs_from_ground_truth(truth: &[AsGroundTruth]) -> EyeballRegistry {
    let mut reg = EyeballRegistry::new();
    for g in truth {
        reg.insert(EyeballEntry {
            asn: g.asn,
            rank: g.rank,
            population: (2.0e8 / f64::from(g.rank).powf(0.85)).max(500.0) as u64,
            country: g.country.clone(),
        });
    }
    reg
}

/// Convenience: does the detected class match the scenario's planted
/// class *band*, allowing one class of drift (borderline amplitudes move
/// between adjacent classes period to period — the churn §3.1 describes)?
pub fn class_within_one(detected: CongestionClass, planted: CongestionClass) -> bool {
    let idx = |c: CongestionClass| match c {
        CongestionClass::None => 0i32,
        CongestionClass::Low => 1,
        CongestionClass::Mild => 2,
        CongestionClass::Severe => 3,
    };
    (idx(detected) - idx(planted)).abs() <= 1
}
