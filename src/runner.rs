//! Orchestration: run the paper's analyses over a simulated world.
//!
//! The analysis crates are substrate-agnostic (they consume traceroutes
//! and log records); this module pairs them with the simulator:
//!
//! * [`analyze_population`] — one AS (optionally restricted to an area or
//!   to anchors) over one measurement period: simulate the built-in
//!   measurements probe by probe, stream them through an
//!   [`AsPipeline`], return the [`PopulationAnalysis`].
//! * [`run_survey`] — the §3 loop: every AS × every period, parallelised
//!   across worker threads with deterministic results (the simulation is
//!   seed-addressed, so thread scheduling cannot change any value).
//! * [`eyeballs_from_ground_truth`] — an [`EyeballRegistry`] carrying the
//!   survey scenario's synthetic APNIC ranks and countries.

use lastmile_core::detect::CongestionClass;
use lastmile_core::pipeline::{AsPipeline, PipelineConfig, PopulationAnalysis};
use lastmile_core::report::{AsClassification, SurveyFailure, SurveyReport};
use lastmile_eyeball::{EyeballEntry, EyeballRegistry};
use lastmile_netsim::scenarios::AsGroundTruth;
use lastmile_netsim::{SimProbe, TracerouteEngine, World};
use lastmile_obs::{trace, LiveProgress, PopulationRow, RunMetrics, StageTimer, StoreTraffic};
use lastmile_prefix::Asn;
use lastmile_store::{Lookup, SeriesStore, StoreCounters, StoreKey};
use lastmile_timebase::MeasurementPeriod;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};

/// Which probes of an AS a population analysis uses.
#[derive(Clone, Debug, Default)]
pub struct ProbeSelection {
    /// Restrict to probes tagged with this area (e.g. `"Tokyo"`, §4).
    pub area: Option<String>,
    /// `false` (default): regular probes only, anchors excluded (§2);
    /// `true`: anchors only (Appendix B's comparison).
    pub anchors_only: bool,
}

impl ProbeSelection {
    /// Regular probes anywhere in the AS.
    pub fn regular() -> ProbeSelection {
        ProbeSelection::default()
    }

    /// Regular probes within an area.
    pub fn in_area(area: &str) -> ProbeSelection {
        ProbeSelection {
            area: Some(area.to_string()),
            anchors_only: false,
        }
    }

    /// Anchors only.
    pub fn anchors() -> ProbeSelection {
        ProbeSelection {
            area: None,
            anchors_only: true,
        }
    }

    fn matches(&self, probe: &SimProbe) -> bool {
        if probe.meta.is_anchor != self.anchors_only {
            return false;
        }
        match &self.area {
            Some(a) => probe.meta.in_area(a),
            None => true,
        }
    }
}

/// Analyse one AS population over one measurement period.
pub fn analyze_population(
    world: &World,
    asn: Asn,
    period: &MeasurementPeriod,
    cfg: PipelineConfig,
    selection: &ProbeSelection,
) -> PopulationAnalysis {
    analyze_population_with(&TracerouteEngine::new(world), asn, period, cfg, selection)
}

/// Like [`analyze_population`], reusing a prebuilt [`TracerouteEngine`].
/// The survey executor builds one engine and shares it across workers
/// and tasks instead of rebuilding it per population.
pub fn analyze_population_with(
    engine: &TracerouteEngine,
    asn: Asn,
    period: &MeasurementPeriod,
    cfg: PipelineConfig,
    selection: &ProbeSelection,
) -> PopulationAnalysis {
    let mut pipeline = AsPipeline::new(cfg, period.range());
    for probe in engine.world().probes_in(asn) {
        if !selection.matches(probe) {
            continue;
        }
        engine.for_each_traceroute(probe, &period.range(), |tr| pipeline.ingest(&tr));
    }
    pipeline.finish()
}

/// Like [`analyze_population_with`], backed by a [`SeriesStore`]: probes
/// whose median series the store has already computed for this period (or
/// a covering superset) skip simulation and ingestion entirely — the
/// stored series is sliced and fed ready-made. Probes the store cannot
/// serve are simulated as usual, and their freshly built series are
/// offered back to the store (a no-op in read-only mode).
///
/// The returned analysis — and therefore the survey report — is
/// byte-identical to the store-free path: the store holds full-bin
/// medians only, refuses ranges that don't align with bin boundaries, and
/// the period-scoped queuing-delay baseline is recomputed per call (§2.1
/// computes the minimum median RTT separately for each measurement
/// period). Only the ingest statistics differ: a served probe contributes
/// zero `traceroutes_ingested`.
pub fn analyze_population_stored(
    engine: &TracerouteEngine,
    asn: Asn,
    period: &MeasurementPeriod,
    cfg: PipelineConfig,
    selection: &ProbeSelection,
    store: &SeriesStore,
) -> PopulationAnalysis {
    let range = period.range();
    let mut pipeline = AsPipeline::new(cfg, range);
    let mut missed = false;
    for probe in engine.world().probes_in(asn) {
        if !selection.matches(probe) {
            continue;
        }
        let key = StoreKey::for_pipeline(probe.meta.id, &cfg);
        match store.lookup(&key, &range) {
            Lookup::Hit(pre) => pipeline.ingest_series(pre),
            outcome => {
                // A bypass (mode off / unaligned period) can never turn
                // into an accepted insert, so only misses pay for series
                // retention.
                missed |= matches!(outcome, Lookup::Miss);
                engine.for_each_traceroute(probe, &range, |tr| pipeline.ingest(&tr));
            }
        }
    }
    if missed {
        pipeline.retain_median_series(true);
    }
    let analysis = pipeline.finish();
    for built in &analysis.built_series {
        let key = StoreKey::for_pipeline(built.series.probe(), &cfg);
        store.insert(&key, &range, built);
    }
    analysis
}

/// Survey driver options.
#[derive(Clone, Debug, Default)]
pub struct SurveyOptions {
    /// Pipeline parameters (default: [`PipelineConfig::paper`]).
    pub pipeline: PipelineConfig,
    /// Worker threads; `0` (the default) means one per available core.
    pub threads: usize,
    /// Metrics sink: when set, every worker accumulates pipeline
    /// counters and stage timings into it (see `lastmile-obs`).
    pub metrics: Option<Arc<RunMetrics>>,
    /// Series store: when set, workers serve per-probe median series
    /// from it instead of re-simulating stored probes, and memoize fresh
    /// builds (subject to the store's [`CacheMode`]). The report stays
    /// byte-identical with or without a store; its lookup/insert traffic
    /// for this run is added to `metrics` when both are set.
    ///
    /// [`CacheMode`]: lastmile_store::CacheMode
    pub store: Option<Arc<SeriesStore>>,
    /// Live gauges for a `--progress` heartbeat: the survey sets
    /// `populations_total` up front and bumps `populations_done` as
    /// tasks complete.
    pub progress: Option<Arc<LiveProgress>>,
    /// Test hook: panic while analysing this AS, exercising the
    /// executor's per-task failure isolation from integration tests.
    #[doc(hidden)]
    pub inject_panic_asn: Option<Asn>,
}

/// Run the §3 survey: classify every AS of the world in every period.
///
/// `eyeballs` supplies rank/country annotations for the report (pass an
/// empty registry to skip them).
///
/// # Scheduling
///
/// Every (AS, period) pair is one task in a shared queue that `threads`
/// workers drain — a worker that lands on a probe-heavy AS simply takes
/// fewer tasks, so skewed probe counts cannot idle the other workers
/// (unlike static chunking, where the chunk containing the heavy ASes
/// bounds the whole run). Results are sorted by `(asn, period)` before
/// the report is assembled, and the simulation is seed-addressed, so the
/// report is identical for every thread count.
///
/// # Failure isolation
///
/// A panic while analysing one population is caught per task and
/// surfaced as a [`SurveyFailure`] in [`SurveyReport::failures`]; the
/// remaining tasks still run.
pub fn run_survey(
    world: &World,
    periods: &[MeasurementPeriod],
    eyeballs: &EyeballRegistry,
    options: &SurveyOptions,
) -> SurveyReport {
    let run_timer = StageTimer::start();
    let asns: Vec<Asn> = world.ases().iter().map(|a| a.config.asn).collect();
    let threads = resolve_threads(options.threads);
    let engine = TracerouteEngine::new(world);
    let store_counters_before = options.store.as_ref().map(|s| s.counters());

    // Pre-load the task queue. Workers pop one task at a time; the
    // channel is the work-stealing queue (all tasks are enqueued before
    // any worker starts, so `try_recv` emptiness means completion).
    let (tx, rx) = mpsc::channel::<(Asn, usize)>();
    for &asn in &asns {
        for period_idx in 0..periods.len() {
            tx.send((asn, period_idx)).expect("task queue send");
        }
    }
    drop(tx);
    let queue = Mutex::new(rx);
    if let Some(p) = &options.progress {
        use std::sync::atomic::Ordering;
        p.populations_total
            .store((asns.len() * periods.len()) as u64, Ordering::Relaxed);
    }

    let mut rows: Vec<AsClassification> = Vec::new();
    let mut failures: Vec<SurveyFailure> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let queue = &queue;
                let engine = &engine;
                std::thread::Builder::new()
                    .name(format!("survey-{worker}"))
                    .spawn_scoped(scope, move || {
                        let mut ok = Vec::new();
                        let mut failed = Vec::new();
                        while let Some((asn, period_idx)) = next_task(queue) {
                            let period = &periods[period_idx];
                            let span = trace::span_with("population", |a| {
                                a.u64("asn", u64::from(asn)).str("period", period.label());
                            });
                            let task_timer = StageTimer::start();
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                if options.inject_panic_asn == Some(asn) {
                                    panic!("injected survey panic for AS{asn}");
                                }
                                match &options.store {
                                    Some(store) => analyze_population_stored(
                                        engine,
                                        asn,
                                        period,
                                        options.pipeline,
                                        &ProbeSelection::regular(),
                                        store,
                                    ),
                                    None => analyze_population_with(
                                        engine,
                                        asn,
                                        period,
                                        options.pipeline,
                                        &ProbeSelection::regular(),
                                    ),
                                }
                            }));
                            match outcome {
                                Ok(analysis) => {
                                    if let Some(m) = &options.metrics {
                                        record_population_metrics(
                                            m,
                                            asn,
                                            period.label(),
                                            &analysis,
                                            task_timer.elapsed_nanos(),
                                        );
                                    }
                                    ok.push(classify_row(asn, period, &analysis, eyeballs));
                                }
                                Err(payload) => {
                                    if let Some(m) = &options.metrics {
                                        m.add_task_failed();
                                    }
                                    failed.push(SurveyFailure {
                                        asn,
                                        period: period.id(),
                                        reason: panic_message(payload.as_ref()),
                                    });
                                }
                            }
                            drop(span);
                            if let Some(p) = &options.progress {
                                use std::sync::atomic::Ordering;
                                p.populations_done.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        (ok, failed)
                    })
                    .expect("spawn survey worker")
            })
            .collect();
        for h in handles {
            // Per-task panics are caught above; a panic escaping here is
            // a bug in the executor itself, not in an analysis.
            let (ok, failed) = h.join().expect("survey worker died outside task isolation");
            rows.extend(ok);
            failures.extend(failed);
        }
    });

    // Deterministic order regardless of thread count and steal order.
    rows.sort_by_key(|r| (r.asn, r.period));
    failures.sort_by_key(|f| (f.asn, f.period));
    let mut report = SurveyReport::new();
    for row in rows {
        report.push(row);
    }
    for f in failures {
        report.push_failure(f);
    }
    if let Some(m) = &options.metrics {
        if let (Some(store), Some(before)) = (&options.store, store_counters_before) {
            m.add_store_traffic(&store_traffic_since(before, store.counters()));
        }
        m.set_wall(&run_timer);
    }
    report
}

/// The store traffic between two counter readings, as an obs delta.
pub fn store_traffic_since(before: StoreCounters, after: StoreCounters) -> StoreTraffic {
    StoreTraffic {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        bypasses: after.bypasses - before.bypasses,
        inserts: after.inserts - before.inserts,
        evictions: after.evictions - before.evictions,
    }
}

/// Reference scheduler: the pre-executor static chunking driver, kept so
/// the `survey_executor` benchmark can measure the load-balancing win.
/// Produces the same report as [`run_survey`] on panic-free inputs, but
/// one slow chunk bounds the whole run and worker panics abort it.
#[doc(hidden)]
pub fn run_survey_static_chunks(
    world: &World,
    periods: &[MeasurementPeriod],
    eyeballs: &EyeballRegistry,
    options: &SurveyOptions,
) -> SurveyReport {
    let asns: Vec<Asn> = world.ases().iter().map(|a| a.config.asn).collect();
    let threads = resolve_threads(options.threads);
    let engine = TracerouteEngine::new(world);
    let chunk = asns.len().div_ceil(threads.max(1)).max(1);

    let mut rows: Vec<AsClassification> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = asns
            .chunks(chunk)
            .map(|asn_chunk| {
                let engine = &engine;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for &asn in asn_chunk {
                        for period in periods {
                            let analysis = analyze_population_with(
                                engine,
                                asn,
                                period,
                                options.pipeline,
                                &ProbeSelection::regular(),
                            );
                            local.push(classify_row(asn, period, &analysis, eyeballs));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            rows.extend(h.join().expect("survey worker panicked"));
        }
    });

    rows.sort_by_key(|r| (r.asn, r.period));
    let mut report = SurveyReport::new();
    for row in rows {
        report.push(row);
    }
    report
}

/// Accumulate one population's [`PopulationStats`] into the run metrics,
/// including its row in the per-population table (keyed by `asn` and the
/// period `label`). `task_nanos` is the task's total wall time; the
/// share not spent in the measured pipeline stages is attributed to
/// ingest (for simulated surveys that includes generating the
/// traceroutes).
pub fn record_population_metrics(
    metrics: &RunMetrics,
    asn: Asn,
    label: &str,
    analysis: &PopulationAnalysis,
    task_nanos: u64,
) {
    let s = &analysis.stats;
    metrics.add_traceroutes_ingested(s.traceroutes_ingested);
    metrics.add_traceroutes_out_of_period(s.traceroutes_out_of_period);
    metrics.add_bins_discarded_sanity(s.bins_discarded_sanity);
    metrics.add_bins_interpolated(s.bins_interpolated);
    metrics.add_welch_segments(s.welch_segments);
    metrics.add_population(analysis.detection.is_some());
    metrics.add_series_nanos(s.series_nanos);
    metrics.add_aggregate_nanos(s.aggregate_nanos);
    metrics.add_detect_nanos(s.detect_nanos);
    let pipeline_nanos = s.series_nanos + s.aggregate_nanos + s.detect_nanos;
    metrics.add_ingest_nanos(task_nanos.saturating_sub(pipeline_nanos));
    metrics.merge_series_hist(&s.series_hist);
    metrics.record_population_row(PopulationRow {
        asn,
        period: label.to_string(),
        traceroutes: s.traceroutes_ingested,
        bins_discarded: s.bins_discarded_sanity,
        probes: analysis.probes_used() as u64,
        class: analysis.class().name().to_string(),
        nanos: task_nanos,
    });
}

fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        requested
    }
}

fn next_task(queue: &Mutex<mpsc::Receiver<(Asn, usize)>>) -> Option<(Asn, usize)> {
    queue.lock().expect("task queue lock").try_recv().ok()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Turn one population analysis into a report row.
pub fn classify_row(
    asn: Asn,
    period: &MeasurementPeriod,
    analysis: &PopulationAnalysis,
    eyeballs: &EyeballRegistry,
) -> AsClassification {
    let detection = analysis.detection.as_ref();
    AsClassification {
        asn,
        period: period.id(),
        class: analysis.class(),
        daily_amplitude_ms: detection.map(|d| d.daily_amplitude_ms).unwrap_or(0.0),
        prominent_frequency: detection.and_then(|d| d.prominent_frequency()),
        prominent_is_daily: detection.map(|d| d.prominent_is_daily).unwrap_or(false),
        probes: analysis.probes_used(),
        country: eyeballs.country_of(asn).map(str::to_string),
        rank: eyeballs.rank_of(asn),
    }
}

/// Build an eyeball registry from survey ground truth (synthetic APNIC
/// ranks assigned by the scenario).
pub fn eyeballs_from_ground_truth(truth: &[AsGroundTruth]) -> EyeballRegistry {
    let mut reg = EyeballRegistry::new();
    for g in truth {
        reg.insert(EyeballEntry {
            asn: g.asn,
            rank: g.rank,
            population: (2.0e8 / f64::from(g.rank).powf(0.85)).max(500.0) as u64,
            country: g.country.clone(),
        });
    }
    reg
}

/// Convenience: does the detected class match the scenario's planted
/// class *band*, allowing one class of drift (borderline amplitudes move
/// between adjacent classes period to period — the churn §3.1 describes)?
pub fn class_within_one(detected: CongestionClass, planted: CongestionClass) -> bool {
    let idx = |c: CongestionClass| match c {
        CongestionClass::None => 0i32,
        CongestionClass::Low => 1,
        CongestionClass::Mild => 2,
        CongestionClass::Severe => 3,
    };
    (idx(detected) - idx(planted)).abs() <= 1
}
