//! # lastmile-repro
//!
//! Umbrella crate of the reproduction of *"Persistent Last-mile
//! Congestion: Not so Uncommon"* (IMC 2020): re-exports every workspace
//! crate and provides the [`runner`] module that wires the simulated
//! measurement substrate (`lastmile-netsim`, `lastmile-cdnlog`) into the
//! analysis pipeline (`lastmile-core`) — including the multi-threaded
//! survey driver used by the §3 experiments.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

pub use lastmile_atlas as atlas;
pub use lastmile_cdnlog as cdnlog;
pub use lastmile_core as core;
pub use lastmile_dsp as dsp;
pub use lastmile_eyeball as eyeball;
pub use lastmile_ingest as ingest;
pub use lastmile_live as live;
pub use lastmile_loadgen as loadgen;
pub use lastmile_netsim as netsim;
pub use lastmile_obs as obs;
pub use lastmile_prefix as prefix;
pub use lastmile_serve as serve;
pub use lastmile_stats as stats;
pub use lastmile_store as store;
pub use lastmile_timebase as timebase;

pub mod runner;
